//! `evofd` — command-line tool for validating and evolving functional
//! dependencies (the CLI face of the EDBT 2016 reproduction).
//!
//! Run `evofd` with no arguments for usage. `evofd demo` reproduces the
//! paper's running example.

mod args;
mod commands;

use std::io::BufRead;

use args::Cli;

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    // Global execution width for every parallel path (partitions,
    // validation, discovery, repair scoring, tracker maintenance):
    // unset/0 = all available cores, 1 = fully sequential (bit-identical
    // to the pre-parallel engine).
    mintpool::set_threads(cli.get_or("threads", 0usize));
    // `--trace-slow MS` turns the metrics registry on and logs any span
    // slower than the threshold to stderr; `stats` always collects.
    if let Some(ms) = cli.get("trace-slow") {
        let ms: u64 = match ms.parse() {
            Ok(ms) => ms,
            Err(_) => {
                eprintln!("error: bad --trace-slow `{ms}` (milliseconds expected)");
                std::process::exit(1);
            }
        };
        evofd_obs::enable();
        evofd_obs::set_slow_threshold_ms(ms);
    }
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let result = dispatch(&cli, &mut input);
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}

fn dispatch(cli: &Cli, input: &mut dyn BufRead) -> commands::CmdResult {
    match cli.command.as_str() {
        "demo" => commands::cmd_demo(),
        "validate" => commands::cmd_validate(cli),
        "repair" => commands::cmd_repair(cli),
        "advise" => commands::cmd_advise(cli, input),
        "gen" => commands::cmd_gen(cli),
        "sql" => commands::cmd_sql(cli),
        "open" => commands::cmd_open(cli),
        "serve" => commands::cmd_serve(cli, input),
        "server" => commands::cmd_server(cli),
        "follow" => commands::cmd_follow(cli),
        "lag" => commands::cmd_lag(cli),
        "stats" => commands::cmd_stats(cli),
        "serve-metrics" => commands::cmd_serve_metrics(cli),
        "history" => commands::cmd_history(cli),
        "keys" => commands::cmd_keys(cli),
        "violations" => commands::cmd_violations(cli),
        "watch" => commands::cmd_watch(cli),
        "discover" => commands::cmd_discover(cli),
        "cfd" => commands::cmd_cfd(cli),
        "bcnf" => commands::cmd_bcnf(cli),
        "" | "help" => {
            print!("{}", commands::usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", commands::usage())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_help_and_unknown() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(dispatch(&Cli::parse(std::iter::empty::<String>()), &mut empty).is_ok());
        let bad = Cli::parse(["frobnicate".to_string()]);
        assert!(dispatch(&bad, &mut empty).is_err());
    }
}
