//! The `evofd` subcommands.

use std::io::BufRead;
use std::path::Path;

use evofd_core::{
    bcnf_decompose, bcnf_violations, condition_repairs, discover_fds, find_fd_repairs,
    format_confidence, format_duration, minimal_cover, repair_fd, validate, violations,
    AdvisorSession, DiscoveryConfig, Fd, RepairConfig, SearchMode, TextTable,
};
use evofd_datagen as dg;
use evofd_incremental::{Delta, IncrementalValidator, LiveRelation, ValidatorConfig};
use evofd_storage::{
    parse_cell, read_csv_path, read_csv_records, write_csv_path, CsvOptions, Relation, Value,
};

use crate::args::Cli;

/// Top-level error type: rendered messages only.
pub type CmdResult = Result<(), String>;

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// Load the `--csv` relation.
fn load_relation(cli: &Cli) -> Result<Relation, String> {
    let path = cli.require("csv")?;
    read_csv_path(Path::new(path), &CsvOptions::default()).map_err(err)
}

/// Parse every `--fd` option against the relation's schema.
fn parse_fds(cli: &Cli, rel: &Relation) -> Result<Vec<Fd>, String> {
    let texts = cli.get_all("fd");
    if texts.is_empty() {
        return Err("at least one --fd \"A, B -> C\" is required".into());
    }
    texts.iter().map(|t| Fd::parse(rel.schema(), t).map_err(err)).collect()
}

fn repair_config(cli: &Cli) -> RepairConfig {
    RepairConfig {
        mode: if cli.flag("all") { SearchMode::FindAll } else { SearchMode::FindFirst },
        max_added: cli.get_or("max-added", usize::MAX),
        goodness_threshold: cli.get("goodness-threshold").and_then(|v| v.parse().ok()),
        ..RepairConfig::default()
    }
}

/// `evofd validate --csv file.csv --fd "A -> B" [--fd ...]`
pub fn cmd_validate(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let report = validate(&rel, &fds);
    let mut t = TextTable::new(["FD", "confidence", "goodness", "status"]);
    for s in &report.statuses {
        t.row([
            s.fd.display(rel.schema()),
            format_confidence(s.measures.confidence),
            s.measures.goodness.to_string(),
            if s.satisfied() { "satisfied".into() } else { "VIOLATED".to_string() },
        ]);
    }
    print!("{}", t.render());
    println!(
        "{} of {} FDs violated over {} tuples",
        report.violation_count(),
        fds.len(),
        rel.row_count()
    );
    Ok(())
}

/// `evofd repair --csv file.csv --fd "A -> B" [--all] [--max-added N]
/// [--goodness-threshold G]`
pub fn cmd_repair(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let cfg = repair_config(cli);
    let outcomes = find_fd_repairs(&rel, &fds, &cfg);
    for outcome in outcomes {
        let fd_text = outcome.ranked.fd.display(rel.schema());
        if outcome.satisfied() {
            println!("{fd_text}: satisfied (confidence 1)");
            continue;
        }
        let search = outcome.search.as_ref().expect("violated outcome has a search");
        println!(
            "{fd_text}: VIOLATED (confidence {}, goodness {}) — searched in {}",
            format_confidence(search.original_measures.confidence),
            search.original_measures.goodness,
            format_duration(search.elapsed),
        );
        if search.repairs.is_empty() {
            println!("  no repair exists within the configured bounds");
            continue;
        }
        let mut t = TextTable::new(["#", "evolved FD", "added", "goodness"]);
        for (i, r) in search.repairs.iter().enumerate() {
            t.row([
                (i + 1).to_string(),
                r.fd.display(rel.schema()),
                rel.schema().render_attrs(&r.added),
                r.measures.goodness.to_string(),
            ]);
        }
        print!("{}", t.render());
    }
    Ok(())
}

/// `evofd advise --csv file.csv --fd ... [--auto]` — the semi-automatic
/// loop. `--auto` accepts the top proposal for every violated FD;
/// otherwise decisions are read from stdin (`accept <n>` / `keep` /
/// `drop`).
pub fn cmd_advise(cli: &Cli, input: &mut dyn BufRead) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let mut session = AdvisorSession::new(&rel, fds);
    session.analyze().map_err(err)?;
    println!("{}", session.summary());

    for idx in session.pending() {
        let fd_text = session.fds()[idx].display(rel.schema());
        let proposals = session.proposals(idx).map_err(err)?.to_vec();
        println!("\nFD #{idx}: {fd_text} is violated. Proposals:");
        let mut t = TextTable::new(["#", "evolved FD", "goodness"]);
        for (i, p) in proposals.iter().enumerate() {
            t.row([
                (i + 1).to_string(),
                p.fd.display(rel.schema()),
                p.measures.goodness.to_string(),
            ]);
        }
        print!("{}", t.render());
        if cli.flag("auto") {
            if proposals.is_empty() {
                session.keep(idx).map_err(err)?;
                println!("-> no proposals; keeping the FD unchanged");
            } else {
                let r = session.accept(idx, 0).map_err(err)?;
                println!("-> auto-accepted: {}", r.fd.display(rel.schema()));
            }
            continue;
        }
        println!("decision? (accept <n> | keep | drop)");
        let mut line = String::new();
        input.read_line(&mut line).map_err(err)?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["accept", n] => {
                let i: usize = n.parse().map_err(|_| "accept needs a number".to_string())?;
                let r = session.accept(idx, i.saturating_sub(1)).map_err(err)?;
                println!("-> accepted: {}", r.fd.display(rel.schema()));
            }
            ["drop"] => {
                session.drop_fd(idx).map_err(err)?;
                println!("-> dropped");
            }
            _ => {
                session.keep(idx).map_err(err)?;
                println!("-> kept unchanged");
            }
        }
    }

    println!("\naudit log:");
    for e in session.log() {
        println!("  - {e}");
    }
    let verification = session.verify();
    println!(
        "final FD set: {} FDs, {} still violated",
        session.evolved_fds().len(),
        verification.violation_count()
    );
    Ok(())
}

/// Parse one delta-stream record (`op, v1, v2, …`) against the base
/// schema. `+` inserts the tuple; `-` deletes the first live row whose
/// tuple equals the values.
fn parse_delta_record(
    live: &LiveRelation,
    record: &[String],
    line: usize,
    opts: &CsvOptions,
) -> Result<(bool, Vec<Value>), String> {
    let schema = live.schema();
    if record.len() != schema.arity() + 1 {
        return Err(format!(
            "delta line {line}: expected op + {} values, found {} fields",
            schema.arity(),
            record.len()
        ));
    }
    let insert = match record[0].trim() {
        "+" | "insert" | "i" => true,
        "-" | "delete" | "d" => false,
        other => return Err(format!("delta line {line}: unknown op `{other}` (use + or -)")),
    };
    let mut values = Vec::with_capacity(schema.arity());
    for (field, raw) in schema.fields().iter().zip(record[1..].iter()) {
        // Shared cell semantics with the --csv reader (null tokens, type
        // coercion) via storage's parse_cell.
        let v = parse_cell(raw, field, opts).ok_or_else(|| {
            format!(
                "delta line {line}: cannot parse `{raw}` as {} for `{}`",
                field.dtype, field.name
            )
        })?;
        values.push(v);
    }
    Ok((insert, values))
}

/// `evofd watch --csv base.csv --deltas stream.csv --fd "A -> B" [--fd ...]
/// [--batch N] [--threshold T1,T2] [--quiet]` — replay a CSV delta stream
/// against the base relation and print every FD drift event as it occurs.
///
/// The stream has one record per change: `+,v1,v2,…` inserts a tuple,
/// `-,v1,v2,…` deletes the first live tuple with those values. Records are
/// applied in batches of `--batch` (default 1).
pub fn cmd_watch(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let deltas_path = cli.require("deltas")?;
    let opts = CsvOptions::default();
    let text = std::fs::read_to_string(deltas_path).map_err(err)?;
    let records = read_csv_records(&text, &opts).map_err(err)?;
    let batch_size = cli.get_or("batch", 1usize).max(1);
    let thresholds: Vec<f64> = cli
        .get("threshold")
        .map(|t| t.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_default();
    let quiet = cli.flag("quiet");

    let mut live = LiveRelation::new(rel);
    let config =
        ValidatorConfig { confidence_thresholds: thresholds, ..ValidatorConfig::default() };
    let mut validator = IncrementalValidator::with_config(&live, fds, config);
    let feed = validator.subscribe();
    println!(
        "watching {} ({} rows) over {} declared FD(s); replaying {} change(s) in batches of {batch_size}",
        live.schema().name(),
        live.row_count(),
        validator.fds().len(),
        records.len()
    );

    let mut applied_changes = 0usize;
    let mut skipped = 0usize;
    let mut delta = Delta::new();
    let flush = |live: &mut LiveRelation,
                 validator: &mut IncrementalValidator,
                 delta: &mut Delta|
     -> Result<(), String> {
        if delta.is_empty() {
            return Ok(());
        }
        let applied = live.apply(delta).map_err(err)?;
        validator.apply(live, &applied);
        if live.maybe_compact() > 0 {
            validator.resync(live);
        }
        *delta = Delta::new();
        Ok(())
    };

    for (i, record) in records.iter().enumerate() {
        let line = i + 1;
        let (insert, values) = parse_delta_record(&live, record, line, &opts)?;
        if insert {
            delta.inserts.push(values);
        } else {
            // Value-addressed delete. First try to resolve it against the
            // current live rows minus the deletes already queued in this
            // batch — that keeps `--batch` effective for delete-heavy
            // streams. Only if nothing matches (the target may be a
            // pending insert of this same batch) flush and retry once.
            let pending = delta.deletes.clone();
            let resolve = |live: &LiveRelation, excluded: &[usize]| {
                live.live_rows()
                    .find(|&r| !excluded.contains(&r) && live.relation().row(r) == values)
            };
            let row = match resolve(&live, &pending) {
                Some(row) => Some(row),
                None => {
                    flush(&mut live, &mut validator, &mut delta)?;
                    resolve(&live, &[])
                }
            };
            match row {
                Some(row) => delta.deletes.push(row),
                None => {
                    skipped += 1;
                    if !quiet {
                        println!("  (line {line}: no live row matches the delete — skipped)");
                    }
                    continue;
                }
            }
        }
        applied_changes += 1;
        if delta.len() >= batch_size {
            flush(&mut live, &mut validator, &mut delta)?;
        }
        for event in validator.poll(feed) {
            println!("{event}");
        }
    }
    flush(&mut live, &mut validator, &mut delta)?;
    for event in validator.poll(feed) {
        println!("{event}");
    }

    let report = validator.report();
    let stats = validator.stats();
    println!(
        "\nreplayed {applied_changes} change(s) ({skipped} skipped); final: {} rows, {} of {} FD(s) violated",
        live.row_count(),
        report.violation_count(),
        validator.fds().len()
    );
    let mut t = TextTable::new(["FD", "confidence", "goodness", "violating rows"]);
    for (i, s) in report.statuses.iter().enumerate() {
        t.row([
            s.fd.display(live.schema()),
            format_confidence(s.measures.confidence),
            s.measures.goodness.to_string(),
            validator.summary(i).violating_rows.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "maintenance: {} delta(s) applied incrementally, {} full recompute(s), {} drift event(s)",
        stats.incremental, stats.full_recomputes, stats.events
    );
    Ok(())
}

/// `evofd gen --dataset tpch|places|country|rental|image|pagelinks|veterans
///  [--scale f] [--rows n] [--attrs k] [--seed s] --out DIR`
pub fn cmd_gen(cli: &Cli) -> CmdResult {
    let dataset = cli.require("dataset")?;
    let out = cli.require("out")?;
    let out_dir = Path::new(out);
    std::fs::create_dir_all(out_dir).map_err(err)?;
    let seed = cli.get_or("seed", 2016u64);
    let mut written: Vec<Relation> = Vec::new();
    match dataset {
        "tpch" => {
            let spec = dg::TpchSpec { scale: cli.get_or("scale", 0.01), seed };
            for table in dg::TpchTable::ALL {
                written.push(dg::generate_table(&spec, table));
            }
        }
        "places" => written.push(dg::places()),
        "country" => written.push(dg::country(seed)),
        "rental" => written.push(dg::rental(seed)),
        "image" => written.push(dg::image_sized(seed, cli.get_or("rows", 20_000))),
        "pagelinks" => written.push(dg::pagelinks_sized(seed, cli.get_or("rows", 100_000))),
        "veterans" => {
            written.push(dg::veterans(seed, cli.get_or("attrs", 30), cli.get_or("rows", 20_000)))
        }
        other => return Err(format!("unknown dataset `{other}`")),
    }
    for rel in &written {
        let path = out_dir.join(format!("{}.csv", rel.name()));
        write_csv_path(rel, &path).map_err(err)?;
        println!("wrote {} ({} rows × {} attrs)", path.display(), rel.row_count(), rel.arity());
    }
    Ok(())
}

/// `evofd sql --csv a.csv [--csv b.csv] --query "SELECT ..."`
pub fn cmd_sql(cli: &Cli) -> CmdResult {
    let mut catalog = evofd_storage::Catalog::new();
    for path in cli.get_all("csv") {
        let rel = read_csv_path(Path::new(path), &CsvOptions::default()).map_err(err)?;
        catalog.insert(rel).map_err(err)?;
    }
    let query = cli.require("query")?;
    let mut engine = evofd_sql::Engine::with_catalog(catalog);
    match engine.execute(query).map_err(err)? {
        evofd_sql::QueryResult::Rows(rel) => print!("{}", rel.render(cli.get_or("limit", 50))),
        other => println!("{other:?}"),
    }
    Ok(())
}

/// `evofd keys --csv file.csv --fd ...` — schema reasoning: minimal cover
/// and candidate keys implied by the declared FDs.
pub fn cmd_keys(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let cover = minimal_cover(&fds);
    println!("minimal cover ({} FDs):", cover.len());
    for fd in &cover {
        println!("  {}", fd.display(rel.schema()));
    }
    let keys = evofd_core::candidate_keys(rel.arity(), &cover, 32);
    println!("candidate keys ({}):", keys.len());
    for k in &keys {
        println!("  {}", rel.schema().render_attrs(k));
    }
    Ok(())
}

/// `evofd violations --csv file.csv --fd "A -> B" [--limit N]` — show the
/// tuples behind each violation (the evidence a designer inspects).
pub fn cmd_violations(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let limit = cli.get_or("limit", 10usize);
    for fd in &fds {
        let report = violations(&rel, fd);
        print!("{}", report.render(&rel, limit));
        if report.is_clean() {
            println!("  (satisfied)");
        }
    }
    Ok(())
}

/// `evofd discover --csv file.csv [--max-lhs K] [--min-confidence C]
/// [--limit N]` — mine minimal (approximate) FDs from the data.
pub fn cmd_discover(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let config = DiscoveryConfig {
        max_lhs: cli.get_or("max-lhs", 2usize),
        min_confidence: cli.get_or("min-confidence", 1.0f64),
        max_results: cli.get_or("limit", 200usize),
        attributes: None,
    };
    let result = discover_fds(&rel, &config);
    let mut t = TextTable::new(["FD", "confidence", "goodness"]);
    for d in &result.fds {
        t.row([
            d.fd.display(rel.schema()),
            format_confidence(d.measures.confidence),
            d.measures.goodness.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "{} FDs mined ({} lattice nodes, {} checks{}) in {}",
        result.fds.len(),
        result.nodes_visited,
        result.checks,
        if result.truncated { ", truncated" } else { "" },
        format_duration(result.elapsed),
    );
    Ok(())
}

/// `evofd cfd --csv file.csv --fd "A -> B"` — propose *conditioning*
/// evolutions: scopes under which the violated FD still holds.
pub fn cmd_cfd(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    for fd in &fds {
        println!("conditioning candidates for {}:", fd.display(rel.schema()));
        let repairs = condition_repairs(&rel, fd);
        let mut t = TextTable::new(["condition attr", "coverage", "clean values", "dirty values"]);
        for r in repairs.iter().take(cli.get_or("limit", 10usize)) {
            t.row([
                rel.schema().attr_name(r.attr).to_string(),
                format!("{:.1}%", r.coverage * 100.0),
                r.clean_cfds.len().to_string(),
                r.dirty_values.to_string(),
            ]);
        }
        print!("{}", t.render());
        if let Some(best) = repairs.first() {
            for cfd in best.clean_cfds.iter().take(3) {
                println!("  e.g. {}", cfd.display(rel.schema()));
            }
        }
    }
    Ok(())
}

/// `evofd bcnf --csv file.csv --fd ...` — normal-form analysis of the
/// declared FD set.
pub fn cmd_bcnf(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let arity = rel.arity();
    let viol = bcnf_violations(arity, &fds);
    if viol.is_empty() {
        println!("schema is in BCNF under the declared FDs");
        return Ok(());
    }
    println!("BCNF violations:");
    for fd in &viol {
        println!("  {}", fd.display(rel.schema()));
    }
    println!("suggested lossless decomposition:");
    for fragment in bcnf_decompose(arity, &fds) {
        println!("  {}", rel.schema().render_attrs(&fragment.attrs));
    }
    Ok(())
}

/// `evofd demo` — the paper's running example, end to end.
pub fn cmd_demo() -> CmdResult {
    let rel = dg::places();
    println!("The Places relation (Figure 1):\n");
    print!("{}", rel.render(11));
    let fds = dg::places_fds(&rel);
    println!("\nDeclared FDs:");
    for (i, fd) in fds.iter().enumerate() {
        println!("  F{}: {}", i + 1, fd.display(rel.schema()));
    }
    let report = validate(&rel, &fds);
    println!("\nValidation:");
    for s in &report.statuses {
        println!(
            "  {} — confidence {}, goodness {}{}",
            s.fd.display(rel.schema()),
            format_confidence(s.measures.confidence),
            s.measures.goodness,
            if s.satisfied() { "" } else { "  [VIOLATED]" }
        );
    }
    println!("\nRepairing F1 (find all single-attribute repairs — Table 1):");
    let search = repair_fd(&rel, &fds[0], &RepairConfig::find_all()).map_err(err)?;
    let mut t = TextTable::new(["evolved FD", "added", "goodness"]);
    for r in search.repairs.iter().filter(|r| r.added.len() == 1) {
        t.row([
            r.fd.display(rel.schema()),
            rel.schema().render_attrs(&r.added),
            r.measures.goodness.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("The paper picks Municipal: goodness 0 makes the cluster map bijective.");
    Ok(())
}

/// Print top-level usage.
pub fn usage() -> String {
    "evofd — semi-automatic support for evolving functional dependencies (EDBT 2016)\n\
     \n\
     USAGE: evofd <command> [options]\n\
     \n\
     GLOBAL OPTIONS:\n\
       --threads N  parallel execution width (default: all cores; 1 = sequential)\n\
     \n\
     COMMANDS:\n\
       demo       run the paper's running example end to end\n\
       validate   --csv FILE --fd \"A, B -> C\" [--fd ...]\n\
       repair     --csv FILE --fd \"A -> B\" [--all] [--max-added N] [--goodness-threshold G]\n\
       advise     --csv FILE --fd ... [--auto]   (semi-automatic designer loop)\n\
       gen        --dataset tpch|places|country|rental|image|pagelinks|veterans\n\
                  [--scale F] [--rows N] [--attrs K] [--seed S] --out DIR\n\
       sql        --csv FILE [--csv FILE2] --query \"SELECT ...\"\n\
       keys       --csv FILE --fd ...            (minimal cover + candidate keys)\n\
       violations --csv FILE --fd ... [--limit N] (show offending tuples)\n\
       watch      --csv FILE --deltas STREAM --fd ... [--batch N] [--threshold T1,T2]\n\
                  (replay +/- delta stream, print FD drift events)\n\
       discover   --csv FILE [--max-lhs K] [--min-confidence C] (mine FDs)\n\
       cfd        --csv FILE --fd ...            (conditioning evolutions)\n\
       bcnf       --csv FILE --fd ...            (normal-form analysis)\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(s: &str) -> Cli {
        Cli::parse(s.split_whitespace().map(String::from))
    }

    fn places_csv() -> String {
        let dir = std::env::temp_dir().join("evofd_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("places.csv");
        write_csv_path(&dg::places(), &path).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn demo_runs() {
        cmd_demo().unwrap();
    }

    #[test]
    fn validate_and_repair_run_on_places_csv() {
        let csv = places_csv();
        let c = cli(&format!("validate --csv {csv} --fd District,Region->AreaCode"));
        cmd_validate(&c).unwrap();
        let c = cli(&format!("repair --csv {csv} --fd District,Region->AreaCode --all"));
        cmd_repair(&c).unwrap();
    }

    #[test]
    fn advise_auto_mode() {
        let csv = places_csv();
        let c = cli(&format!("advise --csv {csv} --fd District->PhNo --auto"));
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        cmd_advise(&c, &mut empty).unwrap();
    }

    #[test]
    fn advise_interactive_accept() {
        let csv = places_csv();
        let c = cli(&format!("advise --csv {csv} --fd District->PhNo"));
        let mut input = std::io::Cursor::new(b"accept 1\n".to_vec());
        cmd_advise(&c, &mut input).unwrap();
    }

    #[test]
    fn gen_and_sql_round_trip() {
        let dir = std::env::temp_dir().join("evofd_cli_gen");
        let _ = std::fs::remove_dir_all(&dir);
        let c = cli(&format!("gen --dataset places --out {}", dir.display()));
        cmd_gen(&c).unwrap();
        let csv = dir.join("Places.csv");
        assert!(csv.exists());
        let c = cli(&format!("sql --csv {} --query SELECT_COUNT_PLACEHOLDER", csv.display()));
        // Build the query via options directly (spaces break the helper).
        let mut c = c;
        c.options.retain(|(n, _)| n != "query");
        c.options.push(("query".into(), "SELECT COUNT(DISTINCT Zip) FROM Places".into()));
        cmd_sql(&c).unwrap();
    }

    #[test]
    fn keys_command() {
        let csv = places_csv();
        let c =
            cli(&format!("keys --csv {csv} --fd Zip->City,State --fd District,Region->AreaCode"));
        cmd_keys(&c).unwrap();
    }

    #[test]
    fn missing_options_error() {
        assert!(cmd_validate(&cli("validate")).is_err());
        assert!(cmd_gen(&cli("gen --dataset nope --out /tmp/x")).is_err());
        let csv = places_csv();
        assert!(cmd_validate(&cli(&format!("validate --csv {csv}"))).is_err());
    }

    #[test]
    fn usage_lists_commands() {
        let u = usage();
        for cmd in [
            "demo",
            "validate",
            "repair",
            "advise",
            "gen",
            "sql",
            "keys",
            "violations",
            "discover",
            "cfd",
            "bcnf",
        ] {
            assert!(u.contains(cmd), "{cmd}");
        }
        assert!(u.contains("--threads"), "global width flag documented");
    }

    #[test]
    fn watch_replays_delta_stream() {
        let csv = places_csv();
        let dir = std::env::temp_dir().join("evofd_cli_watch");
        std::fs::create_dir_all(&dir).unwrap();
        let deltas = dir.join("deltas.csv");
        // Places columns: District,Region,Municipal,AreaCode,PhNo,Street,Zip,City,State.
        // Insert a tuple that breaks Municipal -> AreaCode, then remove it.
        let row = "Collin,R1,Glendale,999,111-1111,Pine,60415,Chicago,IL";
        std::fs::write(&deltas, format!("+,{row}\n-,{row}\n-,{row}\n")).unwrap();
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode --threshold 0.9",
            deltas.display()
        ));
        cmd_watch(&c).unwrap();
        // Missing required options error out.
        assert!(cmd_watch(&cli(&format!("watch --csv {csv}"))).is_err());
        assert!(cmd_watch(&cli("watch --deltas nope.csv --fd A->B")).is_err());
    }

    #[test]
    fn watch_rejects_malformed_stream() {
        let csv = places_csv();
        let dir = std::env::temp_dir().join("evofd_cli_watch_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let deltas = dir.join("bad.csv");
        std::fs::write(&deltas, "?,a,b\n").unwrap();
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode",
            deltas.display()
        ));
        let msg = cmd_watch(&c).unwrap_err();
        assert!(msg.contains("expected op") || msg.contains("unknown op"), "{msg}");
    }

    #[test]
    fn violations_and_discover_and_cfd_run() {
        let csv = places_csv();
        cmd_violations(&cli(&format!("violations --csv {csv} --fd Zip->City,State"))).unwrap();
        cmd_discover(&cli(&format!("discover --csv {csv} --max-lhs 2"))).unwrap();
        cmd_cfd(&cli(&format!("cfd --csv {csv} --fd Zip->City"))).unwrap();
        cmd_bcnf(&cli(&format!("bcnf --csv {csv} --fd Municipal->AreaCode --fd Zip->City")))
            .unwrap();
    }
}
