//! The `evofd` subcommands.

use std::io::BufRead;
use std::path::Path;

use evofd_core::{
    bcnf_decompose, bcnf_violations, condition_repairs, discover_fds, find_fd_repairs,
    format_confidence, format_duration, minimal_cover, repair_fd, validate, violations,
    AdvisorSession, DiscoveryConfig, Fd, RepairConfig, SearchMode, TextTable,
};
use evofd_datagen as dg;
use evofd_incremental::{
    Delta, IncrementalValidator, LiveAdvisor, LiveRelation, ValidatorConfig, ValidatorStats,
    DEFAULT_COMPACT_THRESHOLD,
};
use evofd_persist::{
    read_position, Database, DirTransport, DurableEngine, DurableRelation, FrameTransport,
    PersistOptions, ReplicaState, SyncPolicy,
};
use evofd_server::{Client, EvofdServer, ServerOptions, SocketTransport};
use evofd_storage::{
    parse_cell, read_csv_path, read_csv_records, write_csv_path, CsvOptions, Relation, Value,
};

use crate::args::Cli;

/// Top-level error type: rendered messages only.
pub type CmdResult = Result<(), String>;

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// Load the `--csv` relation.
fn load_relation(cli: &Cli) -> Result<Relation, String> {
    let path = cli.require("csv")?;
    read_csv_path(Path::new(path), &CsvOptions::default()).map_err(err)
}

/// Parse every `--fd` option against the relation's schema.
fn parse_fds(cli: &Cli, rel: &Relation) -> Result<Vec<Fd>, String> {
    let texts = cli.get_all("fd");
    if texts.is_empty() {
        return Err("at least one --fd \"A, B -> C\" is required".into());
    }
    texts.iter().map(|t| Fd::parse(rel.schema(), t).map_err(err)).collect()
}

fn repair_config(cli: &Cli) -> RepairConfig {
    RepairConfig {
        mode: if cli.flag("all") { SearchMode::FindAll } else { SearchMode::FindFirst },
        max_added: cli.get_or("max-added", usize::MAX),
        goodness_threshold: cli.get("goodness-threshold").and_then(|v| v.parse().ok()),
        ..RepairConfig::default()
    }
}

/// `evofd validate --csv file.csv --fd "A -> B" [--fd ...]`
pub fn cmd_validate(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let report = validate(&rel, &fds);
    let mut t = TextTable::new(["FD", "confidence", "goodness", "status"]);
    for s in &report.statuses {
        t.row([
            s.fd.display(rel.schema()),
            format_confidence(s.measures.confidence),
            s.measures.goodness.to_string(),
            if s.satisfied() { "satisfied".into() } else { "VIOLATED".to_string() },
        ]);
    }
    print!("{}", t.render());
    println!(
        "{} of {} FDs violated over {} tuples",
        report.violation_count(),
        fds.len(),
        rel.row_count()
    );
    Ok(())
}

/// `evofd repair --csv file.csv --fd "A -> B" [--all] [--max-added N]
/// [--goodness-threshold G]`
pub fn cmd_repair(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let cfg = repair_config(cli);
    let outcomes = find_fd_repairs(&rel, &fds, &cfg);
    for outcome in outcomes {
        let fd_text = outcome.ranked.fd.display(rel.schema());
        if outcome.satisfied() {
            println!("{fd_text}: satisfied (confidence 1)");
            continue;
        }
        let search = outcome.search.as_ref().expect("violated outcome has a search");
        println!(
            "{fd_text}: VIOLATED (confidence {}, goodness {}) — searched in {}",
            format_confidence(search.original_measures.confidence),
            search.original_measures.goodness,
            format_duration(search.elapsed),
        );
        if search.repairs.is_empty() {
            println!("  no repair exists within the configured bounds");
            continue;
        }
        let mut t = TextTable::new(["#", "evolved FD", "added", "goodness"]);
        for (i, r) in search.repairs.iter().enumerate() {
            t.row([
                (i + 1).to_string(),
                r.fd.display(rel.schema()),
                rel.schema().render_attrs(&r.added),
                r.measures.goodness.to_string(),
            ]);
        }
        print!("{}", t.render());
    }
    Ok(())
}

/// `evofd advise --csv file.csv --fd ... [--auto]` — the semi-automatic
/// loop. `--auto` accepts the top proposal for every violated FD;
/// otherwise decisions are read from stdin (`accept <n>` / `keep` /
/// `drop`).
pub fn cmd_advise(cli: &Cli, input: &mut dyn BufRead) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let mut session = AdvisorSession::new(&rel, fds);
    session.analyze().map_err(err)?;
    println!("{}", session.summary());

    for idx in session.pending() {
        let fd_text = session.fds()[idx].display(rel.schema());
        let proposals = session.proposals(idx).map_err(err)?.to_vec();
        println!("\nFD #{idx}: {fd_text} is violated. Proposals:");
        let mut t = TextTable::new(["#", "evolved FD", "goodness"]);
        for (i, p) in proposals.iter().enumerate() {
            t.row([
                (i + 1).to_string(),
                p.fd.display(rel.schema()),
                p.measures.goodness.to_string(),
            ]);
        }
        print!("{}", t.render());
        if cli.flag("auto") {
            if proposals.is_empty() {
                session.keep(idx).map_err(err)?;
                println!("-> no proposals; keeping the FD unchanged");
            } else {
                let r = session.accept(idx, 0).map_err(err)?;
                println!("-> auto-accepted: {}", r.fd.display(rel.schema()));
            }
            continue;
        }
        println!("decision? (accept <n> | keep | drop)");
        let mut line = String::new();
        input.read_line(&mut line).map_err(err)?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["accept", n] => {
                let i: usize = n.parse().map_err(|_| "accept needs a number".to_string())?;
                let r = session.accept(idx, i.saturating_sub(1)).map_err(err)?;
                println!("-> accepted: {}", r.fd.display(rel.schema()));
            }
            ["drop"] => {
                session.drop_fd(idx).map_err(err)?;
                println!("-> dropped");
            }
            _ => {
                session.keep(idx).map_err(err)?;
                println!("-> kept unchanged");
            }
        }
    }

    println!("\naudit log:");
    for e in session.log() {
        println!("  - {e}");
    }
    let verification = session.verify();
    println!(
        "final FD set: {} FDs, {} still violated",
        session.evolved_fds().len(),
        verification.violation_count()
    );
    Ok(())
}

/// Parse one delta-stream record (`op, v1, v2, …`) against the base
/// schema. `+` inserts the tuple; `-` deletes the first live row whose
/// tuple equals the values.
fn parse_delta_record(
    live: &LiveRelation,
    record: &[String],
    line: usize,
    opts: &CsvOptions,
) -> Result<(bool, Vec<Value>), String> {
    let schema = live.schema();
    if record.len() != schema.arity() + 1 {
        return Err(format!(
            "delta line {line}: expected op + {} values, found {} fields",
            schema.arity(),
            record.len()
        ));
    }
    let insert = match record[0].trim() {
        "+" | "insert" | "i" => true,
        "-" | "delete" | "d" => false,
        other => return Err(format!("delta line {line}: unknown op `{other}` (use + or -)")),
    };
    let mut values = Vec::with_capacity(schema.arity());
    for (field, raw) in schema.fields().iter().zip(record[1..].iter()) {
        // Shared cell semantics with the --csv reader (null tokens, type
        // coercion) via storage's parse_cell.
        let v = parse_cell(raw, field, opts).ok_or_else(|| {
            format!(
                "delta line {line}: cannot parse `{raw}` as {} for `{}`",
                field.dtype, field.name
            )
        })?;
        values.push(v);
    }
    Ok((insert, values))
}

/// Parse the shared durability options (`--sync`, `--wal-compact-bytes`,
/// `--compact-threshold`).
fn persist_options(cli: &Cli) -> Result<PersistOptions, String> {
    let sync = match cli.get("sync") {
        None => SyncPolicy::PerCommit,
        Some(text) => SyncPolicy::parse(text)
            .ok_or_else(|| format!("bad --sync `{text}` (per-commit | group:N | no-sync)"))?,
    };
    Ok(PersistOptions {
        sync,
        wal_compact_bytes: cli.get_or("wal-compact-bytes", 4u64 << 20),
        compact_threshold: cli.get_or("compact-threshold", DEFAULT_COMPACT_THRESHOLD),
        history_stride: cli.get_or("history-stride", 1u64),
    })
}

/// The relation/validator pair `watch` mutates — in memory, or journaled
/// through `evofd-persist` when `--data-dir` is given. With `--advise` a
/// [`LiveAdvisor`] rides along, its proposal lists maintained per batch.
enum WatchState {
    Memory {
        live: Box<LiveRelation>,
        validator: Box<IncrementalValidator>,
        advisor: Option<Box<LiveAdvisor>>,
    },
    Durable {
        table: Box<DurableRelation>,
    },
}

impl WatchState {
    fn live(&self) -> &LiveRelation {
        match self {
            WatchState::Memory { live, .. } => live,
            WatchState::Durable { table } => table.live(),
        }
    }

    fn validator(&self) -> &IncrementalValidator {
        match self {
            WatchState::Memory { validator, .. } => validator,
            WatchState::Durable { table } => table.validator(),
        }
    }

    fn validator_mut(&mut self) -> &mut IncrementalValidator {
        match self {
            WatchState::Memory { validator, .. } => validator,
            WatchState::Durable { table } => table.validator_mut(),
        }
    }

    fn advisor(&self) -> Option<&LiveAdvisor> {
        match self {
            WatchState::Memory { advisor, .. } => advisor.as_deref(),
            WatchState::Durable { table } => table.advisor(),
        }
    }

    fn stats(&self) -> ValidatorStats {
        self.validator().stats()
    }

    /// Stream records already consumed by a previous run (durable only).
    fn cursor(&self) -> u64 {
        match self {
            WatchState::Memory { .. } => 0,
            WatchState::Durable { table } => table.cursor(),
        }
    }

    /// Apply one batch; `consumed` is the stream position after it (the
    /// durable path commits delta + cursor in one WAL record, and its
    /// table maintains any materialized advisor itself).
    fn apply(&mut self, delta: &Delta, consumed: u64) -> Result<(), String> {
        match self {
            WatchState::Memory { live, validator, advisor } => {
                let applied = live.apply(delta).map_err(err)?;
                validator.apply(live, &applied);
                if let Some(advisor) = advisor {
                    advisor.apply(live, validator, &applied);
                }
                if live.maybe_compact() > 0 {
                    validator.resync(live);
                    if let Some(advisor) = advisor {
                        advisor.resync(live, validator);
                    }
                }
            }
            WatchState::Durable { table } => {
                table.apply_with_cursor(delta, Some(consumed)).map_err(err)?;
            }
        }
        Ok(())
    }

    /// Rendered ranked proposals for FD `fd_index`, for `--advise` output
    /// after a drift event. `None` when no advisor is attached or the FD
    /// needs no decision.
    fn proposal_table(&self, fd_index: usize, limit: usize) -> Option<String> {
        let advisor = self.advisor()?;
        let schema = self.live().schema();
        match advisor.state(fd_index) {
            Ok(state) if state.needs_decision() => {
                let proposals = advisor.proposals(fd_index).ok()?;
                if proposals.is_empty() {
                    return Some("  (no repair exists within the configured bounds)\n".into());
                }
                let mut t = TextTable::new(["#", "evolved FD", "added", "goodness"]);
                for (i, p) in proposals.iter().take(limit).enumerate() {
                    t.row([
                        (i + 1).to_string(),
                        p.fd.display(schema),
                        schema.render_attrs(&p.added),
                        p.measures.goodness.to_string(),
                    ]);
                }
                let mut out = t.render();
                if proposals.len() > limit {
                    out.push_str(&format!("  … and {} more\n", proposals.len() - limit));
                }
                Some(out)
            }
            _ => None,
        }
    }
}

/// Drain and print pending drift events; with `--advise`, follow each
/// one with the advisor's current ranked proposals for the drifted FD.
fn print_drift(state: &mut WatchState, feed: evofd_incremental::SubscriptionId, advise: bool) {
    let events = state.validator_mut().poll(feed);
    for event in &events {
        println!("{event}");
        if advise {
            if let Some(text) = state.proposal_table(event.fd_index, 5) {
                print!("{text}");
            }
        }
    }
}

/// `evofd watch --connect ADDR [--table T] [--duration-ms N]` — subscribe
/// to a server's push feed and print every FD drift / alert event as the
/// server publishes it. Without `--table` the subscription covers every
/// served table. Runs until the connection drops (or `--duration-ms`).
fn watch_over_socket(cli: &Cli, addr: &str) -> CmdResult {
    let table = cli.get("table").unwrap_or("");
    let mut client = Client::connect(addr, "").map_err(err)?;
    client.subscribe(table).map_err(err)?;
    println!(
        "subscribed to {} at {addr}; waiting for drift/alert events",
        if table.is_empty() { "every table" } else { table }
    );
    match cli.get("duration-ms") {
        Some(ms) => {
            let ms: u64 =
                ms.parse().map_err(|_| format!("bad --duration-ms `{ms}` (milliseconds)"))?;
            let deadline = std::time::Instant::now() + std::time::Duration::from_millis(ms);
            loop {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    break;
                }
                match client.next_event_timeout(left).map_err(err)? {
                    Some((table, event)) => println!("[{table}] {event}"),
                    None => break,
                }
            }
        }
        None => loop {
            let (table, event) = client.next_event().map_err(err)?;
            println!("[{table}] {event}");
        },
    }
    Ok(())
}

/// `evofd watch --csv base.csv --deltas stream.csv --fd "A -> B" [--fd ...]
/// [--batch N] [--threshold T1,T2] [--compact-threshold F] [--quiet]
/// [--tracker-memory-limit BYTES]
/// [--data-dir DIR [--sync P] [--wal-compact-bytes N]]` — replay a CSV
/// delta stream against the base relation and print every FD drift event
/// as it occurs.
///
/// `--tracker-memory-limit` bounds each FD tracker's state; a tracker
/// that outgrows the bound degrades to sketched approximate measures
/// (flagged `approx` in `SHOW FDS`) instead of growing without bound.
///
/// The stream has one record per change: `+,v1,v2,…` inserts a tuple,
/// `-,v1,v2,…` deletes the first live tuple with those values. Records are
/// applied in batches of `--batch` (default 1).
///
/// With `--data-dir`, the relation and tracker state are journaled to
/// disk and the consumed stream position is committed atomically with
/// each batch, so a watch killed mid-stream resumes exactly where it
/// stopped when re-run with the same arguments.
pub fn cmd_watch(cli: &Cli) -> CmdResult {
    if let Some(addr) = cli.get("connect") {
        return watch_over_socket(cli, addr);
    }
    let csv_path = cli.require("csv")?;
    // Same table-naming rule as `read_csv_path`: the file stem. A durable
    // resume only needs the NAME to find the table directory — its state
    // comes from the snapshot + WAL — so the base CSV is parsed lazily,
    // only by the arms that actually build a relation from it.
    let table_name =
        Path::new(csv_path).file_stem().and_then(|s| s.to_str()).unwrap_or("table").to_string();
    let deltas_path = cli.require("deltas")?;
    let opts = CsvOptions::default();
    let text = std::fs::read_to_string(deltas_path).map_err(err)?;
    let records = read_csv_records(&text, &opts).map_err(err)?;
    let batch_size = cli.get_or("batch", 1usize).max(1);
    let thresholds: Vec<f64> = cli
        .get("threshold")
        .map(|t| t.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_default();
    let quiet = cli.flag("quiet");
    let advise = cli.flag("advise");
    let tracker_memory_limit = match cli.get("tracker-memory-limit") {
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|_| format!("--tracker-memory-limit: not a byte count: {raw:?}"))?,
        ),
        None => None,
    };
    let config = ValidatorConfig {
        confidence_thresholds: thresholds,
        tracker_memory_limit,
        ..ValidatorConfig::default()
    };

    let mut state = match cli.get("data-dir") {
        None => {
            let rel = load_relation(cli)?;
            let fds = parse_fds(cli, &rel)?;
            let mut live = LiveRelation::new(rel);
            live.set_compact_threshold(cli.get_or("compact-threshold", DEFAULT_COMPACT_THRESHOLD));
            let validator = IncrementalValidator::with_config(&live, fds, config);
            let advisor = advise.then(|| Box::new(LiveAdvisor::new(&live, &validator)));
            WatchState::Memory { live: Box::new(live), validator: Box::new(validator), advisor }
        }
        Some(dir) => {
            let popts = persist_options(cli)?;
            let table_dir = Path::new(dir).join(&table_name);
            if table_dir.join(evofd_persist::SNAPSHOT_FILE).exists() {
                let mut table = DurableRelation::open(&table_dir, popts).map_err(err)?;
                // The FD set is durable state: a reopen must not silently
                // watch different dependencies than the caller asked for.
                if !cli.get_all("fd").is_empty() {
                    let mut requested = parse_fds(cli, table.live().relation())?;
                    let mut stored = table.validator().fds().to_vec();
                    requested.sort();
                    stored.sort();
                    if requested != stored {
                        let schema = table.live().schema();
                        return Err(format!(
                            "{} already tracks [{}]; the given --fd set differs — rerun \
                             without --fd to keep it, or use a fresh --data-dir",
                            table.name(),
                            stored
                                .iter()
                                .map(|fd| fd.display(schema))
                                .collect::<Vec<_>>()
                                .join("; "),
                        ));
                    }
                }
                // Thresholds and the tracker memory bound are session
                // presentation, not durable state: this run's --threshold
                // and --tracker-memory-limit win over the snapshot's.
                table.validator_mut().set_config(config);
                let r = table.recovery();
                println!(
                    "recovered {} from {}: epoch {} snapshot + {} WAL record(s) replayed \
                     ({} rolled back, {} torn byte(s) truncated); stream cursor at {}",
                    table.name(),
                    table_dir.display(),
                    r.snapshot_epoch,
                    r.replayed,
                    r.rolled_back,
                    r.torn_bytes,
                    table.cursor()
                );
                let mut table = table;
                if advise {
                    table.ensure_advisor().map_err(err)?;
                }
                WatchState::Durable { table: Box::new(table) }
            } else {
                let rel = load_relation(cli)?;
                let fds = parse_fds(cli, &rel)?;
                let mut table =
                    DurableRelation::create(&table_dir, rel, fds, config, popts).map_err(err)?;
                if advise {
                    table.ensure_advisor().map_err(err)?;
                }
                println!("created durable table at {}", table_dir.display());
                WatchState::Durable { table: Box::new(table) }
            }
        }
    };

    // `--metrics-addr` exposes /metrics for the run; the single watched
    // table is not a Database, so /health and /history stay empty here
    // (use `evofd serve-metrics` on the data dir for those).
    let _metrics = maybe_serve_metrics(cli, std::sync::Arc::new(evofd_obs::NoSource))?;
    let feed = state.validator_mut().subscribe();
    let resume_at = state.cursor() as usize;
    if resume_at > 0 {
        println!("resuming: skipping the first {resume_at} already-applied stream record(s)");
    }
    println!(
        "watching {} ({} rows) over {} declared FD(s); replaying {} change(s) in batches of {batch_size}",
        state.live().schema().name(),
        state.live().row_count(),
        state.validator().fds().len(),
        records.len().saturating_sub(resume_at)
    );

    let mut applied_changes = 0usize;
    let mut skipped = 0usize;
    let mut delta = Delta::new();
    // Stream position (1-based record count) the current `delta` reaches.
    let mut consumed = resume_at as u64;

    for (i, record) in records.iter().enumerate().skip(resume_at) {
        let line = i + 1;
        let (insert, values) = parse_delta_record(state.live(), record, line, &opts)?;
        if insert {
            delta.inserts.push(values);
        } else {
            // Value-addressed delete. First try to resolve it against the
            // current live rows minus the deletes already queued in this
            // batch — that keeps `--batch` effective for delete-heavy
            // streams. Only if nothing matches (the target may be a
            // pending insert of this same batch) flush and retry once.
            let pending = delta.deletes.clone();
            let resolve = |live: &LiveRelation, excluded: &[usize]| {
                live.live_rows()
                    .find(|&r| !excluded.contains(&r) && live.relation().row(r) == values)
            };
            let row = match resolve(state.live(), &pending) {
                Some(row) => Some(row),
                None => {
                    state.apply(&delta, consumed)?;
                    delta = Delta::new();
                    resolve(state.live(), &[])
                }
            };
            match row {
                Some(row) => delta.deletes.push(row),
                None => {
                    skipped += 1;
                    consumed = line as u64;
                    if !quiet {
                        println!("  (line {line}: no live row matches the delete — skipped)");
                    }
                    continue;
                }
            }
        }
        applied_changes += 1;
        consumed = line as u64;
        if delta.len() >= batch_size {
            state.apply(&delta, consumed)?;
            delta = Delta::new();
        }
        print_drift(&mut state, feed, advise);
    }
    state.apply(&delta, consumed)?;
    print_drift(&mut state, feed, advise);

    let report = state.validator().report();
    let stats = state.stats();
    println!(
        "\nreplayed {applied_changes} change(s) ({skipped} skipped); final: {} rows, {} of {} FD(s) violated",
        state.live().row_count(),
        report.violation_count(),
        state.validator().fds().len()
    );
    let mut t = TextTable::new(["FD", "confidence", "goodness", "violating rows"]);
    for (i, s) in report.statuses.iter().enumerate() {
        t.row([
            s.fd.display(state.live().schema()),
            format_confidence(s.measures.confidence),
            s.measures.goodness.to_string(),
            state.validator().summary(i).violating_rows.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "maintenance: {} delta(s) applied incrementally, {} full recompute(s), {} drift event(s)",
        stats.incremental, stats.full_recomputes, stats.events
    );
    if let Some(advisor) = state.advisor() {
        println!("advisor: {}", advisor.summary());
    }
    if let WatchState::Durable { table } = &state {
        println!(
            "durable: WAL at {} byte(s), cursor {} ({})",
            table.wal_bytes(),
            table.cursor(),
            table.dir().display()
        );
    }
    Ok(())
}

/// `evofd gen --dataset tpch|places|country|rental|image|pagelinks|veterans
///  [--scale f] [--rows n] [--attrs k] [--seed s] --out DIR`
pub fn cmd_gen(cli: &Cli) -> CmdResult {
    let dataset = cli.require("dataset")?;
    let out = cli.require("out")?;
    let out_dir = Path::new(out);
    std::fs::create_dir_all(out_dir).map_err(err)?;
    let seed = cli.get_or("seed", 2016u64);
    let mut written: Vec<Relation> = Vec::new();
    match dataset {
        "tpch" => {
            let spec = dg::TpchSpec { scale: cli.get_or("scale", 0.01), seed };
            for table in dg::TpchTable::ALL {
                written.push(dg::generate_table(&spec, table));
            }
        }
        "places" => written.push(dg::places()),
        "country" => written.push(dg::country(seed)),
        "rental" => written.push(dg::rental(seed)),
        "image" => written.push(dg::image_sized(seed, cli.get_or("rows", 20_000))),
        "pagelinks" => written.push(dg::pagelinks_sized(seed, cli.get_or("rows", 100_000))),
        "veterans" => {
            written.push(dg::veterans(seed, cli.get_or("attrs", 30), cli.get_or("rows", 20_000)))
        }
        other => return Err(format!("unknown dataset `{other}`")),
    }
    for rel in &written {
        let path = out_dir.join(format!("{}.csv", rel.name()));
        write_csv_path(rel, &path).map_err(err)?;
        println!("wrote {} ({} rows × {} attrs)", path.display(), rel.row_count(), rel.arity());
    }
    Ok(())
}

/// `evofd sql --csv a.csv [--csv b.csv] --query "SELECT ..."
/// [--data-dir DIR [--replica] [--sync P] [--wal-compact-bytes N]
/// [--compact-threshold F]]`
///
/// Without `--data-dir`, runs against an in-memory catalog of the `--csv`
/// files. With it, opens (or creates) a durable database there: every
/// `--csv` not yet present is imported as a durable table, and every
/// INSERT/DELETE/UPDATE in `--query` is a write-ahead transaction that
/// survives a crash. With `--replica` the directory is a follower's: the
/// engine is read-only (SELECT / SHOW FDS / CHECK FD; DML rejected) and
/// serves whatever position the follower has caught up to.
pub fn cmd_sql(cli: &Cli) -> CmdResult {
    let query = cli.require("query")?;
    let limit = cli.get_or("limit", 50usize);
    if let Some(addr) = cli.get("connect") {
        // Client mode: the statements run in this connection's session on
        // the server; results arrive pre-rendered.
        let mut client = Client::connect(addr, "").map_err(err)?;
        client.set_session(cli.flag("replica"), limit as u64).map_err(err)?;
        let text = client.sql(query).map_err(err)?;
        print!("{text}");
        return Ok(());
    }
    if cli.flag("replica") {
        let dir = cli.require("data-dir")?;
        return run_replica_sql(cli, dir, query);
    }
    let results = match cli.get("data-dir") {
        None => {
            let mut catalog = evofd_storage::Catalog::new();
            for path in cli.get_all("csv") {
                let rel = read_csv_path(Path::new(path), &CsvOptions::default()).map_err(err)?;
                catalog.insert(rel).map_err(err)?;
            }
            let mut engine = evofd_sql::Engine::with_catalog(catalog);
            engine.run_script(query).map_err(err)?
        }
        Some(dir) => {
            let popts = persist_options(cli)?;
            let mut engine = DurableEngine::open(Path::new(dir), popts).map_err(err)?;
            for path in cli.get_all("csv") {
                let rel = read_csv_path(Path::new(path), &CsvOptions::default()).map_err(err)?;
                let name = rel.name().to_string();
                if engine.import_table(rel).map_err(err)? {
                    println!("importing {path} as durable table `{name}`");
                }
            }
            engine.run_script(query).map_err(err)?
        }
    };
    for result in results {
        match result {
            evofd_sql::QueryResult::Rows(rel) => print!("{}", rel.render(limit)),
            other => println!("{other:?}"),
        }
    }
    Ok(())
}

/// `evofd open --data-dir DIR [--sync P] [--compact-threshold F]
/// [--checkpoint] [--query "SELECT ..."]` — open a durable database,
/// print its recovery report and per-table FD state, optionally run a
/// query and/or checkpoint (snapshot + WAL reset) before exiting.
pub fn cmd_open(cli: &Cli) -> CmdResult {
    let dir = cli.require("data-dir")?;
    let popts = persist_options(cli)?;
    let mut db = Database::open(Path::new(dir), popts).map_err(err)?;
    println!("database {}: {} table(s)", dir, db.names().len());
    let mut t = TextTable::new([
        "table",
        "rows",
        "physical",
        "epoch",
        "WAL bytes",
        "replayed",
        "rolled back",
        "torn",
        "cursor",
    ]);
    for (name, table) in db.iter() {
        let r = table.recovery();
        t.row([
            name.to_string(),
            table.live().row_count().to_string(),
            table.live().physical_rows().to_string(),
            table.live().epoch().to_string(),
            table.wal_bytes().to_string(),
            r.replayed.to_string(),
            r.rolled_back.to_string(),
            r.torn_bytes.to_string(),
            table.cursor().to_string(),
        ]);
    }
    print!("{}", t.render());
    for (name, table) in db.iter() {
        let v = table.validator();
        if v.fds().is_empty() {
            continue;
        }
        println!("\n{name}: {} FD(s) under incremental validation", v.fds().len());
        let mut t = TextTable::new(["FD", "confidence", "goodness", "violating rows"]);
        for (i, fd) in v.fds().iter().enumerate() {
            let m = v.measures(i);
            t.row([
                fd.display(table.live().schema()),
                format_confidence(m.confidence),
                m.goodness.to_string(),
                v.summary(i).violating_rows.to_string(),
            ]);
        }
        print!("{}", t.render());
    }
    if cli.flag("checkpoint") {
        db.checkpoint_all().map_err(err)?;
        println!("\ncheckpointed: every table snapshotted, WALs reset");
    }
    if let Some(query) = cli.get("query") {
        // Reuse the already-recovered database — no second recovery pass.
        let mut engine = DurableEngine::from_database(db).map_err(err)?;
        for result in engine.run_script(query).map_err(err)? {
            match result {
                evofd_sql::QueryResult::Rows(rel) => {
                    print!("{}", rel.render(cli.get_or("limit", 50)))
                }
                other => println!("{other:?}"),
            }
        }
    }
    Ok(())
}

/// `evofd sql` in replica mode: open the follower's data directory
/// read-only and serve SELECT / SHOW FDS / CHECK FD; DML errors cleanly.
fn run_replica_sql(cli: &Cli, dir: &str, query: &str) -> CmdResult {
    if !cli.get_all("csv").is_empty() {
        return Err("--replica serves reads only; import CSVs on the leader instead".into());
    }
    let popts = persist_options(cli)?;
    let mut engine = DurableEngine::open_replica(Path::new(dir), popts).map_err(err)?;
    for result in engine.run_script(query).map_err(err)? {
        match result {
            evofd_sql::QueryResult::Rows(rel) => print!("{}", rel.render(cli.get_or("limit", 50))),
            other => println!("{other:?}"),
        }
    }
    Ok(())
}

/// The table directories a leader data directory ships (subdirectories
/// holding a snapshot), in name order.
fn replicated_tables(data_dir: &Path) -> Result<Vec<String>, String> {
    let mut tables = Vec::new();
    let entries = std::fs::read_dir(data_dir)
        .map_err(|e| format!("cannot read {}: {e}", data_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(err)?;
        let path = entry.path();
        if path.is_dir() && path.join(evofd_persist::SNAPSHOT_FILE).exists() {
            tables.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    tables.sort();
    Ok(tables)
}

/// `evofd serve --data-dir DIR [--csv FILE ...] [--sync P]
/// [--wal-compact-bytes N] [--checkpoint-on-exit]` — run a leader: open
/// (or create) the durable database, import any `--csv` tables, then
/// execute SQL statements read line-by-line from stdin as write-ahead
/// transactions. After every line the per-table shipping position is
/// printed, so followers tailing the directory (`evofd follow`) can be
/// watched converging. EOF (or a `quit` line) ends the session.
pub fn cmd_serve(cli: &Cli, input: &mut dyn BufRead) -> CmdResult {
    let dir = cli.require("data-dir")?;
    let popts = persist_options(cli)?;
    let mut engine = DurableEngine::open(Path::new(dir), popts).map_err(err)?;
    for path in cli.get_all("csv") {
        let rel = read_csv_path(Path::new(path), &CsvOptions::default()).map_err(err)?;
        let name = rel.name().to_string();
        if engine.import_table(rel).map_err(err)? {
            println!("importing {path} as durable table `{name}`");
        }
    }
    let positions = |engine: &DurableEngine| {
        engine.with_database(|db| {
            for (name, table) in db.iter() {
                println!(
                    "ship: {name} at seq {} (snapshot horizon {})",
                    table.last_seq(),
                    table.snapshot_seq()
                );
            }
        })
    };
    println!("serving {dir}; followers tail this directory with `evofd follow --from {dir}`");
    let _metrics = maybe_serve_metrics(
        cli,
        std::sync::Arc::new(evofd_persist::DbMonitorSource::new(engine.database_handle())),
    )?;
    positions(&engine);

    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line).map_err(err)? == 0 {
            break; // EOF
        }
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        if sql.eq_ignore_ascii_case("quit") || sql.eq_ignore_ascii_case("exit") {
            break;
        }
        match engine.run_script(sql) {
            Err(e) => println!("error: {e}"),
            Ok(results) => {
                for result in results {
                    match result {
                        evofd_sql::QueryResult::Rows(rel) => {
                            print!("{}", rel.render(cli.get_or("limit", 50)))
                        }
                        other => println!("{other:?}"),
                    }
                }
                positions(&engine);
            }
        }
    }
    if cli.flag("checkpoint-on-exit") {
        engine.checkpoint().map_err(err)?;
        println!("checkpointed (followers behind the new snapshot will re-bootstrap)");
    }
    Ok(())
}

/// `evofd server --data-dir DIR [--addr 127.0.0.1:9899] [--csv FILE ...]
/// [--read-only] [--poll-ms N] [--duration-ms N] [--sync P]` — run the
/// multi-client TCP service: open (or create) the durable database,
/// import any `--csv` tables, then serve concurrent sessions over the
/// framed wire protocol. Each connection gets its own session state
/// (`SET` settings, read-only flag, render limit); followers tail tables
/// with `evofd follow --connect`, and `evofd watch --connect` streams
/// pushed drift/alert events. `--read-only` rejects DML on every
/// session (serving a replica directory). Runs until killed, or for
/// `--duration-ms` when given.
pub fn cmd_server(cli: &Cli) -> CmdResult {
    let dir = cli.require("data-dir")?;
    let popts = persist_options(cli)?;
    let read_only = cli.flag("read-only");
    let mut engine = if read_only {
        DurableEngine::open_replica(Path::new(dir), popts).map_err(err)?
    } else {
        DurableEngine::open(Path::new(dir), popts).map_err(err)?
    };
    for path in cli.get_all("csv") {
        if read_only {
            return Err("--read-only serves existing tables; import CSVs without it".into());
        }
        let rel = read_csv_path(Path::new(path), &CsvOptions::default()).map_err(err)?;
        let name = rel.name().to_string();
        if engine.import_table(rel).map_err(err)? {
            println!("importing {path} as durable table `{name}`");
        }
    }
    let _metrics = maybe_serve_metrics(
        cli,
        std::sync::Arc::new(evofd_persist::DbMonitorSource::new(engine.database_handle())),
    )?;
    let opts = ServerOptions { read_only, poll_ms: cli.get_or("poll-ms", 25) };
    let addr = cli.get("addr").unwrap_or("127.0.0.1:9899");
    let server = EvofdServer::start(engine, addr, opts).map_err(err)?;
    println!(
        "evofd-server on {} serving {dir}{}; connect with `evofd sql --connect {}` or \
         `evofd follow --connect {}`",
        server.addr(),
        if read_only { " (read-only)" } else { "" },
        server.addr(),
        server.addr(),
    );
    match cli.get("duration-ms") {
        Some(ms) => {
            let ms: u64 =
                ms.parse().map_err(|_| format!("bad --duration-ms `{ms}` (milliseconds)"))?;
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    Ok(())
}

/// One `follow` pass over every table: sync each replica against its
/// leader directory, reporting progress. Returns the total remaining lag.
fn follow_round(
    replicas: &mut [(String, ReplicaState, Box<dyn FrameTransport>)],
    max_frames: Option<usize>,
    quiet: bool,
) -> Result<u64, String> {
    let _span = evofd_obs::span("follow.round");
    let mut total_lag = 0;
    for (name, replica, transport) in replicas.iter_mut() {
        let report = replica.sync_with_limit(transport.as_mut(), max_frames).map_err(err)?;
        let lag = replica.lag(transport.as_mut()).map_err(err)?;
        if evofd_obs::enabled() {
            evofd_obs::metrics::REPL_LAG_FRAMES.with_label(name).set(lag as i64);
        }
        total_lag += lag;
        if !quiet {
            for event in &report.drift {
                println!("[{name}] {event}");
            }
            println!(
                "[{name}] {}applied {} frame(s) ({} rolled back, {} skipped); at seq {}, lag {lag}",
                if report.bootstrapped { "bootstrapped; " } else { "" },
                report.applied,
                report.rolled_back,
                report.skipped,
                report.last_seq,
            );
        }
    }
    Ok(total_lag)
}

/// `evofd follow --from LEADER_DIR | --connect ADDR  --data-dir REPLICA_DIR
/// [--table T ...] [--follower NAME] [--sync P] [--rounds N]
/// [--max-frames N] [--forever [--poll-ms N]] [--quiet]` — run a
/// follower: bootstrap every leader table (or the `--table` subset) into
/// the replica directory from a shipped snapshot, then tail the leaders'
/// WALs, applying each frame with recovery semantics. `--from` tails a
/// leader directory read-only; `--connect` tails a running
/// `evofd server` over TCP (each fetch acks the follower's position on
/// the leader, and under `--forever` a server restart is ridden out by
/// reconnecting). Only the **replica** directory is locked; a directory
/// leader may be live in another process.
///
/// By default the command exits once every table is caught up; `--forever`
/// keeps polling every `--poll-ms` (default 200). `--rounds`/`--max-frames`
/// bound the work per invocation (restarting later resumes exactly at the
/// acked position).
pub fn cmd_follow(cli: &Cli) -> CmdResult {
    let connect = cli.get("connect");
    let from = match connect {
        Some(_) => None,
        None => Some(Path::new(cli.require("from")?)),
    };
    let dir = Path::new(cli.require("data-dir")?);
    let popts = persist_options(cli)?;
    let mut tables: Vec<String> = cli.get_all("table").into_iter().map(String::from).collect();
    if tables.is_empty() {
        tables = match (connect, from) {
            (Some(addr), _) => {
                Client::connect(addr, "").and_then(|mut c| c.tables()).map_err(err)?
            }
            (None, Some(from)) => replicated_tables(from)?,
            (None, None) => unreachable!("either --connect or --from is required"),
        };
    }
    if tables.is_empty() {
        return Err(match connect {
            Some(addr) => format!("no tables to follow at {addr}"),
            None => format!("no tables to follow in {}", from.expect("local mode").display()),
        });
    }
    let quiet = cli.flag("quiet");
    // A typo in these bounds must error, not silently mean "unlimited".
    let parse_opt = |name: &str| -> Result<Option<usize>, String> {
        match cli.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad --{name} `{v}` (expected a non-negative integer)")),
        }
    };
    let max_frames = parse_opt("max-frames")?;
    let rounds = parse_opt("rounds")?;
    let forever = cli.flag("forever");
    let poll = std::time::Duration::from_millis(cli.get_or("poll-ms", 200));

    // /metrics carries the per-table replication lag gauges; /health and
    // /history need a Database handle the follower loop does not share.
    let _metrics = maybe_serve_metrics(cli, std::sync::Arc::new(evofd_obs::NoSource))?;
    // Stable follower identity (the leader tracks acked positions per
    // follower): default to the replica directory name.
    let follower = cli.get("follower").map(String::from).unwrap_or_else(|| {
        let stem = dir.file_name().map(|n| n.to_string_lossy().into_owned());
        format!("follow-{}", stem.unwrap_or_else(|| "replica".into()))
    });
    let mut replicas: Vec<(String, ReplicaState, Box<dyn FrameTransport>)> = Vec::new();
    for name in &tables {
        let mut transport: Box<dyn FrameTransport> = match connect {
            Some(addr) => Box::new(
                SocketTransport::new(addr, name, &follower)
                    .with_retry(2, std::time::Duration::from_millis(200)),
            ),
            None => Box::new(DirTransport::new(from.expect("local mode").join(name))),
        };
        let replica =
            ReplicaState::open_or_bootstrap(&dir.join(name), transport.as_mut(), popts.clone())
                .map_err(err)?;
        println!("following {name}: at seq {} ({})", replica.last_seq(), dir.join(name).display());
        replicas.push((name.clone(), replica, transport));
    }

    let mut round = 0usize;
    loop {
        let lag = match follow_round(&mut replicas, max_frames, quiet) {
            Ok(lag) => lag,
            // A tailed server may restart under --forever: report and
            // keep polling instead of giving up mid-tail.
            Err(e) if forever && connect.is_some() => {
                if !quiet {
                    println!("leader unreachable ({e}); retrying");
                }
                std::thread::sleep(poll);
                continue;
            }
            Err(e) => return Err(e),
        };
        round += 1;
        let done = match rounds {
            Some(n) => round >= n,
            None => lag == 0 && !forever,
        };
        if done {
            break;
        }
        std::thread::sleep(poll);
    }
    for (name, replica, transport) in replicas.iter_mut() {
        let lag = replica.lag(transport.as_mut()).map_err(err)?;
        if lag == 0 {
            println!("{name}: caught up at seq {}", replica.last_seq());
        } else {
            println!("{name}: stopped at seq {} (lag {lag})", replica.last_seq());
        }
    }
    Ok(())
}

/// Leader/replica positions and lag for one table pair — exposed for the
/// CLI integration tests.
pub fn replication_lag(
    leader_table_dir: &Path,
    replica_table_dir: &Path,
) -> Result<(u64, u64, u64), String> {
    let leader = read_position(leader_table_dir).map_err(err)?;
    let replica = read_position(replica_table_dir).map_err(err)?;
    Ok((leader.last_seq, replica.last_seq, leader.last_seq.saturating_sub(replica.last_seq)))
}

/// `evofd lag --from LEADER_DIR --data-dir REPLICA_DIR [--table T ...]` —
/// report each table's leader seq, replica seq and lag. Both directories
/// are probed read-only (no locks), so this works while a leader and a
/// follower are live in other processes.
pub fn cmd_lag(cli: &Cli) -> CmdResult {
    let dir = Path::new(cli.require("data-dir")?);
    if let Some(addr) = cli.get("connect") {
        // Probe the leader over the wire; the replica directory stays a
        // lock-free local read as in directory mode.
        let mut client = Client::connect(addr, "").map_err(err)?;
        let mut tables: Vec<String> = cli.get_all("table").into_iter().map(String::from).collect();
        if tables.is_empty() {
            tables = client.tables().map_err(err)?;
        }
        let mut t = TextTable::new(["table", "leader seq", "replica seq", "lag"]);
        for name in &tables {
            let (_, leader_seq) = client.position(name).map_err(err)?;
            let replica_dir = dir.join(name);
            if !replica_dir.join(evofd_persist::SNAPSHOT_FILE).exists() {
                t.row([
                    name.clone(),
                    leader_seq.to_string(),
                    "-".into(),
                    "∞ (not bootstrapped)".into(),
                ]);
                continue;
            }
            let replica_seq = read_position(&replica_dir).map_err(err)?.last_seq;
            t.row([
                name.clone(),
                leader_seq.to_string(),
                replica_seq.to_string(),
                leader_seq.saturating_sub(replica_seq).to_string(),
            ]);
        }
        print!("{}", t.render());
        return Ok(());
    }
    let from = Path::new(cli.require("from")?);
    let mut tables: Vec<String> = cli.get_all("table").into_iter().map(String::from).collect();
    if tables.is_empty() {
        tables = replicated_tables(from)?;
    }
    let mut t = TextTable::new(["table", "leader seq", "replica seq", "lag"]);
    for name in &tables {
        let replica_dir = dir.join(name);
        if !replica_dir.join(evofd_persist::SNAPSHOT_FILE).exists() {
            let leader = read_position(&from.join(name)).map_err(err)?;
            t.row([
                name.clone(),
                leader.last_seq.to_string(),
                "-".into(),
                "∞ (not bootstrapped)".into(),
            ]);
            continue;
        }
        let (leader, replica, lag) = replication_lag(&from.join(name), &replica_dir)?;
        t.row([name.clone(), leader.to_string(), replica.to_string(), lag.to_string()]);
    }
    print!("{}", t.render());
    Ok(())
}

/// Start the monitoring endpoint when `--metrics-addr ADDR` is given:
/// turns collection on, binds the address and returns the running server
/// — the caller keeps it alive for the command's lifetime.
fn maybe_serve_metrics(
    cli: &Cli,
    source: std::sync::Arc<dyn evofd_obs::MonitorSource>,
) -> Result<Option<evofd_obs::MetricsServer>, String> {
    let Some(addr) = cli.get("metrics-addr") else { return Ok(None) };
    evofd_obs::enable();
    let server = evofd_obs::serve(addr, source).map_err(err)?;
    println!("metrics endpoint on http://{}/metrics (also /health, /history)", server.addr());
    Ok(Some(server))
}

/// `evofd serve-metrics --data-dir DIR [--addr 127.0.0.1:9187]
/// [--duration-ms N]` — open the durable database (recovery replays each
/// table's WAL) and serve the monitoring endpoint over HTTP:
/// `/metrics` (Prometheus text exposition), `/health` (per-table
/// positions, recovery report and alert state as JSON) and
/// `/history?table=T[&fd=…][&since=N]` (the durable FD-health time
/// series as JSON). Runs until killed, or for `--duration-ms` when
/// given (tests and smoke benches use that to exit cleanly).
pub fn cmd_serve_metrics(cli: &Cli) -> CmdResult {
    evofd_obs::enable();
    let dir = cli.require("data-dir")?;
    let popts = persist_options(cli)?;
    let db = Database::open(Path::new(dir), popts).map_err(err)?;
    let source = std::sync::Arc::new(evofd_persist::DbMonitorSource::new(std::sync::Arc::new(
        std::sync::Mutex::new(db),
    )));
    let addr = cli.get("addr").unwrap_or("127.0.0.1:9187");
    let server = evofd_obs::serve(addr, source).map_err(err)?;
    println!("serving http://{}/metrics /health /history for {dir}", server.addr());
    match cli.get("duration-ms") {
        Some(ms) => {
            let ms: u64 =
                ms.parse().map_err(|_| format!("bad --duration-ms `{ms}` (milliseconds)"))?;
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    Ok(())
}

/// `evofd history --data-dir DIR --table T [--fd 'A -> B'] [--since N]
/// [--json]` — print the table's durable FD-health time series: one row
/// per sampled FD per epoch, plus the drift and alert events each frame
/// retained. `--json` emits the same JSON the `/history` endpoint
/// serves.
pub fn cmd_history(cli: &Cli) -> CmdResult {
    let dir = cli.require("data-dir")?;
    let table = cli.require("table")?.to_string();
    let popts = persist_options(cli)?;
    let db = Database::open(Path::new(dir), popts).map_err(err)?;
    let since = cli.get_or("since", 0u64);
    // Canonicalise the FD filter against the table's schema so any
    // spelling that parses matches the stored display strings.
    let fd_filter = match cli.get("fd") {
        Some(text) => {
            let t = db.get(&table).map_err(err)?;
            Some(Fd::parse(t.live().schema(), text).map_err(err)?.display(t.live().schema()))
        }
        None => None,
    };
    if cli.flag("json") {
        use evofd_obs::MonitorSource;
        let source =
            evofd_persist::DbMonitorSource::new(std::sync::Arc::new(std::sync::Mutex::new(db)));
        let query = evofd_obs::HistoryQuery {
            table: Some(table),
            fd: fd_filter,
            since_epoch: (since > 0).then_some(since),
        };
        print!("{}", source.history_json(&query)?);
        return Ok(());
    }
    let t = db.get(&table).map_err(err)?;
    let frames = t.history_frames().map_err(err)?;
    let mut out = TextTable::new([
        "epoch",
        "seq",
        "rows",
        "fd",
        "confidence",
        "g3",
        "violating groups",
        "violated",
    ]);
    let mut events = Vec::new();
    for frame in frames.iter().filter(|f| f.epoch >= since) {
        for s in &frame.samples {
            if fd_filter.as_deref().is_some_and(|want| want != s.fd) {
                continue;
            }
            out.row([
                frame.epoch.to_string(),
                frame.seq.to_string(),
                frame.rows.to_string(),
                s.fd.clone(),
                format_confidence(s.confidence),
                format!("{:.4}", s.g3),
                s.violating_groups.to_string(),
                s.violated.to_string(),
            ]);
        }
        for d in &frame.drifts {
            if fd_filter.as_deref().is_some_and(|want| want != d.fd) {
                continue;
            }
            let groups = if d.groups.is_empty() {
                String::new()
            } else {
                format!(" [{}]", d.groups.join(", "))
            };
            events.push(format!(
                "epoch {} (seq {}): {} {} ({} -> {}){groups}",
                frame.epoch,
                frame.seq,
                d.fd,
                d.kind,
                format_confidence(d.confidence_before),
                format_confidence(d.confidence_after),
            ));
        }
        for a in &frame.alerts {
            if fd_filter.as_deref().is_some_and(|want| want != a.fd) {
                continue;
            }
            events.push(format!(
                "epoch {} (seq {}): alert {} on {}",
                frame.epoch,
                frame.seq,
                if a.fired { "FIRED" } else { "resolved" },
                a.rule,
            ));
        }
    }
    print!("{}", out.render());
    if !events.is_empty() {
        println!("events:");
        for e in &events {
            println!("  {e}");
        }
    }
    Ok(())
}

/// `evofd stats [--data-dir DIR] [--json | --prom] [--watch [--poll-ms N]
/// [--rounds N] [--rate]]` — dump the process-wide metrics registry.
///
/// Metrics are process-local, so a bare `evofd stats` only shows the
/// mintpool gauges; with `--data-dir` the durable database is opened
/// (recovery replays the WAL), populating the WAL, snapshot, recovery and
/// tracker families from a real workload before printing. `--prom` emits
/// Prometheus text exposition, `--json` a machine-readable dump; the
/// default is a human-readable table of flattened samples. `--watch`
/// reprints every `--poll-ms` (default 1000) until interrupted (or for
/// `--rounds N` iterations); in the table mode each counter row shows the
/// **delta since the previous poll**, and `--rate` adds a per-second
/// rate column computed from the measured (not nominal) poll interval.
pub fn cmd_stats(cli: &Cli) -> CmdResult {
    // Collection must be on before any instrumented path runs.
    evofd_obs::enable();
    let _db = match cli.get("data-dir") {
        None => None,
        Some(dir) => {
            let popts = persist_options(cli)?;
            Some(Database::open(Path::new(dir), popts).map_err(err)?)
        }
    };
    let watching = cli.flag("watch") || cli.get("rounds").is_some();
    let rate = cli.flag("rate");
    // Previous poll's sample values, keyed by metric + labels, for the
    // counter delta/rate columns.
    let mut prev: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let render = |prev: &mut std::collections::HashMap<String, f64>, elapsed_s: f64| {
        if cli.flag("prom") {
            print!("{}", evofd_obs::render_prometheus());
            return;
        }
        if cli.flag("json") {
            println!("{}", evofd_obs::render_json());
            return;
        }
        let mut headers = vec!["metric", "labels", "value"];
        if watching {
            headers.push("delta");
            if rate {
                headers.push("rate/s");
            }
        }
        let mut t = TextTable::new(headers);
        for s in evofd_obs::flatten(None) {
            let value = if s.value.fract() == 0.0 && s.value.abs() < 1e15 {
                format!("{}", s.value as i64)
            } else {
                format!("{:.3}", s.value)
            };
            let mut row = vec![s.metric.clone(), s.labels.clone(), value];
            if watching {
                // Deltas are meaningful for monotonic counters only;
                // gauges and quantiles get a blank cell.
                let key = format!("{}\u{1}{}", s.metric, s.labels);
                let is_counter = s.metric.ends_with("_total")
                    || s.metric.ends_with("_count")
                    || s.metric.ends_with("_sum");
                if is_counter {
                    let delta = s.value - prev.get(&key).copied().unwrap_or(0.0);
                    row.push(if delta.fract() == 0.0 {
                        format!("{:+}", delta as i64)
                    } else {
                        format!("{delta:+.3}")
                    });
                    if rate {
                        row.push(if elapsed_s > 0.0 {
                            format!("{:.1}", delta / elapsed_s)
                        } else {
                            "-".into()
                        });
                    }
                } else {
                    row.push(String::new());
                    if rate {
                        row.push(String::new());
                    }
                }
                prev.insert(key, s.value);
            }
            t.row(row);
        }
        print!("{}", t.render());
    };
    if watching {
        let poll = std::time::Duration::from_millis(cli.get_or("poll-ms", 1000));
        let rounds: usize = cli.get_or("rounds", usize::MAX);
        let mut last = std::time::Instant::now();
        for round in 0..rounds {
            if round > 0 {
                std::thread::sleep(poll);
                println!();
            }
            let now = std::time::Instant::now();
            let elapsed = if round == 0 { 0.0 } else { now.duration_since(last).as_secs_f64() };
            last = now;
            render(&mut prev, elapsed);
        }
    } else {
        render(&mut prev, 0.0);
    }
    Ok(())
}

/// `evofd keys --csv file.csv --fd ...` — schema reasoning: minimal cover
/// and candidate keys implied by the declared FDs.
pub fn cmd_keys(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let cover = minimal_cover(&fds);
    println!("minimal cover ({} FDs):", cover.len());
    for fd in &cover {
        println!("  {}", fd.display(rel.schema()));
    }
    let keys = evofd_core::candidate_keys(rel.arity(), &cover, 32);
    println!("candidate keys ({}):", keys.len());
    for k in &keys {
        println!("  {}", rel.schema().render_attrs(k));
    }
    Ok(())
}

/// `evofd violations --csv file.csv --fd "A -> B" [--limit N]` — show the
/// tuples behind each violation (the evidence a designer inspects).
pub fn cmd_violations(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let limit = cli.get_or("limit", 10usize);
    for fd in &fds {
        let report = violations(&rel, fd);
        print!("{}", report.render(&rel, limit));
        if report.is_clean() {
            println!("  (satisfied)");
        }
    }
    Ok(())
}

/// `evofd discover --csv file.csv [--max-lhs K] [--min-confidence C]
/// [--limit N]` — mine minimal (approximate) FDs from the data.
pub fn cmd_discover(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let config = DiscoveryConfig {
        max_lhs: cli.get_or("max-lhs", 2usize),
        min_confidence: cli.get_or("min-confidence", 1.0f64),
        max_results: cli.get_or("limit", 200usize),
        attributes: None,
    };
    let result = discover_fds(&rel, &config);
    let mut t = TextTable::new(["FD", "confidence", "goodness"]);
    for d in &result.fds {
        t.row([
            d.fd.display(rel.schema()),
            format_confidence(d.measures.confidence),
            d.measures.goodness.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "{} FDs mined ({} lattice nodes, {} checks{}) in {}",
        result.fds.len(),
        result.nodes_visited,
        result.checks,
        if result.truncated { ", truncated" } else { "" },
        format_duration(result.elapsed),
    );
    Ok(())
}

/// `evofd cfd --csv file.csv --fd "A -> B"` — propose *conditioning*
/// evolutions: scopes under which the violated FD still holds.
pub fn cmd_cfd(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    for fd in &fds {
        println!("conditioning candidates for {}:", fd.display(rel.schema()));
        let repairs = condition_repairs(&rel, fd);
        let mut t = TextTable::new(["condition attr", "coverage", "clean values", "dirty values"]);
        for r in repairs.iter().take(cli.get_or("limit", 10usize)) {
            t.row([
                rel.schema().attr_name(r.attr).to_string(),
                format!("{:.1}%", r.coverage * 100.0),
                r.clean_cfds.len().to_string(),
                r.dirty_values.to_string(),
            ]);
        }
        print!("{}", t.render());
        if let Some(best) = repairs.first() {
            for cfd in best.clean_cfds.iter().take(3) {
                println!("  e.g. {}", cfd.display(rel.schema()));
            }
        }
    }
    Ok(())
}

/// `evofd bcnf --csv file.csv --fd ...` — normal-form analysis of the
/// declared FD set.
pub fn cmd_bcnf(cli: &Cli) -> CmdResult {
    let rel = load_relation(cli)?;
    let fds = parse_fds(cli, &rel)?;
    let arity = rel.arity();
    let viol = bcnf_violations(arity, &fds);
    if viol.is_empty() {
        println!("schema is in BCNF under the declared FDs");
        return Ok(());
    }
    println!("BCNF violations:");
    for fd in &viol {
        println!("  {}", fd.display(rel.schema()));
    }
    println!("suggested lossless decomposition:");
    for fragment in bcnf_decompose(arity, &fds) {
        println!("  {}", rel.schema().render_attrs(&fragment.attrs));
    }
    Ok(())
}

/// `evofd demo` — the paper's running example, end to end.
pub fn cmd_demo() -> CmdResult {
    let rel = dg::places();
    println!("The Places relation (Figure 1):\n");
    print!("{}", rel.render(11));
    let fds = dg::places_fds(&rel);
    println!("\nDeclared FDs:");
    for (i, fd) in fds.iter().enumerate() {
        println!("  F{}: {}", i + 1, fd.display(rel.schema()));
    }
    let report = validate(&rel, &fds);
    println!("\nValidation:");
    for s in &report.statuses {
        println!(
            "  {} — confidence {}, goodness {}{}",
            s.fd.display(rel.schema()),
            format_confidence(s.measures.confidence),
            s.measures.goodness,
            if s.satisfied() { "" } else { "  [VIOLATED]" }
        );
    }
    println!("\nRepairing F1 (find all single-attribute repairs — Table 1):");
    let search = repair_fd(&rel, &fds[0], &RepairConfig::find_all()).map_err(err)?;
    let mut t = TextTable::new(["evolved FD", "added", "goodness"]);
    for r in search.repairs.iter().filter(|r| r.added.len() == 1) {
        t.row([
            r.fd.display(rel.schema()),
            rel.schema().render_attrs(&r.added),
            r.measures.goodness.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("The paper picks Municipal: goodness 0 makes the cluster map bijective.");
    Ok(())
}

/// Print top-level usage.
pub fn usage() -> String {
    "evofd — semi-automatic support for evolving functional dependencies (EDBT 2016)\n\
     \n\
     USAGE: evofd <command> [options]\n\
     \n\
     GLOBAL OPTIONS:\n\
       --threads N     parallel execution width (default: all cores; 1 = sequential)\n\
       --trace-slow MS enable metrics + tracing; log spans slower than MS ms to\n\
                       stderr (sql / watch / follow hot paths are instrumented)\n\
     \n\
     DURABILITY OPTIONS (sql / open / watch with --data-dir):\n\
       --data-dir DIR            durable database directory (delta WAL + snapshots)\n\
       --sync P                  fsync policy: per-commit | group:N | no-sync\n\
       --wal-compact-bytes N     WAL size triggering snapshot-compaction (default 4 MiB)\n\
       --compact-threshold F     tombstone fraction triggering live compaction\n\
       --history-stride N        sample FD health every N epochs into the durable\n\
                                 HISTORY file (default 1; 0 disables sampling)\n\
       --metrics-addr ADDR       (watch / serve / follow) also serve /metrics,\n\
                                 /health and /history over HTTP on ADDR\n\
     \n\
     COMMANDS:\n\
       demo       run the paper's running example end to end\n\
       validate   --csv FILE --fd \"A, B -> C\" [--fd ...]\n\
       repair     --csv FILE --fd \"A -> B\" [--all] [--max-added N] [--goodness-threshold G]\n\
       advise     --csv FILE --fd ... [--auto]   (semi-automatic designer loop)\n\
       gen        --dataset tpch|places|country|rental|image|pagelinks|veterans\n\
                  [--scale F] [--rows N] [--attrs K] [--seed S] --out DIR\n\
       sql        --csv FILE [--csv FILE2] --query \"SELECT ...\" [--data-dir DIR]\n\
                  [--connect ADDR]  (with --connect: run in a session on a\n\
                  running `evofd server`)\n\
                  (with --data-dir: DML becomes durable write-ahead transactions;\n\
                  add --replica to serve a follower read-only: SELECT / SHOW FDS /\n\
                  CHECK FD work, DML is rejected. SHOW FDS [FOR t] lists tracked\n\
                  FDs; SUGGEST REPAIRS FOR t [LIMIT n] caps at 20 proposals by\n\
                  default; SHOW STATS [FOR t] dumps the metrics registry;\n\
                  CREATE INDEX ON t (col) builds a planner index (durable\n\
                  with --data-dir); EXPLAIN <stmt> prints the chosen plan;\n\
                  EXPLAIN ANALYZE <stmt> reports per-stage timings)\n\
       open       --data-dir DIR [--checkpoint] [--query \"...\"]\n\
                  (recover a durable database, print WAL/tracker state)\n\
       serve      --data-dir DIR [--csv FILE ...] [--checkpoint-on-exit]\n\
                  (leader: execute SQL from stdin durably, print ship positions)\n\
       server     --data-dir DIR [--addr 127.0.0.1:9899] [--csv FILE ...]\n\
                  [--read-only] [--duration-ms N]\n\
                  (multi-client TCP service over the durable database: each\n\
                  connection is its own SQL session; `sql`, `follow`, `lag`\n\
                  and `watch` take --connect ADDR to run against it)\n\
       follow     --from LEADER_DIR | --connect ADDR  --data-dir REPLICA_DIR\n\
                  [--table T ...] [--follower NAME] [--rounds N] [--max-frames N]\n\
                  [--forever [--poll-ms N]]\n\
                  (follower: bootstrap from shipped snapshots, tail the WALs —\n\
                  from a leader directory or over TCP; restart-safe — resumes\n\
                  at the exact acked position)\n\
       lag        --from LEADER_DIR | --connect ADDR  --data-dir REPLICA_DIR\n\
                  [--table T ...]\n\
                  (per-table leader seq, replica seq and lag; lock-free probes)\n\
       stats      [--data-dir DIR] [--json | --prom] [--watch [--poll-ms N]\n\
                  [--rounds N] [--rate]]\n\
                  (dump the metrics registry: WAL/snapshot/recovery, tracker,\n\
                  advisor, replication and pool families; --prom emits\n\
                  Prometheus text exposition; --watch adds a per-poll delta\n\
                  column for counters, --rate a per-second rate column)\n\
       serve-metrics  --data-dir DIR [--addr 127.0.0.1:9187] [--duration-ms N]\n\
                  (serve /metrics, /health and /history over HTTP for a\n\
                  durable database; SQL: ALERT ON t FD '...' WHEN confidence\n\
                  < 0.98 FOR 5 EPOCHS installs durable alert rules, SHOW\n\
                  ALERTS and SHOW DRIFT HISTORY FOR t read them back)\n\
       history    --data-dir DIR --table T [--fd 'A -> B'] [--since N] [--json]\n\
                  (print the durable FD-health time series + drift/alert events)\n\
       keys       --csv FILE --fd ...            (minimal cover + candidate keys)\n\
       violations --csv FILE --fd ... [--limit N] (show offending tuples)\n\
       watch      --csv FILE --deltas STREAM --fd ... [--batch N] [--threshold T1,T2]\n\
                  [--advise] [--data-dir DIR]  (replay +/- delta stream, print FD\n\
                  drift events; --advise prints the live advisor's ranked repair\n\
                  proposals as drift happens; with --data-dir the watch is durable\n\
                  and resumes mid-stream; --tracker-memory-limit BYTES bounds\n\
                  per-FD tracker state — over the bound a tracker degrades to\n\
                  sketched approximate measures, flagged in SHOW FDS)\n\
                  --connect ADDR [--table T] [--duration-ms N]  (subscribe to a\n\
                  running `evofd server` and print pushed drift/alert events)\n\
       discover   --csv FILE [--max-lhs K] [--min-confidence C] (mine FDs)\n\
       cfd        --csv FILE --fd ...            (conditioning evolutions)\n\
       bcnf       --csv FILE --fd ...            (normal-form analysis)\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(s: &str) -> Cli {
        Cli::parse(s.split_whitespace().map(String::from))
    }

    fn places_csv() -> String {
        let dir = std::env::temp_dir().join("evofd_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("places.csv");
        write_csv_path(&dg::places(), &path).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn demo_runs() {
        cmd_demo().unwrap();
    }

    #[test]
    fn validate_and_repair_run_on_places_csv() {
        let csv = places_csv();
        let c = cli(&format!("validate --csv {csv} --fd District,Region->AreaCode"));
        cmd_validate(&c).unwrap();
        let c = cli(&format!("repair --csv {csv} --fd District,Region->AreaCode --all"));
        cmd_repair(&c).unwrap();
    }

    #[test]
    fn advise_auto_mode() {
        let csv = places_csv();
        let c = cli(&format!("advise --csv {csv} --fd District->PhNo --auto"));
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        cmd_advise(&c, &mut empty).unwrap();
    }

    #[test]
    fn advise_interactive_accept() {
        let csv = places_csv();
        let c = cli(&format!("advise --csv {csv} --fd District->PhNo"));
        let mut input = std::io::Cursor::new(b"accept 1\n".to_vec());
        cmd_advise(&c, &mut input).unwrap();
    }

    #[test]
    fn gen_and_sql_round_trip() {
        let dir = std::env::temp_dir().join("evofd_cli_gen");
        let _ = std::fs::remove_dir_all(&dir);
        let c = cli(&format!("gen --dataset places --out {}", dir.display()));
        cmd_gen(&c).unwrap();
        let csv = dir.join("Places.csv");
        assert!(csv.exists());
        let c = cli(&format!("sql --csv {} --query SELECT_COUNT_PLACEHOLDER", csv.display()));
        // Build the query via options directly (spaces break the helper).
        let mut c = c;
        c.options.retain(|(n, _)| n != "query");
        c.options.push(("query".into(), "SELECT COUNT(DISTINCT Zip) FROM Places".into()));
        cmd_sql(&c).unwrap();
    }

    /// Acceptance path for `evofd server`: two `evofd sql --connect`
    /// clients run concurrent sessions with independent session state
    /// (one read-only, one writing) against one served engine.
    #[test]
    fn server_serves_two_concurrent_sql_sessions() {
        let dir = std::env::temp_dir().join("evofd_cli_server");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("pair.csv");
        std::fs::write(&csv, "X,Y\nx0,y0\nx1,y1\n").unwrap();
        // Reserve a free port, then hand it to the server (bind-to-:0
        // would hide the resolved port from the test).
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let server_cli = cli(&format!(
            "server --data-dir {} --csv {} --addr {addr} --duration-ms 15000",
            dir.join("db").display(),
            csv.display()
        ));
        let server = std::thread::spawn(move || cmd_server(&server_cli));
        // Wait for the listener to come up.
        let mut up = false;
        for _ in 0..100 {
            if std::net::TcpStream::connect(&addr).is_ok() {
                up = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        assert!(up, "server did not come up on {addr}");

        let writer_addr = addr.clone();
        let writer = std::thread::spawn(move || {
            let mut c = cli(&format!("sql --connect {writer_addr}"));
            c.options.push(("query".into(), "INSERT INTO pair VALUES ('x2', 'y2')".into()));
            cmd_sql(&c)
        });
        // `--replica` with `--connect` makes THIS session read-only; the
        // concurrent writer session is unaffected.
        let mut reader = cli(&format!("sql --connect {addr} --replica"));
        reader.options.push(("query".into(), "INSERT INTO pair VALUES ('x3', 'y3')".into()));
        assert!(cmd_sql(&reader).is_err(), "read-only session must reject DML");
        writer.join().unwrap().unwrap();
        let mut count = cli(&format!("sql --connect {addr}"));
        count.options.push(("query".into(), "SELECT COUNT(*) FROM pair".into()));
        cmd_sql(&count).unwrap();
        drop(server); // the --duration-ms server thread exits on its own
    }

    #[test]
    fn keys_command() {
        let csv = places_csv();
        let c =
            cli(&format!("keys --csv {csv} --fd Zip->City,State --fd District,Region->AreaCode"));
        cmd_keys(&c).unwrap();
    }

    #[test]
    fn missing_options_error() {
        assert!(cmd_validate(&cli("validate")).is_err());
        assert!(cmd_gen(&cli("gen --dataset nope --out /tmp/x")).is_err());
        let csv = places_csv();
        assert!(cmd_validate(&cli(&format!("validate --csv {csv}"))).is_err());
    }

    #[test]
    fn usage_lists_commands() {
        let u = usage();
        for cmd in [
            "demo",
            "validate",
            "repair",
            "advise",
            "gen",
            "sql",
            "keys",
            "violations",
            "discover",
            "cfd",
            "bcnf",
        ] {
            assert!(u.contains(cmd), "{cmd}");
        }
        assert!(u.contains("--threads"), "global width flag documented");
    }

    #[test]
    fn watch_replays_delta_stream() {
        let csv = places_csv();
        let dir = std::env::temp_dir().join("evofd_cli_watch");
        std::fs::create_dir_all(&dir).unwrap();
        let deltas = dir.join("deltas.csv");
        // Places columns: District,Region,Municipal,AreaCode,PhNo,Street,Zip,City,State.
        // Insert a tuple that breaks Municipal -> AreaCode, then remove it.
        let row = "Collin,R1,Glendale,999,111-1111,Pine,60415,Chicago,IL";
        std::fs::write(&deltas, format!("+,{row}\n-,{row}\n-,{row}\n")).unwrap();
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode --threshold 0.9",
            deltas.display()
        ));
        cmd_watch(&c).unwrap();
        // A tracker memory bound parses and replays the same stream.
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode \
             --tracker-memory-limit 1024",
            deltas.display()
        ));
        cmd_watch(&c).unwrap();
        // Missing required options error out, as does a malformed bound.
        assert!(cmd_watch(&cli(&format!("watch --csv {csv}"))).is_err());
        assert!(cmd_watch(&cli("watch --deltas nope.csv --fd A->B")).is_err());
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode \
             --tracker-memory-limit lots",
            deltas.display()
        ));
        assert!(cmd_watch(&c).unwrap_err().contains("--tracker-memory-limit"));
    }

    #[test]
    fn usage_lists_durable_commands() {
        let u = usage();
        assert!(u.contains("open"), "open command documented");
        assert!(u.contains("--data-dir"), "durable flag documented");
        assert!(u.contains("--compact-threshold"), "compaction flag documented");
        assert!(u.contains("--tracker-memory-limit"), "tracker bound documented");
    }

    #[test]
    fn stats_command_renders_all_formats() {
        let csv = places_csv();
        let dir = std::env::temp_dir().join("evofd_cli_stats");
        let _ = std::fs::remove_dir_all(&dir);
        // Populate a durable dir so `stats --data-dir` has recovery work to
        // meter, then exercise every output format plus the bounded watch loop.
        let mut c = cli(&format!("sql --csv {csv} --data-dir {}", dir.display()));
        c.options.push(("query".into(), "SELECT COUNT(*) FROM places".into()));
        cmd_sql(&c).unwrap();
        cmd_stats(&cli(&format!("stats --data-dir {} --prom", dir.display()))).unwrap();
        cmd_stats(&cli("stats --json")).unwrap();
        cmd_stats(&cli("stats")).unwrap();
        cmd_stats(&cli("stats --rounds 2 --poll-ms 1")).unwrap();
        // The Prometheus exposition covers the WAL, tracker, replication-lag
        // and advisor families regardless of traffic.
        let prom = evofd_obs::render_prometheus();
        for family in [
            "evofd_wal_appends_total",
            "evofd_tracker_deltas_total",
            "evofd_repl_lag_frames",
            "evofd_advisor_deltas_total",
        ] {
            assert!(prom.contains(family), "{family} missing from exposition");
        }
    }

    #[test]
    fn stats_watch_supports_delta_and_rate_columns() {
        cmd_stats(&cli("stats --rounds 2 --poll-ms 1 --rate")).unwrap();
        cmd_stats(&cli("stats --watch --rounds 1")).unwrap();
    }

    #[test]
    fn serve_metrics_and_history_commands_run_on_a_durable_dir() {
        let csv = places_csv();
        let dir = std::env::temp_dir().join("evofd_cli_serve_metrics");
        let _ = std::fs::remove_dir_all(&dir);
        // Seed a durable table with a tracked FD and some drift so the
        // HISTORY file has frames and events to print.
        let mut c = cli(&format!("sql --csv {csv} --data-dir {}", dir.display()));
        c.options.push((
            "query".into(),
            "ALTER TABLE places ADD CONSTRAINT FD 'Zip -> City'; \
             ALERT ON places FD 'Zip -> City' WHEN confidence < 1.0 FOR 1 EPOCHS; \
             UPDATE places SET City = 'Elsewhere' WHERE District = 'Collin'; \
             DELETE FROM places WHERE District = 'Dallas'"
                .into(),
        ));
        cmd_sql(&c).unwrap();
        let d = dir.display();
        cmd_history(&cli(&format!("history --data-dir {d} --table places"))).unwrap();
        cmd_history(&cli(&format!("history --data-dir {d} --table places --json --since 1")))
            .unwrap();
        assert!(cmd_history(&cli(&format!("history --data-dir {d} --table nope"))).is_err());
        // The endpoint binds an ephemeral port, serves for a moment, exits.
        cmd_serve_metrics(&cli(&format!(
            "serve-metrics --data-dir {d} --addr 127.0.0.1:0 --duration-ms 10"
        )))
        .unwrap();
    }

    #[test]
    fn usage_lists_observability() {
        let u = usage();
        assert!(u.contains("stats"), "stats command documented");
        assert!(u.contains("--trace-slow"), "trace flag documented");
        assert!(u.contains("--prom"), "Prometheus flag documented");
        assert!(u.contains("LIMIT n"), "suggest pagination documented");
    }

    #[test]
    fn sql_durable_round_trip_and_open() {
        let csv = places_csv();
        let dir = std::env::temp_dir().join("evofd_cli_durable_sql");
        let _ = std::fs::remove_dir_all(&dir);
        // Import + mutate durably.
        let mut c = cli(&format!("sql --csv {csv} --data-dir {} --limit 5", dir.display()));
        c.options.push((
            "query".into(),
            "DELETE FROM places WHERE District = 'Collin'; SELECT COUNT(*) FROM places".into(),
        ));
        cmd_sql(&c).unwrap();
        // Reopen: the delete survived the process "death".
        let c = cli(&format!("open --data-dir {}", dir.display()));
        cmd_open(&c).unwrap();
        let mut c = cli(&format!("sql --data-dir {}", dir.display()));
        c.options.push(("query".into(), "SELECT COUNT(DISTINCT District) FROM places".into()));
        cmd_sql(&c).unwrap();
        // Checkpoint path — combined with --query, BOTH must run.
        let mut c = cli(&format!("open --data-dir {} --checkpoint", dir.display()));
        c.options.push(("query".into(), "SELECT COUNT(*) FROM places".into()));
        cmd_open(&c).unwrap();
        let table =
            DurableRelation::open(&dir.join("places"), evofd_persist::PersistOptions::default())
                .unwrap();
        assert_eq!(
            table.wal_bytes(),
            evofd_persist::wal::WAL_HEADER_LEN,
            "--checkpoint ran even though --query was also given"
        );
        drop(table);
        // Missing data dir on open errors.
        assert!(cmd_open(&cli("open")).is_err());
        // Bad sync policy errors.
        assert!(cmd_open(&cli(&format!("open --data-dir {} --sync maybe", dir.display()))).is_err());
    }

    #[test]
    fn watch_durable_resumes_mid_stream() {
        let csv = places_csv();
        let dir = std::env::temp_dir().join("evofd_cli_durable_watch");
        let _ = std::fs::remove_dir_all(&dir);
        let stream_dir = std::env::temp_dir().join("evofd_cli_durable_watch_streams");
        std::fs::create_dir_all(&stream_dir).unwrap();
        let row = "Collin,R1,Glendale,999,111-1111,Pine,60415,Chicago,IL";
        let row2 = "Denton,R2,Summit,888,222-2222,Oak,60601,Chicago,IL";

        // First run: two inserts.
        let deltas = stream_dir.join("part1.csv");
        std::fs::write(&deltas, format!("+,{row}\n+,{row2}\n")).unwrap();
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode --data-dir {} \
             --compact-threshold 0.5",
            deltas.display(),
            dir.display()
        ));
        cmd_watch(&c).unwrap();

        // Second run over a LONGER stream sharing the same prefix: the
        // first two records must be skipped (cursor resume), the third
        // applied.
        let deltas2 = stream_dir.join("part2.csv");
        std::fs::write(&deltas2, format!("+,{row}\n+,{row2}\n-,{row}\n")).unwrap();
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode --data-dir {}",
            deltas2.display(),
            dir.display()
        ));
        cmd_watch(&c).unwrap();

        // The durable table ends at base rows + 2 - 1.
        let table =
            DurableRelation::open(&dir.join("places"), evofd_persist::PersistOptions::default())
                .unwrap();
        assert_eq!(table.cursor(), 3, "all three stream records consumed");
        assert_eq!(table.live().row_count(), dg::places().row_count() + 1);
        drop(table);

        // Reopening with a DIFFERENT --fd set is rejected loudly instead
        // of silently watching the stored dependencies.
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Zip->City --data-dir {}",
            deltas2.display(),
            dir.display()
        ));
        let msg = cmd_watch(&c).unwrap_err();
        assert!(msg.contains("already tracks"), "{msg}");
        // Same FD set (spelled identically) is accepted.
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode --data-dir {}",
            deltas2.display(),
            dir.display()
        ));
        cmd_watch(&c).unwrap();
    }

    #[test]
    fn watch_advise_prints_live_proposals() {
        let csv = places_csv();
        let dir = std::env::temp_dir().join("evofd_cli_watch_advise");
        std::fs::create_dir_all(&dir).unwrap();
        let deltas = dir.join("deltas.csv");
        // Break Municipal -> AreaCode, then repair it by the data again.
        let row = "Collin,R1,Glendale,999,111-1111,Pine,60415,Chicago,IL";
        std::fs::write(&deltas, format!("+,{row}\n-,{row}\n")).unwrap();
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode --advise",
            deltas.display()
        ));
        cmd_watch(&c).unwrap();

        // The durable path materializes the table's advisor session too.
        let data_dir = std::env::temp_dir().join("evofd_cli_watch_advise_durable");
        let _ = std::fs::remove_dir_all(&data_dir);
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode --advise --data-dir {}",
            deltas.display(),
            data_dir.display()
        ));
        cmd_watch(&c).unwrap();
        let table = DurableRelation::open(
            &data_dir.join("places"),
            evofd_persist::PersistOptions::default(),
        )
        .unwrap();
        assert_eq!(table.cursor(), 2);
        drop(table);
    }

    #[test]
    fn watch_rejects_malformed_stream() {
        let csv = places_csv();
        let dir = std::env::temp_dir().join("evofd_cli_watch_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let deltas = dir.join("bad.csv");
        std::fs::write(&deltas, "?,a,b\n").unwrap();
        let c = cli(&format!(
            "watch --csv {csv} --deltas {} --fd Municipal->AreaCode",
            deltas.display()
        ));
        let msg = cmd_watch(&c).unwrap_err();
        assert!(msg.contains("expected op") || msg.contains("unknown op"), "{msg}");
    }

    #[test]
    fn serve_follow_lag_and_replica_sql() {
        let leader = std::env::temp_dir().join("evofd_cli_repl_leader");
        let replica = std::env::temp_dir().join("evofd_cli_repl_replica");
        let _ = std::fs::remove_dir_all(&leader);
        let _ = std::fs::remove_dir_all(&replica);

        // Leader: three DML lines = three WAL frames to ship.
        let c = cli(&format!("serve --data-dir {}", leader.display()));
        let sql = "CREATE TABLE t (a INT, b TEXT);\n\
                   INSERT INTO t VALUES (1, 'x'), (2, 'x');\n\
                   INSERT INTO t VALUES (3, 'y');\n\
                   UPDATE t SET b = 'z' WHERE a = 2;\n\
                   quit\n";
        let mut input = std::io::Cursor::new(sql.as_bytes().to_vec());
        cmd_serve(&c, &mut input).unwrap();

        // Follow one frame at a time: the reported lag must shrink
        // monotonically to zero across invocations.
        let mut lags = Vec::new();
        loop {
            let c = cli(&format!(
                "follow --from {} --data-dir {} --rounds 1 --max-frames 1",
                leader.display(),
                replica.display()
            ));
            cmd_follow(&c).unwrap();
            let (_, _, lag) = replication_lag(&leader.join("t"), &replica.join("t")).unwrap();
            lags.push(lag);
            // `evofd lag` renders the same probes without locking.
            cmd_lag(&cli(&format!(
                "lag --from {} --data-dir {}",
                leader.display(),
                replica.display()
            )))
            .unwrap();
            if lag == 0 {
                break;
            }
        }
        assert!(lags.windows(2).all(|w| w[1] < w[0]), "lag must shrink monotonically: {lags:?}");
        assert_eq!(*lags.last().unwrap(), 0);
        assert!(lags.len() >= 3, "one frame per round: {lags:?}");

        // Reads succeed on the replica mid- and post-catch-up…
        let mut r = DurableEngine::open_replica(&replica, evofd_persist::PersistOptions::default())
            .unwrap();
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), evofd_storage::Value::Int(3));
        assert_eq!(
            r.query("SELECT b FROM t WHERE a = 2").unwrap().row(0)[0],
            evofd_storage::Value::str("z")
        );
        drop(r);
        // …through the CLI too, and DML is rejected with the replica error.
        let mut c = cli(&format!("sql --data-dir {} --replica", replica.display()));
        c.options.push(("query".into(), "SELECT COUNT(*) FROM t".into()));
        cmd_sql(&c).unwrap();
        let mut c = cli(&format!("sql --data-dir {} --replica", replica.display()));
        c.options.push(("query".into(), "INSERT INTO t VALUES (9, 'w')".into()));
        let msg = cmd_sql(&c).unwrap_err();
        assert!(msg.contains("read-only replica"), "{msg}");
        // CHECK FD works against the replica's contents.
        let mut c = cli(&format!("sql --data-dir {} --replica", replica.display()));
        c.options.push(("query".into(), "CHECK FD 'a -> b' ON t".into()));
        cmd_sql(&c).unwrap();
        // --replica refuses CSV imports (writes belong on the leader).
        let csv = places_csv();
        let mut c = cli(&format!("sql --data-dir {} --replica --csv {csv}", replica.display()));
        c.options.push(("query".into(), "SELECT COUNT(*) FROM t".into()));
        assert!(cmd_sql(&c).unwrap_err().contains("leader"));
    }

    #[test]
    fn follow_resumes_mid_catch_up_and_serves_partial_reads() {
        let leader = std::env::temp_dir().join("evofd_cli_repl_partial_leader");
        let replica = std::env::temp_dir().join("evofd_cli_repl_partial_replica");
        let _ = std::fs::remove_dir_all(&leader);
        let _ = std::fs::remove_dir_all(&replica);

        let c = cli(&format!("serve --data-dir {}", leader.display()));
        let sql = "CREATE TABLE t (a INT);\n\
                   INSERT INTO t VALUES (1);\n\
                   INSERT INTO t VALUES (2);\n\
                   INSERT INTO t VALUES (3);\n";
        cmd_serve(&c, &mut std::io::Cursor::new(sql.as_bytes().to_vec())).unwrap();

        // Apply only the first frame, then stop (simulated kill).
        let c = cli(&format!(
            "follow --from {} --data-dir {} --rounds 1 --max-frames 1 --quiet",
            leader.display(),
            replica.display()
        ));
        cmd_follow(&c).unwrap();
        // Mid-catch-up reads serve the acked prefix.
        let mut r = DurableEngine::open_replica(&replica, evofd_persist::PersistOptions::default())
            .unwrap();
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), evofd_storage::Value::Int(1));
        drop(r);
        // A later follow (fresh invocation = restart) finishes the job.
        let c =
            cli(&format!("follow --from {} --data-dir {}", leader.display(), replica.display()));
        cmd_follow(&c).unwrap();
        assert_eq!(replication_lag(&leader.join("t"), &replica.join("t")).unwrap().2, 0);
        // Missing options error cleanly.
        assert!(cmd_follow(&cli("follow")).is_err());
        assert!(cmd_lag(&cli("lag")).is_err());
        // Malformed numeric bounds error instead of silently meaning
        // "unlimited".
        let c = cli(&format!(
            "follow --from {} --data-dir {} --max-frames 10k",
            leader.display(),
            replica.display()
        ));
        assert!(cmd_follow(&c).unwrap_err().contains("bad --max-frames"));
        let c = cli(&format!(
            "follow --from {} --data-dir {} --rounds onee",
            leader.display(),
            replica.display()
        ));
        assert!(cmd_follow(&c).unwrap_err().contains("bad --rounds"));
        assert!(cmd_serve(&cli("serve"), &mut std::io::Cursor::new(Vec::<u8>::new())).is_err());
    }

    #[test]
    fn usage_lists_replication_commands() {
        let u = usage();
        for cmd in ["serve", "follow", "lag", "--replica", "--from"] {
            assert!(u.contains(cmd), "{cmd}");
        }
    }

    #[test]
    fn violations_and_discover_and_cfd_run() {
        let csv = places_csv();
        cmd_violations(&cli(&format!("violations --csv {csv} --fd Zip->City,State"))).unwrap();
        cmd_discover(&cli(&format!("discover --csv {csv} --max-lhs 2"))).unwrap();
        cmd_cfd(&cli(&format!("cfd --csv {csv} --fd Zip->City"))).unwrap();
        cmd_bcnf(&cli(&format!("bcnf --csv {csv} --fd Municipal->AreaCode --fd Zip->City")))
            .unwrap();
    }
}
