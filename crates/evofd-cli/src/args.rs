//! Hand-rolled command-line parsing for the `evofd` binary.

/// Parsed command line: a subcommand plus `--name value` options and
/// boolean `--flag`s. `--fd` may repeat.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// `--name value` pairs in order (repeats preserved).
    pub options: Vec<(String, String)>,
    /// Boolean flags.
    pub flags: Vec<String>,
}

impl Cli {
    /// Parse an argument list (without the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Cli {
        let mut cli = Cli::default();
        let mut iter = items.into_iter().peekable();
        while let Some(item) = iter.next() {
            if let Some(name) = item.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        cli.options.push((name.to_string(), value));
                    }
                    _ => cli.flags.push(name.to_string()),
                }
            } else if cli.command.is_empty() {
                cli.command = item;
            }
        }
        cli
    }

    /// First value of an option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// All values of a repeatable option (e.g. `--fd`).
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.options.iter().filter(|(n, _)| n == name).map(|(_, v)| v.as_str()).collect()
    }

    /// Parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Boolean flag presence.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A required option, with a friendly error.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required option --{name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(s: &str) -> Cli {
        Cli::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_flags() {
        let c = cli("repair --csv data.csv --fd 'A -> B' --all");
        assert_eq!(c.command, "repair");
        assert_eq!(c.get("csv"), Some("data.csv"));
        assert!(c.flag("all"));
        assert!(!c.flag("missing"));
    }

    #[test]
    fn repeated_fd_options() {
        let c = cli("validate --fd a --fd b --fd c");
        assert_eq!(c.get_all("fd"), vec!["a", "b", "c"]);
    }

    #[test]
    fn get_or_with_default() {
        let c = cli("gen --scale 0.5");
        assert_eq!(c.get_or("scale", 1.0f64), 0.5);
        assert_eq!(c.get_or("rows", 7usize), 7);
    }

    #[test]
    fn require_errors() {
        let c = cli("repair");
        assert!(c.require("csv").is_err());
        assert!(cli("repair --csv x").require("csv").is_ok());
    }
}
