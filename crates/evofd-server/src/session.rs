//! One connection's session: the request loop, per-session state
//! ([`SessionSettings`], read-only flag, render limit) swapped in around
//! each statement on the shared engine, and the pusher thread that
//! interleaves subscription events with responses.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use evofd_sql::SessionSettings;

use crate::proto::{read_frame, write_frame, Request, Response};
use crate::server::{render_results, Shared};

/// Default row cap for rendered SELECT results.
const DEFAULT_LIMIT: usize = 50;

/// One connection's server-side state.
pub(crate) struct Session {
    shared: Arc<Shared>,
    conn: u64,
    /// This session's `SET`-able engine settings, swapped into the
    /// shared engine around each of its statements.
    settings: SessionSettings,
    /// Session-level write rejection (on top of the server-wide flag).
    read_only: bool,
    /// Row cap for rendered results.
    limit: usize,
    /// Follower identity: from the Hello, else the connection id.
    ident: String,
}

impl Session {
    pub(crate) fn new(shared: Arc<Shared>, conn: u64) -> Session {
        Session {
            shared,
            conn,
            settings: SessionSettings::default(),
            read_only: false,
            limit: DEFAULT_LIMIT,
            ident: format!("conn-{conn}"),
        }
    }

    /// The request loop: read a frame, handle it, write the response.
    /// Any transport or protocol error ends the session; the engine's
    /// durable state is untouched by a mid-frame cut (statements are
    /// atomic under the engine lock).
    pub(crate) fn run(mut self, stream: TcpStream) {
        // Responses and pushed events share the write side through one
        // mutex, so frames never interleave mid-frame.
        let writer: Arc<Mutex<TcpStream>> = match stream.try_clone() {
            Ok(w) => Arc::new(Mutex::new(w)),
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            let response = match Request::decode(&payload) {
                Ok(request) => self.handle(request, &writer),
                Err(e) => Some(Response::Err { message: format!("bad request: {e}") }),
            };
            let Some(response) = response else { continue };
            let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
            if write_frame(&mut *w, &response.encode()).is_err() {
                break;
            }
        }
        self.shared.disconnect(self.conn, &self.ident);
    }

    /// Handle one request. `None` means the response was already sent
    /// (or none is due).
    fn handle(&mut self, request: Request, writer: &Arc<Mutex<TcpStream>>) -> Option<Response> {
        Some(match request {
            Request::Hello { client } => {
                if !client.is_empty() {
                    self.ident = client;
                }
                let tables = self.shared.lock_db().names().len() as u64;
                Response::Hello {
                    server: concat!("evofd-server/", env!("CARGO_PKG_VERSION")).to_string(),
                    tables,
                }
            }
            Request::Sql { sql } => self.run_sql(&sql),
            Request::Session { read_only, limit } => {
                self.read_only = read_only;
                if limit > 0 {
                    self.limit = limit as usize;
                }
                Response::Ok
            }
            Request::Subscribe { table } => {
                if !table.is_empty() && self.shared.lock_db().get(&table).is_err() {
                    return Some(Response::Err { message: format!("no table `{table}`") });
                }
                let receiver = self.shared.subscribe(self.conn, table);
                let writer = Arc::clone(writer);
                // The pusher drains the channel until the session
                // disconnects (sender dropped) or the socket dies.
                let _ =
                    std::thread::Builder::new().name("evofd-server-push".into()).spawn(move || {
                        while let Ok((table, event)) = receiver.recv() {
                            let frame = Response::Event { table, event }.encode();
                            let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                            if write_frame(&mut *w, &frame).is_err() {
                                break;
                            }
                        }
                    });
                Response::Ok
            }
            Request::Tables => {
                let names = self.shared.lock_db().names().iter().map(|n| n.to_string()).collect();
                Response::Tables { names }
            }
            Request::Position { table } => match self.shared.lock_db().get(&table) {
                Ok(t) => {
                    Response::Position { snapshot_seq: t.snapshot_seq(), last_seq: t.last_seq() }
                }
                Err(e) => Response::Err { message: e.to_string() },
            },
            Request::Bootstrap { table } => match self.shared.lock_db().get(&table) {
                Ok(t) => Response::Bootstrap {
                    snapshot: t.encode_current_snapshot(),
                    history: t.history_bytes(),
                },
                Err(e) => Response::Err { message: e.to_string() },
            },
            Request::Fetch { table, seq, follower } => {
                let follower = if follower.is_empty() { self.ident.clone() } else { follower };
                self.ident = follower.clone();
                let shipment = {
                    let db = self.shared.lock_db();
                    match db.get(&table) {
                        Ok(t) => t.ship_from(seq),
                        Err(e) => Err(e),
                    }
                };
                match shipment {
                    Ok(shipment) => {
                        // The fetch doubles as the follower's ack for
                        // everything ≤ seq.
                        self.shared.lock_acks().record(&table, &follower, seq);
                        match shipment {
                            evofd_persist::Shipment::Frames(frames) => Response::Frames { frames },
                            evofd_persist::Shipment::Bootstrap { snapshot, history } => {
                                Response::BootstrapRequired { snapshot, history }
                            }
                        }
                    }
                    Err(e) => Response::Err { message: e.to_string() },
                }
            }
            Request::Acks => Response::Acks {
                acks: self
                    .shared
                    .lock_acks()
                    .iter()
                    .map(|(t, f, s)| (t.to_string(), f.to_string(), s))
                    .collect(),
            },
        })
    }

    /// Execute one SQL script under this session's state: swap the
    /// session's settings and read-only flag into the shared engine,
    /// run, read the (possibly `SET`-changed) settings back out, and
    /// restore the engine's base state for the next session.
    fn run_sql(&mut self, sql: &str) -> Response {
        let mut engine = self.shared.lock_engine();
        let base_settings = engine.engine().settings().clone();
        engine.engine_mut().set_settings(self.settings.clone());
        engine.engine_mut().set_read_only(self.read_only || self.shared.base_read_only);
        let result = engine.run_script(sql);
        self.settings = engine.engine().settings().clone();
        engine.engine_mut().set_settings(base_settings);
        engine.engine_mut().set_read_only(self.shared.base_read_only);
        match result {
            Ok(results) => Response::Sql { text: render_results(&results, self.limit) },
            Err(e) => Response::Err { message: e.to_string() },
        }
    }
}
