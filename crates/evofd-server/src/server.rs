//! The serving side: a TCP accept loop (shared listener plumbing from
//! `evofd-obs`) dispatching one [`crate::session::Session`] per
//! connection over one shared [`DurableEngine`], plus a background
//! poller that drains each table's drift feed and alert transitions into
//! pushed [`crate::proto::Response::Event`] frames for subscribed
//! clients.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use evofd_incremental::SubscriptionId;
use evofd_obs::net::{spawn_listener, TcpServer};
use evofd_persist::store::Database;
use evofd_persist::{AckTracker, DurableEngine};

use crate::session::Session;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Force every session read-only (serving a replica directory).
    pub read_only: bool,
    /// Subscription poll interval in milliseconds.
    pub poll_ms: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { read_only: false, poll_ms: 25 }
    }
}

/// One subscriber: connection id, table filter (empty = all) and the
/// channel its pusher thread drains.
struct Subscriber {
    conn: u64,
    table: String,
    sender: Sender<(String, String)>,
}

/// Subscription fan-out state shared between sessions and the poller.
#[derive(Default)]
struct SubRegistry {
    subscribers: Vec<Subscriber>,
    /// Per-table drift-feed cursor held by the poller.
    feeds: HashMap<String, SubscriptionId>,
    /// Per-table alert firing flags from the previous poll.
    alert_firing: HashMap<String, Vec<bool>>,
}

/// State shared by every connection and the poller.
pub(crate) struct Shared {
    pub(crate) engine: Mutex<DurableEngine>,
    pub(crate) db: Arc<Mutex<Database>>,
    pub(crate) acks: Mutex<AckTracker>,
    pub(crate) base_read_only: bool,
    subs: Mutex<SubRegistry>,
    conn_counter: AtomicU64,
    /// Live connection streams, shut down on server shutdown so session
    /// threads exit deterministically (the "kill the server" chaos case).
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl Shared {
    pub(crate) fn lock_engine(&self) -> MutexGuard<'_, DurableEngine> {
        self.engine.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn lock_db(&self) -> MutexGuard<'_, Database> {
        self.db.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn lock_acks(&self) -> MutexGuard<'_, AckTracker> {
        self.acks.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_subs(&self) -> MutexGuard<'_, SubRegistry> {
        self.subs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a subscription for connection `conn`; events for `table`
    /// (or every table when empty) flow through the returned channel.
    ///
    /// The per-table feed cursors are created HERE, not on the poller's
    /// next tick: once the subscribe request is acknowledged, no event
    /// published after it can fall into the gap before the first poll.
    pub(crate) fn subscribe(
        &self,
        conn: u64,
        table: String,
    ) -> std::sync::mpsc::Receiver<(String, String)> {
        let (sender, receiver) = std::sync::mpsc::channel();
        let mut subs = self.lock_subs();
        subs.subscribers.push(Subscriber { conn, table: table.clone(), sender });
        let mut db = self.lock_db();
        let names: Vec<String> = db.names().iter().map(|n| n.to_string()).collect();
        for name in names {
            if !table.is_empty() && table != name {
                continue;
            }
            let Ok(t) = db.get_mut(&name) else { continue };
            subs.feeds.entry(name).or_insert_with(|| t.validator_mut().subscribe());
        }
        receiver
    }

    /// Drop connection `conn`'s subscriptions (closing its pusher
    /// channel) and its ack records.
    pub(crate) fn disconnect(&self, conn: u64, follower: &str) {
        self.lock_subs().subscribers.retain(|s| s.conn != conn);
        self.lock_acks().forget(follower);
        self.lock_conns().retain(|(id, _)| *id != conn);
    }

    fn lock_conns(&self) -> MutexGuard<'_, Vec<(u64, TcpStream)>> {
        self.conns.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// One poller pass: drain every table's drift feed and alert
    /// transitions, fanning events out to matching subscribers.
    fn poll_events(&self) {
        let mut subs = self.lock_subs();
        if subs.subscribers.is_empty() {
            // Nobody listening: drop the feed cursors so the validator
            // does not buffer events for a dead audience.
            if !subs.feeds.is_empty() {
                let mut db = self.lock_db();
                let feeds = std::mem::take(&mut subs.feeds);
                for (table, id) in feeds {
                    if let Ok(t) = db.get_mut(&table) {
                        t.validator_mut().unsubscribe(id);
                    }
                }
                subs.alert_firing.clear();
            }
            return;
        }
        let mut events: Vec<(String, String)> = Vec::new();
        {
            let mut db = self.lock_db();
            let names: Vec<String> = db.names().iter().map(|n| n.to_string()).collect();
            for name in names {
                let Ok(t) = db.get_mut(&name) else { continue };
                let feed = *subs
                    .feeds
                    .entry(name.clone())
                    .or_insert_with(|| t.validator_mut().subscribe());
                for drift in t.validator_mut().poll(feed) {
                    events.push((name.clone(), drift.to_string()));
                }
                let firing: Vec<bool> = t.alerts().runtime.iter().map(|r| r.firing).collect();
                let rules: Vec<String> = t.alerts().rules.iter().map(|r| r.to_string()).collect();
                match subs.alert_firing.get(&name) {
                    Some(prev) if prev.len() == firing.len() => {
                        for (i, (was, is)) in prev.iter().zip(&firing).enumerate() {
                            if was != is {
                                let verb = if *is { "fired" } else { "resolved" };
                                events.push((name.clone(), format!("alert {verb}: {}", rules[i])));
                            }
                        }
                    }
                    // First sight of the table (or a changed rule set):
                    // record without emitting — transitions only.
                    _ => {}
                }
                subs.alert_firing.insert(name.clone(), firing);
            }
        }
        if events.is_empty() {
            return;
        }
        // A send fails only when the pusher (and its connection) died;
        // the disconnect path removes the entry, so just skip here.
        for (table, event) in &events {
            for sub in &subs.subscribers {
                if sub.table.is_empty() || sub.table == *table {
                    let _ = sub.sender.send((table.clone(), event.clone()));
                }
            }
        }
    }
}

/// A running `evofd-server`: accept loop + event poller over one durable
/// engine. Dropping it (or calling [`EvofdServer::shutdown`]) stops
/// accepting, severs every live connection and joins the poller.
pub struct EvofdServer {
    tcp: Option<TcpServer>,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    poller: Option<JoinHandle<()>>,
}

impl EvofdServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve `engine`.
    pub fn start(
        engine: DurableEngine,
        addr: &str,
        opts: ServerOptions,
    ) -> std::io::Result<EvofdServer> {
        let db = engine.database_handle();
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            db,
            acks: Mutex::new(AckTracker::new()),
            base_read_only: opts.read_only,
            subs: Mutex::new(SubRegistry::default()),
            conn_counter: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let conn_shared = Arc::clone(&shared);
        let tcp = spawn_listener(addr, "evofd-server", move |stream| {
            // Small request/response frames: Nagle+delayed-ACK would add
            // ~40ms per round trip.
            stream.set_nodelay(true).ok();
            let conn = conn_shared.conn_counter.fetch_add(1, Ordering::SeqCst);
            if let Ok(clone) = stream.try_clone() {
                conn_shared.lock_conns().push((conn, clone));
            }
            Session::new(Arc::clone(&conn_shared), conn).run(stream);
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let poll_stop = Arc::clone(&stop);
        let poll_shared = Arc::clone(&shared);
        let interval = Duration::from_millis(opts.poll_ms.max(1));
        let poller =
            std::thread::Builder::new().name("evofd-server-poll".into()).spawn(move || {
                while !poll_stop.load(Ordering::SeqCst) {
                    poll_shared.poll_events();
                    std::thread::sleep(interval);
                }
            })?;
        Ok(EvofdServer { tcp: Some(tcp), shared, stop, poller: Some(poller) })
    }

    /// The bound address (port 0 resolved).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.tcp.as_ref().expect("server running").addr()
    }

    /// Run `f` against the served engine (tests and embedding callers).
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut DurableEngine) -> R) -> R {
        f(&mut self.shared.lock_engine())
    }

    /// Current `(table, follower, acked seq)` triples.
    pub fn acks(&self) -> Vec<(String, String, u64)> {
        self.shared.lock_acks().iter().map(|(t, f, s)| (t.to_string(), f.to_string(), s)).collect()
    }

    /// Stop accepting, sever live connections, join the poller. The
    /// engine keeps its durable state — restart by calling
    /// [`EvofdServer::start`] on the same directory. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(mut tcp) = self.tcp.take() {
            tcp.shutdown();
        }
        // Sever in-flight connections mid-whatever-they-were-doing: the
        // chaos tests rely on this being an abrupt, kill-like cut.
        for (_, stream) in self.shared.lock_conns().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(poller) = self.poller.take() {
            let _ = poller.join();
        }
    }

    /// Shut down and hand back the engine **iff** this server holds the
    /// only reference (every session thread has exited).
    pub fn try_into_engine(mut self) -> Option<DurableEngine> {
        self.shutdown();
        let shared = Arc::clone(&self.shared);
        drop(self);
        Arc::try_unwrap(shared)
            .ok()
            .map(|s| s.engine.into_inner().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for EvofdServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Render one SQL script's results the way `evofd sql` prints them: row
/// relations as text tables (capped at `limit` rows), every other result
/// as its debug line.
pub fn render_results(results: &[evofd_sql::QueryResult], limit: usize) -> String {
    let mut out = String::new();
    for result in results {
        match result {
            evofd_sql::QueryResult::Rows(rel) => out.push_str(&rel.render(limit)),
            other => {
                out.push_str(&format!("{other:?}"));
                out.push('\n');
            }
        }
    }
    out
}
