//! The client side: a blocking connection speaking the framed protocol,
//! with pushed [`Response::Event`] frames buffered so they can arrive
//! interleaved with request/response traffic.

use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{read_frame, write_frame, Request, Response};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (includes mid-frame cuts); reconnect to resume.
    Io(io::Error),
    /// The server answered [`Response::Err`]; the session stays usable.
    Server(String),
    /// The peer broke the protocol (bad frame, unexpected response).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A connected session against an `evofd server`.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    server: String,
    tables: u64,
    events: VecDeque<(String, String)>,
}

impl Client {
    /// Connect to `addr` and perform the Hello handshake, announcing
    /// `ident` (shown in server-side ack tracking; empty keeps the
    /// server-assigned connection id).
    pub fn connect(addr: &str, ident: &str) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            writer: stream,
            reader,
            server: String::new(),
            tables: 0,
            events: VecDeque::new(),
        };
        match client.request(&Request::Hello { client: ident.to_string() })? {
            Response::Hello { server, tables } => {
                client.server = server;
                client.tables = tables;
                Ok(client)
            }
            other => Err(ClientError::Protocol(format!("expected Hello, got {other:?}"))),
        }
    }

    /// The server's identity string from the handshake.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// Number of served tables at handshake time.
    pub fn table_count(&self) -> u64 {
        self.tables
    }

    /// Send one request and return the first non-Event response; pushed
    /// events encountered on the way are buffered for
    /// [`Client::next_event`].
    fn request(&mut self, request: &Request) -> ClientResult<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        loop {
            let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
                ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            })?;
            match Response::decode(&payload).map_err(ClientError::Protocol)? {
                Response::Event { table, event } => self.events.push_back((table, event)),
                other => return Ok(other),
            }
        }
    }

    /// Execute a `;`-separated SQL script; returns the server-rendered
    /// result text.
    pub fn sql(&mut self, sql: &str) -> ClientResult<String> {
        match self.request(&Request::Sql { sql: sql.to_string() })? {
            Response::Sql { text } => Ok(text),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!("expected Sql, got {other:?}"))),
        }
    }

    /// Set session-level state: read-only flag and render row limit
    /// (0 keeps the current limit).
    pub fn set_session(&mut self, read_only: bool, limit: u64) -> ClientResult<()> {
        match self.request(&Request::Session { read_only, limit })? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// Subscribe to drift/alert events for `table` (empty = every
    /// table); events then arrive via [`Client::next_event`].
    pub fn subscribe(&mut self, table: &str) -> ClientResult<()> {
        match self.request(&Request::Subscribe { table: table.to_string() })? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// The served tables, name-ordered.
    pub fn tables(&mut self) -> ClientResult<Vec<String>> {
        match self.request(&Request::Tables)? {
            Response::Tables { names } => Ok(names),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!("expected Tables, got {other:?}"))),
        }
    }

    /// One table's shipping position: `(snapshot_seq, last_seq)`.
    pub fn position(&mut self, table: &str) -> ClientResult<(u64, u64)> {
        match self.request(&Request::Position { table: table.to_string() })? {
            Response::Position { snapshot_seq, last_seq } => Ok((snapshot_seq, last_seq)),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!("expected Position, got {other:?}"))),
        }
    }

    /// One table's bootstrap image: `(snapshot, history)`.
    pub fn bootstrap(&mut self, table: &str) -> ClientResult<(Vec<u8>, Vec<u8>)> {
        match self.request(&Request::Bootstrap { table: table.to_string() })? {
            Response::Bootstrap { snapshot, history } => Ok((snapshot, history)),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!("expected Bootstrap, got {other:?}"))),
        }
    }

    /// Everything after `seq` for one table, acking `seq` as `follower`.
    pub fn fetch(
        &mut self,
        table: &str,
        seq: u64,
        follower: &str,
    ) -> ClientResult<evofd_persist::Shipment> {
        let request =
            Request::Fetch { table: table.to_string(), seq, follower: follower.to_string() };
        match self.request(&request)? {
            Response::Frames { frames } => Ok(evofd_persist::Shipment::Frames(frames)),
            Response::BootstrapRequired { snapshot, history } => {
                Ok(evofd_persist::Shipment::Bootstrap { snapshot, history })
            }
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!("expected Frames, got {other:?}"))),
        }
    }

    /// The leader's per-follower acked positions.
    pub fn acks(&mut self) -> ClientResult<Vec<(String, String, u64)>> {
        match self.request(&Request::Acks)? {
            Response::Acks { acks } => Ok(acks),
            Response::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!("expected Acks, got {other:?}"))),
        }
    }

    /// Block until the next pushed event arrives (or the buffered queue
    /// yields one): `(table, rendered event)`.
    pub fn next_event(&mut self) -> ClientResult<(String, String)> {
        if let Some(event) = self.events.pop_front() {
            return Ok(event);
        }
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        match Response::decode(&payload).map_err(ClientError::Protocol)? {
            Response::Event { table, event } => Ok((table, event)),
            other => Err(ClientError::Protocol(format!("unsolicited response {other:?}"))),
        }
    }

    /// Like [`Client::next_event`] but gives up after `timeout`,
    /// returning `Ok(None)`.
    pub fn next_event_timeout(
        &mut self,
        timeout: Duration,
    ) -> ClientResult<Option<(String, String)>> {
        if let Some(event) = self.events.pop_front() {
            return Ok(Some(event));
        }
        self.writer.set_read_timeout(Some(timeout))?;
        let result = self.next_event();
        self.writer.set_read_timeout(None)?;
        match result {
            Ok(event) => Ok(Some(event)),
            Err(ClientError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}
