//! [`SocketTransport`]: the [`FrameTransport`] seam over TCP, so
//! `evofd follow` can tail a leader served by `evofd server` exactly the
//! way it tails a shipping directory. Connections are lazy and are
//! dropped on any I/O failure, so the next call reconnects — a follower
//! retry loop survives a server kill/restart without fresh state.

use std::time::Duration;

use evofd_persist::{FrameTransport, PersistError, ShipPosition, Shipment};

use crate::client::{Client, ClientError};

/// A [`FrameTransport`] that fetches frames from an `evofd server` over
/// TCP for one table, identifying itself as a named follower so the
/// leader can track its acked position.
pub struct SocketTransport {
    addr: String,
    table: String,
    follower: String,
    client: Option<Client>,
    retries: u32,
    retry_delay: Duration,
    /// History bytes cached from the last Bootstrap response so the
    /// snapshot and its history come from one consistent server round.
    cached_history: Option<Vec<u8>>,
}

impl SocketTransport {
    /// Transport for `table` served at `addr`, identifying as
    /// `follower`. No connection is made until the first call.
    pub fn new(addr: &str, table: &str, follower: &str) -> SocketTransport {
        SocketTransport {
            addr: addr.to_string(),
            table: table.to_string(),
            follower: follower.to_string(),
            client: None,
            retries: 0,
            retry_delay: Duration::from_millis(200),
            cached_history: None,
        }
    }

    /// Retry each call up to `retries` extra times, sleeping `delay`
    /// between attempts (transient kills during a tail loop).
    pub fn with_retry(mut self, retries: u32, delay: Duration) -> SocketTransport {
        self.retries = retries;
        self.retry_delay = delay;
        self
    }

    /// The table this transport ships.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Re-point the transport (a restarted server may come back on a
    /// different port); any live connection is dropped.
    pub fn set_addr(&mut self, addr: &str) {
        self.addr = addr.to_string();
        self.client = None;
    }

    /// Run `op` against a live connection, reconnecting (and retrying,
    /// per [`SocketTransport::with_retry`]) on transport failures.
    fn with_client<R>(
        &mut self,
        what: &str,
        mut op: impl FnMut(&mut Client) -> Result<R, ClientError>,
    ) -> evofd_persist::Result<R> {
        let mut last_err = None;
        for attempt in 0..=self.retries {
            if attempt > 0 {
                std::thread::sleep(self.retry_delay);
            }
            if self.client.is_none() {
                match Client::connect(&self.addr, &self.follower) {
                    Ok(client) => self.client = Some(client),
                    Err(e) => {
                        last_err = Some(e.to_string());
                        continue;
                    }
                }
            }
            let client = self.client.as_mut().expect("connected above");
            match op(client) {
                Ok(value) => return Ok(value),
                // The session survives a server-side error; only drop
                // the connection on transport/protocol failures.
                Err(ClientError::Server(message)) => {
                    return Err(PersistError::Replication {
                        message: format!("{what} for table `{}`: {message}", self.table),
                    });
                }
                Err(e) => {
                    self.client = None;
                    last_err = Some(e.to_string());
                }
            }
        }
        Err(PersistError::Replication {
            message: format!(
                "{what} for table `{}` at {}: {}",
                self.table,
                self.addr,
                last_err.unwrap_or_else(|| "no attempt made".to_string())
            ),
        })
    }
}

impl FrameTransport for SocketTransport {
    fn position(&mut self) -> evofd_persist::Result<ShipPosition> {
        let table = self.table.clone();
        self.with_client("position", move |client| {
            client
                .position(&table)
                .map(|(snapshot_seq, last_seq)| ShipPosition { snapshot_seq, last_seq })
        })
    }

    fn bootstrap(&mut self) -> evofd_persist::Result<Vec<u8>> {
        let table = self.table.clone();
        let (snapshot, history) =
            self.with_client("bootstrap", move |client| client.bootstrap(&table))?;
        self.cached_history = Some(history);
        Ok(snapshot)
    }

    fn bootstrap_history(&mut self) -> evofd_persist::Result<Vec<u8>> {
        if let Some(history) = self.cached_history.take() {
            return Ok(history);
        }
        let table = self.table.clone();
        let (_, history) = self.with_client("bootstrap", move |client| client.bootstrap(&table))?;
        Ok(history)
    }

    fn fetch(&mut self, seq: u64) -> evofd_persist::Result<Shipment> {
        let table = self.table.clone();
        let follower = self.follower.clone();
        self.with_client("fetch", move |client| client.fetch(&table, seq, &follower))
    }
}
