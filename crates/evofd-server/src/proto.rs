//! The wire protocol: `[len u32 LE][crc32(payload) u32 LE][payload]`
//! frames — the WAL's `encode_frame`/`decode_frame` discipline applied
//! to a socket — carrying tagged request/response messages encoded with
//! the persist layer's [`Encoder`]/[`Decoder`].
//!
//! Reads are incremental (`read_exact` under the hood), so frames
//! fragmented or trickled across TCP segments reassemble byte-for-byte;
//! a bad length or checksum is a hard protocol error that closes the
//! connection — the peer can reconnect and resume, exactly like a
//! follower re-tailing a WAL after a torn read.

use std::io::{self, Read, Write};

use evofd_persist::codec::{Decoder, Encoder};
use evofd_persist::crc32;

/// Upper bound on one wire frame's payload. Matches the WAL's record
/// bound — bootstrap shipments carry whole snapshot images, which the
/// WAL could also hold as one record.
pub const MAX_WIRE_FRAME: usize = 64 << 20;

/// Frame header length: `[len u32][crc32 u32]`.
pub const FRAME_HEADER_LEN: usize = 8;

/// Write one frame: length, payload checksum, payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_WIRE_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds the wire limit", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload overflows u32"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload, verifying length bound and checksum.
/// `Ok(None)` means the peer closed cleanly **between** frames; a close
/// mid-frame is `UnexpectedEof`, a bad length or checksum `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // The first header byte decides clean-close vs torn frame.
    match r.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(e),
    }
    r.read_exact(&mut header[1..])?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_WIRE_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the wire limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame checksum mismatch"));
    }
    Ok(Some(payload))
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session; the server answers [`Response::Hello`].
    Hello {
        /// Client identity (shown in server logs and ack tracking).
        client: String,
    },
    /// Execute a `;`-separated SQL script under this session's state.
    Sql {
        /// The statement text.
        sql: String,
    },
    /// Adjust session-level (non-SQL) state; answered with [`Response::Ok`].
    Session {
        /// Reject writes for this session.
        read_only: bool,
        /// Row limit for rendered SELECT results.
        limit: u64,
    },
    /// Subscribe to pushed [`Response::Event`] frames (drift + alert
    /// transitions); empty table = every table.
    Subscribe {
        /// The table to watch, or empty for all.
        table: String,
    },
    /// The served tables, name-ordered.
    Tables,
    /// A table's shipping position (replication).
    Position {
        /// Target table.
        table: String,
    },
    /// A table's bootstrap image + durable history (replication).
    Bootstrap {
        /// Target table.
        table: String,
    },
    /// Everything after `seq` for one table. Doubles as the follower's
    /// ack that every frame ≤ `seq` is durably applied.
    Fetch {
        /// Target table.
        table: String,
        /// The follower's last acked sequence number.
        seq: u64,
        /// Follower identity for the leader's ack tracking.
        follower: String,
    },
    /// Per-follower acked positions, as tracked on this leader.
    Acks,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session opened.
    Hello {
        /// Server identity string.
        server: String,
        /// Number of served tables.
        tables: u64,
    },
    /// A session command succeeded.
    Ok,
    /// Rendered result text of one SQL script (already formatted tables,
    /// one block per statement).
    Sql {
        /// The rendered output.
        text: String,
    },
    /// The request failed; the session stays usable.
    Err {
        /// What went wrong.
        message: String,
    },
    /// Served table names.
    Tables {
        /// Name-ordered table list.
        names: Vec<String>,
    },
    /// A table's shipping position.
    Position {
        /// Snapshot horizon.
        snapshot_seq: u64,
        /// Highest journaled seq.
        last_seq: u64,
    },
    /// A bootstrap image.
    Bootstrap {
        /// Encoded snapshot.
        snapshot: Vec<u8>,
        /// Durable history bytes (empty when the leader keeps none).
        history: Vec<u8>,
    },
    /// Shipped whole WAL frames (replication fetch result).
    Frames {
        /// `[len][crc][payload]`-framed WAL records, oldest first.
        frames: Vec<Vec<u8>>,
    },
    /// The fetch predates the shipping horizon: re-bootstrap.
    BootstrapRequired {
        /// Encoded snapshot.
        snapshot: Vec<u8>,
        /// Durable history bytes.
        history: Vec<u8>,
    },
    /// A pushed subscription event.
    Event {
        /// Owning table.
        table: String,
        /// Rendered drift/alert event.
        event: String,
    },
    /// Per-follower acked positions.
    Acks {
        /// `(table, follower, acked seq)` triples.
        acks: Vec<(String, String, u64)>,
    },
}

type DecodeResult<T> = Result<T, String>;

fn derr(e: evofd_persist::codec::DecodeError) -> String {
    e.to_string()
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Request::Hello { client } => {
                e.u8(1);
                e.str(client);
            }
            Request::Sql { sql } => {
                e.u8(2);
                e.str(sql);
            }
            Request::Session { read_only, limit } => {
                e.u8(3);
                e.u8(u8::from(*read_only));
                e.u64(*limit);
            }
            Request::Subscribe { table } => {
                e.u8(4);
                e.str(table);
            }
            Request::Tables => e.u8(5),
            Request::Position { table } => {
                e.u8(6);
                e.str(table);
            }
            Request::Bootstrap { table } => {
                e.u8(7);
                e.str(table);
            }
            Request::Fetch { table, seq, follower } => {
                e.u8(8);
                e.str(table);
                e.u64(*seq);
                e.str(follower);
            }
            Request::Acks => e.u8(9),
        }
        e.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> DecodeResult<Request> {
        let mut d = Decoder::new(payload);
        let req = match d.u8("request tag").map_err(derr)? {
            1 => Request::Hello { client: d.str("client").map_err(derr)? },
            2 => Request::Sql { sql: d.str("sql").map_err(derr)? },
            3 => Request::Session {
                read_only: d.u8("read_only").map_err(derr)? != 0,
                limit: d.u64("limit").map_err(derr)?,
            },
            4 => Request::Subscribe { table: d.str("table").map_err(derr)? },
            5 => Request::Tables,
            6 => Request::Position { table: d.str("table").map_err(derr)? },
            7 => Request::Bootstrap { table: d.str("table").map_err(derr)? },
            8 => Request::Fetch {
                table: d.str("table").map_err(derr)?,
                seq: d.u64("seq").map_err(derr)?,
                follower: d.str("follower").map_err(derr)?,
            },
            9 => Request::Acks,
            t => return Err(format!("unknown request tag {t}")),
        };
        if !d.is_exhausted() {
            return Err(format!("{} trailing bytes after request", payload.len() - d.position()));
        }
        Ok(req)
    }
}

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Response::Hello { server, tables } => {
                e.u8(1);
                e.str(server);
                e.u64(*tables);
            }
            Response::Ok => e.u8(2),
            Response::Sql { text } => {
                e.u8(3);
                e.str(text);
            }
            Response::Err { message } => {
                e.u8(4);
                e.str(message);
            }
            Response::Tables { names } => {
                e.u8(5);
                e.u32(names.len() as u32);
                for n in names {
                    e.str(n);
                }
            }
            Response::Position { snapshot_seq, last_seq } => {
                e.u8(6);
                e.u64(*snapshot_seq);
                e.u64(*last_seq);
            }
            Response::Bootstrap { snapshot, history } => {
                e.u8(7);
                e.bytes(snapshot);
                e.bytes(history);
            }
            Response::Frames { frames } => {
                e.u8(8);
                e.u32(frames.len() as u32);
                for f in frames {
                    e.bytes(f);
                }
            }
            Response::BootstrapRequired { snapshot, history } => {
                e.u8(9);
                e.bytes(snapshot);
                e.bytes(history);
            }
            Response::Event { table, event } => {
                e.u8(10);
                e.str(table);
                e.str(event);
            }
            Response::Acks { acks } => {
                e.u8(11);
                e.u32(acks.len() as u32);
                for (t, f, seq) in acks {
                    e.str(t);
                    e.str(f);
                    e.u64(*seq);
                }
            }
        }
        e.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> DecodeResult<Response> {
        let mut d = Decoder::new(payload);
        let resp = match d.u8("response tag").map_err(derr)? {
            1 => Response::Hello {
                server: d.str("server").map_err(derr)?,
                tables: d.u64("tables").map_err(derr)?,
            },
            2 => Response::Ok,
            3 => Response::Sql { text: d.str("text").map_err(derr)? },
            4 => Response::Err { message: d.str("message").map_err(derr)? },
            5 => {
                let n = d.u32("table count").map_err(derr)? as usize;
                let mut names = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    names.push(d.str("table name").map_err(derr)?);
                }
                Response::Tables { names }
            }
            6 => Response::Position {
                snapshot_seq: d.u64("snapshot_seq").map_err(derr)?,
                last_seq: d.u64("last_seq").map_err(derr)?,
            },
            7 => Response::Bootstrap {
                snapshot: d.bytes("snapshot").map_err(derr)?,
                history: d.bytes("history").map_err(derr)?,
            },
            8 => {
                let n = d.u32("frame count").map_err(derr)? as usize;
                let mut frames = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    frames.push(d.bytes("frame").map_err(derr)?);
                }
                Response::Frames { frames }
            }
            9 => Response::BootstrapRequired {
                snapshot: d.bytes("snapshot").map_err(derr)?,
                history: d.bytes("history").map_err(derr)?,
            },
            10 => Response::Event {
                table: d.str("table").map_err(derr)?,
                event: d.str("event").map_err(derr)?,
            },
            11 => {
                let n = d.u32("ack count").map_err(derr)? as usize;
                let mut acks = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    acks.push((
                        d.str("ack table").map_err(derr)?,
                        d.str("ack follower").map_err(derr)?,
                        d.u64("ack seq").map_err(derr)?,
                    ));
                }
                Response::Acks { acks }
            }
            t => return Err(format!("unknown response tag {t}")),
        };
        if !d.is_exhausted() {
            return Err(format!("{} trailing bytes after response", payload.len() - d.position()));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Hello { client: "cli".into() },
            Request::Sql { sql: "SELECT 1".into() },
            Request::Session { read_only: true, limit: 25 },
            Request::Subscribe { table: "t".into() },
            Request::Tables,
            Request::Position { table: "t".into() },
            Request::Bootstrap { table: "t".into() },
            Request::Fetch { table: "t".into(), seq: 42, follower: "f1".into() },
            Request::Acks,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Hello { server: "evofd".into(), tables: 2 },
            Response::Ok,
            Response::Sql { text: "a | b\n".into() },
            Response::Err { message: "no".into() },
            Response::Tables { names: vec!["t".into(), "u".into()] },
            Response::Position { snapshot_seq: 3, last_seq: 9 },
            Response::Bootstrap { snapshot: vec![1, 2, 3], history: vec![] },
            Response::Frames { frames: vec![vec![9, 9], vec![]] },
            Response::BootstrapRequired { snapshot: vec![4], history: vec![5, 6] },
            Response::Event { table: "t".into(), event: "drift".into() },
            Response::Acks { acks: vec![("t".into(), "f1".into(), 7)] },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in all_responses() {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_messages_error_not_panic() {
        for req in all_requests() {
            let bytes = req.encode();
            for cut in 0..bytes.len() {
                assert!(Request::decode(&bytes[..cut]).is_err(), "cut {cut} decoded");
            }
        }
        for resp in all_responses() {
            let bytes = resp.encode();
            for cut in 0..bytes.len() {
                assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut} decoded");
            }
        }
    }

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let payload = b"the payload".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(wire.len(), FRAME_HEADER_LEN + payload.len());
        let mut r = std::io::Cursor::new(wire.clone());
        assert_eq!(read_frame(&mut r).unwrap(), Some(payload.clone()));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean close between frames");

        // Flip one payload byte: checksum mismatch.
        let mut bad = wire.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let err = read_frame(&mut std::io::Cursor::new(bad)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Truncate mid-frame: torn read.
        for cut in 1..wire.len() {
            let err = read_frame(&mut std::io::Cursor::new(&wire[..cut])).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
        }

        // A length past the wire limit is rejected before allocation.
        let mut huge = ((MAX_WIRE_FRAME + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 4]);
        let err = read_frame(&mut std::io::Cursor::new(huge)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fragmented_frame_reassembles() {
        // A reader that yields ONE byte per read call — the trickle case.
        struct Trickle(std::io::Cursor<Vec<u8>>);
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = buf.len().min(1);
                self.0.read(&mut buf[..n])
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, b"split me").unwrap();
        let mut r = Trickle(std::io::Cursor::new(wire));
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"split me".to_vec()));
    }
}
