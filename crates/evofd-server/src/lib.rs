//! `evofd-server`: a dependency-free, multi-client SQL + replication
//! service over TCP sockets.
//!
//! The wire protocol reuses the WAL framing discipline — every message
//! is `[len u32 LE][crc32(payload) u32 LE][payload]` — so a torn or
//! corrupted frame is detected the same way a torn journal tail is (see
//! [`proto`]). On top of that:
//!
//! * [`EvofdServer`] accepts connections and runs one [`session`] per
//!   client over one shared `DurableEngine`, with per-session state
//!   (`SET`-able settings, read-only flag, render limit).
//! * [`Client`] is the blocking client, buffering pushed
//!   [`proto::Response::Event`] frames that interleave with responses.
//! * [`SocketTransport`] plugs the socket into the existing
//!   `FrameTransport` seam, so `evofd follow` can tail a served leader
//!   over TCP — including re-bootstrap when the follower predates the
//!   shipping horizon — and the leader tracks each follower's acked
//!   position (a fetch after `seq` acks everything ≤ `seq`).

pub mod client;
pub mod proto;
pub mod server;
mod session;
pub mod transport;

pub use client::{Client, ClientError, ClientResult};
pub use server::{render_results, EvofdServer, ServerOptions};
pub use transport::SocketTransport;
