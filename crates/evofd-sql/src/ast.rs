//! Abstract syntax tree for the supported SQL subset.

use evofd_storage::{DataType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE [NOT NULL], …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `INSERT INTO name VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Rows of literal values.
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM name [WHERE predicate]`
    Delete {
        /// Target table.
        table: String,
        /// Optional `WHERE` predicate; absent deletes every row.
        filter: Option<Expr>,
    },
    /// `UPDATE name SET col = expr [, …] [WHERE predicate]`
    Update {
        /// Target table.
        table: String,
        /// `col = expr` assignments, in source order. Expressions are
        /// evaluated against the row's *old* values (SQL semantics).
        sets: Vec<(String, Expr)>,
        /// Optional `WHERE` predicate; absent updates every row.
        filter: Option<Expr>,
    },
    /// `SET name = value` — a session setting (e.g.
    /// `SET compact_threshold = 0.4`).
    Set {
        /// Setting name.
        name: String,
        /// The literal value expression.
        value: Expr,
    },
    /// `SHOW FDS [FOR table]` — list the FDs under incremental validation
    /// with their maintained measures (needs an engine with an FD catalog
    /// attached: durable or replica mode).
    ShowFds {
        /// Restrict to one table; absent lists every table's FDs.
        table: Option<String>,
    },
    /// `CHECK FD 'A, B -> C' ON table` — validate one FD against the
    /// table's current contents and report its measures.
    CheckFd {
        /// The FD text (parsed against the table's schema).
        fd: String,
        /// The table to validate against.
        table: String,
    },
    /// `ALTER TABLE t ADD CONSTRAINT FD 'A -> B'` /
    /// `ALTER TABLE t DROP CONSTRAINT FD 'A -> B'` — declare (or retire)
    /// a tracked FD on a durable table. The new FD set is journaled so
    /// recovery and replicas track the same dependencies.
    AlterFd {
        /// Target table.
        table: String,
        /// The FD text (parsed against the table's schema).
        fd: String,
        /// True for `ADD`, false for `DROP`.
        add: bool,
    },
    /// `SUGGEST REPAIRS FOR t [LIMIT n]` — the live advisor's ranked
    /// repair proposals for every violated FD of the table, capped at
    /// `n` rows (default [`crate::DEFAULT_SUGGEST_LIMIT`]).
    SuggestRepairs {
        /// The table whose advisor session is queried.
        table: String,
        /// Optional row cap; absent uses the engine default.
        limit: Option<usize>,
    },
    /// `ACCEPT REPAIR n FOR 'A -> B' ON t` — accept the n-th (1-based)
    /// ranked proposal for the violated FD; the decision is journaled.
    AcceptRepair {
        /// 1-based rank of the proposal to accept.
        proposal: usize,
        /// The violated FD, as text.
        fd: String,
        /// Target table.
        table: String,
    },
    /// `ALERT ON t FD 'A -> B' WHEN confidence < 0.98 FOR 5 EPOCHS` —
    /// install a durable alert rule on the FD's health time series;
    /// the rule set is journaled so recovery and replicas evaluate the
    /// same alerts.
    CreateAlert {
        /// Target table.
        table: String,
        /// The canonical rule text (`FD '…' WHEN metric op threshold
        /// FOR n EPOCHS`), parsed and validated downstream.
        rule: String,
    },
    /// `DROP ALERT ON t FD 'A -> B'` — retire every alert rule watching
    /// the FD; the shrunk set is journaled.
    DropAlert {
        /// Target table.
        table: String,
        /// The watched FD, as text.
        fd: String,
    },
    /// `SHOW ALERTS [FOR table]` — list installed alert rules with their
    /// live runtime (firing flag, consecutive breach streak, lifetime
    /// fired count).
    ShowAlerts {
        /// Restrict to one table; absent lists every table's rules.
        table: Option<String>,
    },
    /// `SHOW DRIFT HISTORY FOR t [FD 'A -> B'] [SINCE EPOCH n]` — the
    /// durable drift provenance: every retained drift event with the
    /// WAL sequence and violating group keys that caused it.
    ShowDriftHistory {
        /// The table whose history file is read.
        table: String,
        /// Restrict to one FD's events.
        fd: Option<String>,
        /// Only events at or after this epoch.
        since_epoch: Option<u64>,
    },
    /// `SHOW STATS [FOR table]` — dump the process-wide metrics
    /// registry as rows; `FOR table` keeps only samples labelled with
    /// that table (or its FDs / followers).
    ShowStats {
        /// Restrict to samples labelled with this table.
        table: Option<String>,
    },
    /// `CREATE INDEX ON t (col)` — build a sorted secondary index over
    /// one column; the planner uses it for equality probes. Durable
    /// engines journal the table's indexed-column set so recovery and
    /// replicas rebuild the same indexes.
    CreateIndex {
        /// Target table.
        table: String,
        /// The indexed column.
        column: String,
    },
    /// `DROP INDEX ON t (col)` — drop the column's secondary index.
    DropIndex {
        /// Target table.
        table: String,
        /// The indexed column.
        column: String,
    },
    /// `EXPLAIN <stmt>` — plan the inner statement and report the chosen
    /// operator tree (access path, predicate compilation, FD rewrites)
    /// without executing it.
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE <stmt>` — execute the inner statement and
    /// report per-stage wall-clock timings instead of its rows.
    ExplainAnalyze(Box<Statement>),
    /// `SELECT …`
    Select(Select),
}

/// One column of a `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// NULLs allowed?
    pub nullable: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT` flag on the select list.
    pub distinct: bool,
    /// Select list.
    pub items: Vec<SelectItem>,
    /// `FROM` table (single-table subset).
    pub from: String,
    /// Optional `WHERE` predicate.
    pub filter: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// Optional `HAVING` predicate (group context).
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
}

/// One entry of a select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
}

impl AggFunc {
    /// Parse an aggregate function name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        }
    }

    /// Render the SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `NOT expr`
    Not(Box<Expr>),
    /// `-expr`
    Neg(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr IN (v1, v2, …)`
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// List of candidate expressions.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// An aggregate call: `COUNT(*)`, `COUNT(DISTINCT a, b)`, `SUM(x)`, …
    Aggregate {
        /// The function.
        func: AggFunc,
        /// `DISTINCT` flag.
        distinct: bool,
        /// Arguments (empty = `*`).
        args: Vec<Expr>,
    },
}

impl Expr {
    /// True iff the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Column(_) => false,
            Expr::Binary { lhs, rhs, .. } => lhs.has_aggregate() || rhs.has_aggregate(),
            Expr::Not(e) | Expr::Neg(e) => e.has_aggregate(),
            Expr::IsNull { expr, .. } => expr.has_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.has_aggregate() || list.iter().any(Expr::has_aggregate)
            }
        }
    }

    /// A short rendered name used as the output column header.
    pub fn header(&self) -> String {
        match self {
            Expr::Literal(v) => v.to_string(),
            Expr::Column(c) => c.clone(),
            Expr::Binary { .. }
            | Expr::Not(_)
            | Expr::Neg(_)
            | Expr::IsNull { .. }
            | Expr::InList { .. } => "expr".to_string(),
            Expr::Aggregate { func, distinct, args } => {
                let inner = if args.is_empty() {
                    "*".to_string()
                } else {
                    args.iter().map(Expr::header).collect::<Vec<_>>().join(", ")
                };
                if *distinct {
                    format!("{}(DISTINCT {inner})", func.name())
                } else {
                    format!("{}({inner})", func.name())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let count = Expr::Aggregate { func: AggFunc::Count, distinct: false, args: vec![] };
        assert!(count.has_aggregate());
        let nested = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Literal(Value::Int(1))),
            rhs: Box::new(count),
        };
        assert!(nested.has_aggregate());
        assert!(!Expr::Column("a".into()).has_aggregate());
    }

    #[test]
    fn headers() {
        let e = Expr::Aggregate {
            func: AggFunc::Count,
            distinct: true,
            args: vec![Expr::Column("a".into()), Expr::Column("b".into())],
        };
        assert_eq!(e.header(), "COUNT(DISTINCT a, b)");
        assert_eq!(Expr::Column("x".into()).header(), "x");
    }

    #[test]
    fn agg_func_parse() {
        assert_eq!(AggFunc::parse("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("AVG"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("median"), None);
    }
}
