//! Query execution over `evofd-storage` relations.
//!
//! Single-table SELECT with WHERE / GROUP BY / aggregates / DISTINCT /
//! ORDER BY / LIMIT, plus CREATE TABLE, INSERT, UPDATE and DELETE —
//! enough to run every query the paper's prototype issues
//! (`SELECT COUNT(DISTINCT …) FROM t`) and the exploratory queries of the
//! examples. NULL comparisons follow SQL three-valued logic;
//! `COUNT(DISTINCT a, b)` skips rows with a NULL in any counted column
//! (also SQL semantics — note this differs from the engine's native
//! `count_distinct`, which groups NULLs; FD attributes are NULL-free so
//! the paper's measures agree under both).
//!
//! `UPDATE` is lowered onto the `evofd-incremental` delta path: the
//! matched rows become one atomic [`Delta`] (tombstone the old tuples,
//! append the rewritten ones) applied through a [`LiveRelation`], so a
//! delta-maintained tracker observing the table sees a multi-row UPDATE
//! as a single batch instead of a DELETE statement followed by an INSERT.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use evofd_core::Fd;
use evofd_incremental::{ColumnIndex, Delta, LiveRelation, DEFAULT_COMPACT_THRESHOLD};
use evofd_storage::{Catalog, DataType, Field, Relation, Schema, Value};

use crate::ast::{AggFunc, BinOp, Expr, Select, SelectItem, Statement};
use crate::error::{Result, SqlError};
use crate::ops;
use crate::parser::{parse, parse_script};
use crate::plan::{self, Access, MatchPlan, UniqueVia};

/// Default row cap applied to `SUGGEST REPAIRS FOR t` when the statement
/// carries no explicit `LIMIT n` clause.
pub const DEFAULT_SUGGEST_LIMIT: usize = 20;

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// Rows returned by a SELECT.
    Rows(Relation),
    /// A table was created.
    Created {
        /// The new table's name.
        table: String,
    },
    /// Rows were inserted.
    Inserted {
        /// Target table.
        table: String,
        /// Number of rows inserted.
        rows: usize,
    },
    /// Rows were deleted.
    Deleted {
        /// Target table.
        table: String,
        /// Number of rows deleted.
        rows: usize,
    },
    /// Rows were updated.
    Updated {
        /// Target table.
        table: String,
        /// Number of rows rewritten.
        rows: usize,
    },
    /// A session setting changed.
    SetVar {
        /// Setting name.
        name: String,
        /// The new value, rendered.
        value: String,
    },
    /// A tracked FD was added to or dropped from a table via
    /// `ALTER TABLE … CONSTRAINT FD`.
    AlteredFds {
        /// Target table.
        table: String,
        /// The FD text as given.
        fd: String,
        /// True for ADD, false for DROP.
        added: bool,
        /// Number of FDs tracked after the change.
        tracked: usize,
    },
    /// A repair proposal was accepted via `ACCEPT REPAIR`; the FD evolved.
    RepairAccepted {
        /// Target table.
        table: String,
        /// The original FD, rendered.
        original: String,
        /// The evolved FD, rendered.
        evolved: String,
    },
    /// A secondary index was built via `CREATE INDEX`.
    IndexCreated {
        /// Target table.
        table: String,
        /// The indexed column (canonical schema name).
        column: String,
    },
    /// A secondary index was dropped via `DROP INDEX`.
    IndexDropped {
        /// Target table.
        table: String,
        /// The formerly indexed column (canonical schema name).
        column: String,
    },
    /// The table's alert-rule set changed via `ALERT ON` / `DROP ALERT`.
    AlertsChanged {
        /// Target table.
        table: String,
        /// The rule installed, or the FD whose rules were dropped.
        subject: String,
        /// True for `ALERT ON`, false for `DROP ALERT`.
        installed: bool,
        /// Number of alert rules on the table after the change.
        rules: usize,
    },
}

impl QueryResult {
    /// The relation of a SELECT result; errors for DDL/DML results.
    pub fn into_rows(self) -> Result<Relation> {
        match self {
            QueryResult::Rows(rel) => Ok(rel),
            other => Err(SqlError::Eval { message: format!("expected rows, got {other:?}") }),
        }
    }
}

/// Per-session tunables, adjusted with `SET name = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSettings {
    /// Tombstone fraction above which mutable tables compact — forwarded
    /// to the incremental delta path (UPDATE/DELETE lowering) and to a
    /// durable backend when one is attached.
    pub compact_threshold: f64,
}

impl Default for SessionSettings {
    fn default() -> Self {
        SessionSettings { compact_threshold: DEFAULT_COMPACT_THRESHOLD }
    }
}

/// A pluggable durable store behind the engine's DML.
///
/// When a backend is attached, every INSERT/DELETE/UPDATE becomes a
/// durable transaction: the engine lowers the statement to a value-level
/// change batch — appended tuples plus deleted row indices **into the
/// current canonical table** (the relation SELECTs serve, in its current
/// row order) — and hands it to the backend, which must journal it
/// *before* applying (write-ahead). On success the engine mirrors the
/// same batch onto its catalog copy through the ordinary in-memory paths
/// (append / filter / delta lowering), so mutation cost stays O(changed)
/// instead of re-materialising the table; both sides apply the identical
/// canonical batch, so they stay in lock-step (proven by the reopen
/// equivalence tests). On error the backend must leave its durable state
/// cancelled (e.g. a WAL rollback record), mirroring the in-memory
/// engine's restore-on-error contract; the engine then leaves the catalog
/// untouched.
pub trait StorageBackend: std::fmt::Debug {
    /// Register a new empty table.
    fn create_table(&mut self, schema: Arc<Schema>) -> std::result::Result<(), String>;

    /// Journal and apply one mutation batch to the durable store.
    fn apply_mutation(
        &mut self,
        table: &str,
        inserts: Vec<Vec<Value>>,
        deletes: Vec<usize>,
    ) -> std::result::Result<(), String>;

    /// Forward a changed `compact_threshold` session setting.
    fn set_compact_threshold(&mut self, threshold: f64);

    /// Journal the table's **full** secondary-index column set (the new
    /// set after a `CREATE INDEX` / `DROP INDEX`), so recovery and
    /// replicas rebuild the same indexes. Journal-only backends may keep
    /// the default no-op.
    fn set_indexes(&mut self, table: &str, columns: &[String]) -> std::result::Result<(), String> {
        let _ = (table, columns);
        Ok(())
    }
}

/// One row of `SHOW FDS` output: an FD under incremental validation, its
/// maintained measures and its live-advisor status.
#[derive(Debug, Clone, PartialEq)]
pub struct FdInfoRow {
    /// Owning table.
    pub table: String,
    /// Rendered FD (e.g. `[Zip] -> [City]`).
    pub fd: String,
    /// Maintained confidence.
    pub confidence: f64,
    /// Maintained goodness.
    pub goodness: i64,
    /// Live tuples currently in violating groups.
    pub violating_rows: usize,
    /// Advisor status: `satisfied`, `violated`, `evolved`, `kept` or
    /// `dropped`.
    pub status: String,
    /// The `g3` measure: minimal fraction of tuples to delete to satisfy
    /// the FD (0 when satisfied).
    pub g3: f64,
    /// Ranked repair proposals currently pending for this FD.
    pub proposals: usize,
    /// Whether the measures are sketch estimates — the tracker degraded
    /// to approximate mode under a memory bound.
    pub approx: bool,
}

/// One row of `SUGGEST REPAIRS FOR t` output: a ranked proposal the live
/// advisor currently holds for a violated FD.
#[derive(Debug, Clone, PartialEq)]
pub struct ProposalRow {
    /// Owning table.
    pub table: String,
    /// The violated FD, rendered.
    pub fd: String,
    /// 1-based rank of this proposal (the paper's §4.1 order).
    pub rank: usize,
    /// The evolved FD, rendered.
    pub evolved: String,
    /// Attributes added to the antecedent, rendered.
    pub added: String,
    /// Goodness of the evolved FD.
    pub goodness: i64,
}

/// One row of `SHOW ALERTS` output: an installed alert rule with its
/// live evaluation state.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertInfoRow {
    /// Owning table.
    pub table: String,
    /// Canonical rule text (`FD '…' WHEN metric op threshold FOR n
    /// EPOCHS`).
    pub rule: String,
    /// The watched FD, rendered.
    pub fd: String,
    /// True while the rule is in the fired state.
    pub firing: bool,
    /// Consecutive sampled epochs the condition has held.
    pub consecutive: u64,
    /// Lifetime number of times the rule fired.
    pub fired_count: u64,
}

/// One row of `SHOW DRIFT HISTORY` output: a retained drift event with
/// the WAL provenance that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftInfoRow {
    /// Epoch at which the event was recorded.
    pub epoch: u64,
    /// WAL sequence number of the delta that caused it (0 if unknown).
    pub seq: u64,
    /// The drifted FD, rendered.
    pub fd: String,
    /// Event kind token (`violated`, `exact`, `crossed-up@t`,
    /// `crossed-down@t`, `alert-fired:…`, `alert-resolved:…`).
    pub kind: String,
    /// Confidence before the delta.
    pub confidence_before: f64,
    /// Confidence after the delta.
    pub confidence_after: f64,
    /// Violating group keys, rendered comma-separated (may be empty).
    pub groups: String,
}

/// Outcome of an accepted repair (`ACCEPT REPAIR`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptedRepair {
    /// The original FD, rendered.
    pub original: String,
    /// The evolved FD, rendered.
    pub evolved: String,
}

/// A source of tracked-FD state for `SHOW FDS` and the live-advisor
/// statements — implemented by the durable/replica engines over their
/// incremental validators and advisor sessions (a plain in-memory engine
/// tracks no FDs and has none to show). The advisor methods have
/// unsupported defaults so read-only catalogs can implement just
/// [`FdInfoProvider::fd_rows`].
pub trait FdInfoProvider: std::fmt::Debug {
    /// The tracked FDs of `table` (or of every table when `None`), in
    /// table-name then FD-index order.
    fn fd_rows(&self, table: Option<&str>) -> std::result::Result<Vec<FdInfoRow>, String>;

    /// The live advisor's ranked repair proposals for every violated FD
    /// of `table` (`SUGGEST REPAIRS FOR t [LIMIT n]`), capped at `limit`
    /// rows after ranking.
    fn proposal_rows(
        &self,
        table: &str,
        limit: usize,
    ) -> std::result::Result<Vec<ProposalRow>, String> {
        let _ = (table, limit);
        Err("this engine has no live advisor attached".into())
    }

    /// Accept ranked proposal `proposal` (0-based) for `fd` on `table`,
    /// journaling the decision (`ACCEPT REPAIR n FOR '…' ON t`).
    fn accept_repair(
        &self,
        table: &str,
        fd: &str,
        proposal: usize,
    ) -> std::result::Result<AcceptedRepair, String> {
        let _ = (table, fd, proposal);
        Err("this engine has no live advisor attached".into())
    }

    /// Add or drop a tracked FD (`ALTER TABLE … CONSTRAINT FD`),
    /// journaling the new FD set. Returns the tracked-FD count after the
    /// change.
    fn alter_fd(&self, table: &str, fd: &str, add: bool) -> std::result::Result<usize, String> {
        let _ = (table, fd, add);
        Err("this engine does not support FD DDL".into())
    }

    /// The tracked FDs of `table` the validator **currently** reports as
    /// holding exactly (confidence 1), rendered in [`Fd::parse`] form.
    /// The planner re-reads this on every statement — the drift guard
    /// for its FD-aware rewrites. Default: none (no rewrites).
    fn exact_fds(&self, table: &str) -> Vec<String> {
        let _ = table;
        Vec::new()
    }

    /// Install one alert rule on `table` (`ALERT ON t FD '…' WHEN …`),
    /// journaling the table's new full rule set. Returns the rule count
    /// after the change.
    fn create_alert(&self, table: &str, rule: &str) -> std::result::Result<usize, String> {
        let _ = (table, rule);
        Err("this engine has no durable alert catalog".into())
    }

    /// Drop every alert rule watching `fd` on `table` (`DROP ALERT ON t
    /// FD '…'`), journaling the shrunk set. Returns `(removed,
    /// remaining)`; removing zero rules is an error.
    fn drop_alert(&self, table: &str, fd: &str) -> std::result::Result<(usize, usize), String> {
        let _ = (table, fd);
        Err("this engine has no durable alert catalog".into())
    }

    /// The installed alert rules of `table` (or of every table when
    /// `None`) with their live runtime, for `SHOW ALERTS`.
    fn alert_rows(&self, table: Option<&str>) -> std::result::Result<Vec<AlertInfoRow>, String> {
        let _ = table;
        Err("this engine has no durable alert catalog".into())
    }

    /// The retained drift events of `table` for `SHOW DRIFT HISTORY`,
    /// optionally narrowed to one FD and to epochs `>= since_epoch`.
    fn drift_rows(
        &self,
        table: &str,
        fd: Option<&str>,
        since_epoch: Option<u64>,
    ) -> std::result::Result<Vec<DriftInfoRow>, String> {
        let _ = (table, fd, since_epoch);
        Err("this engine has no durable history".into())
    }
}

/// A SQL engine owning a catalog of relations.
#[derive(Debug, Default)]
pub struct Engine {
    catalog: Catalog,
    settings: SessionSettings,
    backend: Option<Box<dyn StorageBackend + Send>>,
    fd_provider: Option<Box<dyn FdInfoProvider + Send>>,
    read_only: bool,
    /// Secondary indexes, table → canonical column name → index.
    /// Maintained synchronously with every DML statement, so their
    /// cardinalities double as the planner's statistics.
    indexes: HashMap<String, BTreeMap<String, ColumnIndex>>,
}

impl Engine {
    /// An engine with an empty catalog.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine over an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Engine {
        Engine { catalog, ..Engine::default() }
    }

    /// Attach a durable backend. The catalog must already mirror the
    /// backend's tables (the caller seeds it from the backend's canonical
    /// contents); from here on every DML statement goes through the
    /// backend's write-ahead path.
    pub fn set_backend(&mut self, backend: Box<dyn StorageBackend + Send>) {
        self.backend = Some(backend);
    }

    /// True iff a durable backend is attached.
    pub fn is_durable(&self) -> bool {
        self.backend.is_some()
    }

    /// Attach a tracked-FD catalog for `SHOW FDS`.
    pub fn set_fd_provider(&mut self, provider: Box<dyn FdInfoProvider + Send>) {
        self.fd_provider = Some(provider);
    }

    /// Switch the engine into (or out of) read-only replica mode: every
    /// CREATE/INSERT/UPDATE/DELETE is rejected with
    /// [`SqlError::ReadOnly`]; SELECT, `SHOW FDS` and `CHECK FD` keep
    /// working.
    pub fn set_read_only(&mut self, read_only: bool) {
        self.read_only = read_only;
    }

    /// True iff the engine rejects writes (replica mode).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Give back the attached backend, detaching it.
    pub fn take_backend(&mut self) -> Option<Box<dyn StorageBackend + Send>> {
        self.backend.take()
    }

    /// The session settings.
    pub fn settings(&self) -> &SessionSettings {
        &self.settings
    }

    /// Replace the session settings wholesale — the multi-session server
    /// swaps each connection's [`SessionSettings`] in around its
    /// statements so concurrent sessions keep independent `SET` state
    /// over one shared engine. Forwards the (possibly changed)
    /// `compact_threshold` to an attached backend, exactly as the `SET`
    /// statement path does.
    pub fn set_settings(&mut self, settings: SessionSettings) {
        let threshold_changed = settings.compact_threshold != self.settings.compact_threshold;
        self.settings = settings;
        if threshold_changed {
            if let Some(backend) = &mut self.backend {
                backend.set_compact_threshold(self.settings.compact_threshold);
            }
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (e.g. to register generated tables).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The canonical names of `table`'s indexed columns, sorted.
    pub fn indexed_columns(&self, table: &str) -> Vec<String> {
        self.indexes.get(table).map(|t| t.keys().cloned().collect()).unwrap_or_default()
    }

    /// Install (replace) the full secondary-index set of `table`
    /// **without journaling** — the recovery/replica path replaying a
    /// journaled index set.
    pub fn install_index_set(&mut self, table: &str, columns: &[String]) -> Result<()> {
        let rel = self.catalog.get(table)?;
        let mut set = BTreeMap::new();
        for c in columns {
            let attr = rel.schema().resolve(c)?;
            let canonical = rel.schema().fields()[attr.index()].name.clone();
            set.insert(canonical, ColumnIndex::build(rel, attr));
        }
        self.indexes.insert(table.to_string(), set);
        Ok(())
    }

    /// Rebuild `table`'s indexes after its relation was replaced out of
    /// band (replica ingest, recovery replay) — a no-op when none exist.
    pub fn refresh_indexes(&mut self, table: &str) -> Result<()> {
        self.rebuild_indexes(table)
    }

    /// `table`'s index map (empty map when none exist).
    fn table_indexes(&self, table: &str) -> &BTreeMap<String, ColumnIndex> {
        static EMPTY: std::sync::OnceLock<BTreeMap<String, ColumnIndex>> =
            std::sync::OnceLock::new();
        self.indexes.get(table).unwrap_or_else(|| EMPTY.get_or_init(BTreeMap::new))
    }

    /// The exact FDs the provider currently reports for `table`, parsed
    /// against the relation's schema (unparseable entries are skipped —
    /// a rewrite silently not firing is always safe).
    fn planner_fds(&self, table: &str, rel: &Relation) -> Vec<Fd> {
        self.fd_provider.as_deref().map_or_else(Vec::new, |p| {
            p.exact_fds(table).iter().filter_map(|s| Fd::parse(rel.schema(), s).ok()).collect()
        })
    }

    /// Plan and run row matching for an UPDATE/DELETE WHERE clause,
    /// returning the matched physical row ids in ascending order.
    fn match_rows(&self, table: &str, filter: Option<&Expr>) -> Result<Vec<usize>> {
        let rel = self.catalog.get(table)?;
        let fds = self.planner_fds(table, rel);
        let match_plan = plan::plan_match(rel, self.table_indexes(table), &fds, filter)?;
        record_access(&match_plan.access);
        let timed = evofd_obs::stages_active();
        let op = ops::build_row_ops(rel, self.table_indexes(table), &match_plan, timed);
        let (rows, stats) = ops::collect_matches(op)?;
        if timed {
            for s in &stats {
                evofd_obs::record_stage(
                    format!("op.{}", s.name),
                    s.nanos,
                    format!("{} rows; {}", s.rows, s.detail),
                );
            }
        }
        Ok(rows)
    }

    /// Rebuild every index of `table` (DELETE/UPDATE renumbered the
    /// physical rows).
    fn rebuild_indexes(&mut self, table: &str) -> Result<()> {
        let Some(set) = self.indexes.get_mut(table) else { return Ok(()) };
        if set.is_empty() {
            return Ok(());
        }
        let rel = self.catalog.get(table)?;
        for idx in set.values_mut() {
            idx.rebuild(rel);
        }
        Ok(())
    }

    /// Parse and execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Execute a `;`-separated script, returning each statement's result.
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        parse_script(sql)?.iter().map(|s| self.execute_stmt(s)).collect()
    }

    /// Run a SELECT and return its relation.
    pub fn query(&mut self, sql: &str) -> Result<Relation> {
        self.execute(sql)?.into_rows()
    }

    /// Run a single-value SELECT (one row, one column) and return the value
    /// — the shape of the paper's confidence queries.
    pub fn query_scalar(&mut self, sql: &str) -> Result<Value> {
        let rel = self.query(sql)?;
        if rel.row_count() != 1 || rel.arity() != 1 {
            return Err(SqlError::Eval {
                message: format!(
                    "expected a scalar, got {} rows × {} columns",
                    rel.row_count(),
                    rel.arity()
                ),
            });
        }
        Ok(rel.row(0).remove(0))
    }

    /// Execute a parsed statement.
    pub fn execute_stmt(&mut self, stmt: &Statement) -> Result<QueryResult> {
        if evofd_obs::enabled() {
            evofd_obs::metrics::SQL_STATEMENTS_TOTAL.with_label(statement_verb(stmt)).inc();
        }
        let _span = evofd_obs::span("sql.execute");
        if self.read_only {
            let verb = match stmt {
                Statement::CreateTable { .. } => Some("CREATE TABLE"),
                Statement::Insert { .. } => Some("INSERT"),
                Statement::Delete { .. } => Some("DELETE"),
                Statement::Update { .. } => Some("UPDATE"),
                Statement::AlterFd { .. } => Some("ALTER TABLE"),
                Statement::AcceptRepair { .. } => Some("ACCEPT REPAIR"),
                Statement::CreateIndex { .. } => Some("CREATE INDEX"),
                Statement::DropIndex { .. } => Some("DROP INDEX"),
                Statement::CreateAlert { .. } => Some("ALERT ON"),
                Statement::DropAlert { .. } => Some("DROP ALERT"),
                _ => None,
            };
            if let Some(verb) = verb {
                return Err(SqlError::ReadOnly { statement: verb.into() });
            }
        }
        match stmt {
            Statement::CreateTable { name, columns } => {
                let fields: Vec<Field> = columns
                    .iter()
                    .map(|c| Field { name: c.name.clone(), dtype: c.dtype, nullable: c.nullable })
                    .collect();
                let schema = Schema::new(name.clone(), fields)?.into_shared();
                if self.catalog.contains(name) {
                    return Err(SqlError::Storage(evofd_storage::StorageError::DuplicateTable {
                        name: name.clone(),
                    }));
                }
                if let Some(backend) = &mut self.backend {
                    backend
                        .create_table(Arc::clone(&schema))
                        .map_err(|message| SqlError::Backend { message })?;
                }
                self.catalog.insert(Relation::empty(schema))?;
                Ok(QueryResult::Created { table: name.clone() })
            }
            Statement::Insert { table, rows } => {
                // Evaluate the literal rows before touching the catalog so
                // a bad expression leaves the table untouched.
                let values = {
                    let mut stage = evofd_obs::stage("insert.eval");
                    let mut values = Vec::with_capacity(rows.len());
                    for row_exprs in rows {
                        let mut row = Vec::with_capacity(row_exprs.len());
                        for e in row_exprs {
                            row.push(eval_const(e)?);
                        }
                        values.push(row);
                    }
                    stage.detail(format!("{} rows", values.len()));
                    values
                };
                // Journal first when durable; the backend's LiveRelation
                // applies the same validation, so a success here means the
                // catalog mirror below cannot fail.
                {
                    let mut stage = evofd_obs::stage("insert.journal");
                    if self.backend.is_none() {
                        stage.detail("no durable backend");
                    }
                    self.journal_mutation(table, &values, &[])?;
                }
                // Mutate in place through the dictionary-re-using append
                // path (the same primitive `evofd-incremental`'s
                // `LiveRelation` builds on): O(inserted) instead of the old
                // O(table) rebuild, and atomic — a bad row anywhere in the
                // batch leaves the table untouched.
                let appended = {
                    let _stage = evofd_obs::stage("insert.apply");
                    let rel = self.catalog.get_mut(table)?;
                    rel.append_rows(values)?
                };
                // O(inserted) index maintenance: the new rows sit at the
                // tail, so each index just extends its row lists.
                if appended > 0 {
                    if let Some(set) = self.indexes.get_mut(table) {
                        let rel = self.catalog.get(table)?;
                        let total = rel.row_count();
                        for idx in set.values_mut() {
                            idx.extend_appended(rel, total - appended..total);
                        }
                    }
                }
                Ok(QueryResult::Inserted { table: table.clone(), rows: appended })
            }
            Statement::Delete { table, filter } => {
                // Matching goes through the planner: an indexed equality
                // WHERE deletes in O(matched) instead of scanning.
                let matched = self.match_rows(table, filter.as_ref())?;
                let deleted = matched.len();
                if deleted > 0 {
                    self.journal_mutation(table, &[], &matched)?;
                    let rel = self.catalog.get_mut(table)?;
                    let mut keep = vec![true; rel.row_count()];
                    for &r in &matched {
                        keep[r] = false;
                    }
                    let filtered = rel.filter(&keep);
                    *rel = filtered;
                    self.rebuild_indexes(table)?;
                }
                Ok(QueryResult::Deleted { table: table.clone(), rows: deleted })
            }
            Statement::Update { table, sets, filter } => {
                // Phase 1 (read-only): resolve targets, match rows and
                // evaluate the rewritten tuples against the OLD values —
                // any error here leaves the table untouched.
                let rel = self.catalog.get(table)?;
                let mut targets: Vec<usize> = Vec::with_capacity(sets.len());
                for (name, _) in sets {
                    let idx = rel.schema().resolve(name)?.index();
                    if targets.contains(&idx) {
                        return Err(SqlError::Eval {
                            message: format!("column `{name}` assigned twice in SET"),
                        });
                    }
                    targets.push(idx);
                }
                // Matching goes through the planner (index probe when an
                // equality conjunct has one); the rewritten tuples are
                // still evaluated against the OLD values.
                let matched = self.match_rows(table, filter.as_ref())?;
                let rel = self.catalog.get(table)?;
                let mut delta = Delta::new();
                for row in matched {
                    let mut tuple = rel.row(row);
                    for ((_, expr), &idx) in sets.iter().zip(&targets) {
                        tuple[idx] = eval_row(expr, rel, row)?;
                    }
                    delta.deletes.push(row);
                    delta.inserts.push(tuple);
                }
                let changed = delta.deletes.len();
                // Phase 2: apply the whole UPDATE as ONE delta batch on
                // the incremental engine's LiveRelation path — tombstone
                // the old tuples, append the rewritten ones (dictionary
                // codes re-used), atomically. A tracker following the
                // table sees a single batch, not DELETE-then-INSERT. With
                // a durable backend the same batch goes through the WAL.
                if changed > 0 {
                    let schema = rel.schema_arc();
                    let threshold = self.settings.compact_threshold;
                    self.journal_mutation(table, &delta.inserts, &delta.deletes)?;
                    let slot = self.catalog.get_mut(table)?;
                    let mut live =
                        LiveRelation::new(std::mem::replace(slot, Relation::empty(schema)))
                            .with_compact_threshold(threshold);
                    let applied = live.apply(&delta);
                    // `apply` is atomic: on error the contents are the
                    // originals, so the table is restored either way.
                    *slot = live.into_relation();
                    applied
                        .map_err(|e| SqlError::Eval { message: format!("UPDATE failed: {e}") })?;
                    // Tombstones + appends (and a possible compaction)
                    // renumbered physical rows: resync the indexes.
                    self.rebuild_indexes(table)?;
                }
                Ok(QueryResult::Updated { table: table.clone(), rows: changed })
            }
            Statement::Set { name, value } => self.set_variable(name, value),
            Statement::ShowFds { table } => {
                let provider = self.require_fd_provider("SHOW FDS")?;
                if let Some(t) = table {
                    self.catalog.get(t)?; // unknown tables error like SELECT
                }
                let rows = provider
                    .fd_rows(table.as_deref())
                    .map_err(|message| SqlError::Backend { message })?;
                let headers = [
                    "table",
                    "fd",
                    "confidence",
                    "goodness",
                    "violating_rows",
                    "status",
                    "g3",
                    "proposals",
                    "approx",
                ]
                .map(String::from)
                .to_vec();
                let tuples = rows
                    .into_iter()
                    .map(|r| {
                        vec![
                            Value::str(r.table),
                            Value::str(r.fd),
                            Value::Float(r.confidence),
                            Value::Int(r.goodness),
                            Value::Int(r.violating_rows as i64),
                            Value::str(r.status),
                            Value::Float(r.g3),
                            Value::Int(r.proposals as i64),
                            Value::str(if r.approx { "yes" } else { "no" }),
                        ]
                    })
                    .collect();
                Ok(QueryResult::Rows(build_result(headers, tuples)?))
            }
            Statement::AlterFd { table, fd, add } => {
                let provider = self.require_fd_provider("ALTER TABLE … CONSTRAINT FD")?;
                self.catalog.get(table)?;
                let tracked = provider
                    .alter_fd(table, fd, *add)
                    .map_err(|message| SqlError::Backend { message })?;
                Ok(QueryResult::AlteredFds {
                    table: table.clone(),
                    fd: fd.clone(),
                    added: *add,
                    tracked,
                })
            }
            Statement::SuggestRepairs { table, limit } => {
                let provider = self.require_fd_provider("SUGGEST REPAIRS")?;
                self.catalog.get(table)?;
                let limit = limit.unwrap_or(DEFAULT_SUGGEST_LIMIT);
                let rows = {
                    let mut stage = evofd_obs::stage("suggest.proposals");
                    let rows = provider
                        .proposal_rows(table, limit)
                        .map_err(|message| SqlError::Backend { message })?;
                    stage.detail(format!("{} proposals, limit {limit}", rows.len()));
                    rows
                };
                let _stage = evofd_obs::stage("suggest.render");
                let headers = ["table", "fd", "rank", "evolved_fd", "added", "goodness"]
                    .map(String::from)
                    .to_vec();
                let tuples = rows
                    .into_iter()
                    .map(|r| {
                        vec![
                            Value::str(r.table),
                            Value::str(r.fd),
                            Value::Int(r.rank as i64),
                            Value::str(r.evolved),
                            Value::str(r.added),
                            Value::Int(r.goodness),
                        ]
                    })
                    .collect();
                Ok(QueryResult::Rows(build_result(headers, tuples)?))
            }
            Statement::AcceptRepair { proposal, fd, table } => {
                let provider = self.require_fd_provider("ACCEPT REPAIR")?;
                self.catalog.get(table)?;
                let accepted = provider
                    .accept_repair(table, fd, proposal - 1)
                    .map_err(|message| SqlError::Backend { message })?;
                Ok(QueryResult::RepairAccepted {
                    table: table.clone(),
                    original: accepted.original,
                    evolved: accepted.evolved,
                })
            }
            Statement::CheckFd { fd, table } => {
                let rel = self.catalog.get(table)?;
                let parsed = evofd_core::Fd::parse(rel.schema(), fd)
                    .map_err(|e| SqlError::Eval { message: format!("CHECK FD: {e}") })?;
                let mut cache = evofd_storage::DistinctCache::new();
                let m = evofd_core::Measures::compute(rel, &parsed, &mut cache);
                let headers =
                    ["fd", "confidence", "goodness", "satisfied"].map(String::from).to_vec();
                let row = vec![
                    Value::str(parsed.display(rel.schema())),
                    Value::Float(m.confidence),
                    Value::Int(m.goodness),
                    Value::Bool(m.is_exact()),
                ];
                Ok(QueryResult::Rows(build_result(headers, vec![row])?))
            }
            Statement::ShowStats { table } => {
                if let Some(t) = table {
                    self.catalog.get(t)?; // unknown tables error like SELECT
                }
                let samples = evofd_obs::flatten(table.as_deref());
                let headers = ["metric", "labels", "value"].map(String::from).to_vec();
                let tuples = samples
                    .into_iter()
                    .map(|s| {
                        vec![Value::str(s.metric), Value::str(s.labels), Value::Float(s.value)]
                    })
                    .collect();
                Ok(QueryResult::Rows(build_result(headers, tuples)?))
            }
            Statement::CreateAlert { table, rule } => {
                let provider = self.require_fd_provider("ALERT ON")?;
                self.catalog.get(table)?;
                let rules = provider
                    .create_alert(table, rule)
                    .map_err(|message| SqlError::Backend { message })?;
                Ok(QueryResult::AlertsChanged {
                    table: table.clone(),
                    subject: rule.clone(),
                    installed: true,
                    rules,
                })
            }
            Statement::DropAlert { table, fd } => {
                let provider = self.require_fd_provider("DROP ALERT")?;
                self.catalog.get(table)?;
                let (_, remaining) = provider
                    .drop_alert(table, fd)
                    .map_err(|message| SqlError::Backend { message })?;
                Ok(QueryResult::AlertsChanged {
                    table: table.clone(),
                    subject: fd.clone(),
                    installed: false,
                    rules: remaining,
                })
            }
            Statement::ShowAlerts { table } => {
                let provider = self.require_fd_provider("SHOW ALERTS")?;
                if let Some(t) = table {
                    self.catalog.get(t)?; // unknown tables error like SELECT
                }
                let rows = provider
                    .alert_rows(table.as_deref())
                    .map_err(|message| SqlError::Backend { message })?;
                let headers = ["table", "rule", "fd", "firing", "consecutive", "fired_count"]
                    .map(String::from)
                    .to_vec();
                let tuples = rows
                    .into_iter()
                    .map(|r| {
                        vec![
                            Value::str(r.table),
                            Value::str(r.rule),
                            Value::str(r.fd),
                            Value::Bool(r.firing),
                            Value::Int(r.consecutive as i64),
                            Value::Int(r.fired_count as i64),
                        ]
                    })
                    .collect();
                Ok(QueryResult::Rows(build_result(headers, tuples)?))
            }
            Statement::ShowDriftHistory { table, fd, since_epoch } => {
                let provider = self.require_fd_provider("SHOW DRIFT HISTORY")?;
                self.catalog.get(table)?;
                let rows = provider
                    .drift_rows(table, fd.as_deref(), *since_epoch)
                    .map_err(|message| SqlError::Backend { message })?;
                let headers = [
                    "epoch",
                    "seq",
                    "fd",
                    "kind",
                    "confidence_before",
                    "confidence_after",
                    "groups",
                ]
                .map(String::from)
                .to_vec();
                let tuples = rows
                    .into_iter()
                    .map(|r| {
                        vec![
                            Value::Int(r.epoch as i64),
                            Value::Int(r.seq as i64),
                            Value::str(r.fd),
                            Value::str(r.kind),
                            Value::Float(r.confidence_before),
                            Value::Float(r.confidence_after),
                            Value::str(r.groups),
                        ]
                    })
                    .collect();
                Ok(QueryResult::Rows(build_result(headers, tuples)?))
            }
            Statement::CreateIndex { table, column } => {
                let rel = self.catalog.get(table)?;
                let attr = rel.schema().resolve(column)?;
                let canonical = rel.schema().fields()[attr.index()].name.clone();
                if self.indexes.get(table).is_some_and(|t| t.contains_key(&canonical)) {
                    return Err(SqlError::Eval {
                        message: format!("index on {table}({canonical}) already exists"),
                    });
                }
                // Journal the table's NEW full index set before building,
                // like the FD-set DDL path: recovery and replicas replay
                // the set and rebuild from their own rows.
                if let Some(backend) = &mut self.backend {
                    let mut cols: Vec<String> = self
                        .indexes
                        .get(table)
                        .map(|t| t.keys().cloned().collect())
                        .unwrap_or_default();
                    cols.push(canonical.clone());
                    cols.sort();
                    backend
                        .set_indexes(table, &cols)
                        .map_err(|message| SqlError::Backend { message })?;
                }
                let built = ColumnIndex::build(rel, attr);
                self.indexes.entry(table.clone()).or_default().insert(canonical.clone(), built);
                Ok(QueryResult::IndexCreated { table: table.clone(), column: canonical })
            }
            Statement::DropIndex { table, column } => {
                let rel = self.catalog.get(table)?;
                let attr = rel.schema().resolve(column)?;
                let canonical = rel.schema().fields()[attr.index()].name.clone();
                if !self.indexes.get(table).is_some_and(|t| t.contains_key(&canonical)) {
                    return Err(SqlError::Eval {
                        message: format!("no index on {table}({canonical})"),
                    });
                }
                if let Some(backend) = &mut self.backend {
                    let cols: Vec<String> =
                        self.indexes[table].keys().filter(|c| **c != canonical).cloned().collect();
                    backend
                        .set_indexes(table, &cols)
                        .map_err(|message| SqlError::Backend { message })?;
                }
                self.indexes.get_mut(table).expect("checked above").remove(&canonical);
                Ok(QueryResult::IndexDropped { table: table.clone(), column: canonical })
            }
            Statement::Explain(inner) => {
                let headers = ["operator", "detail"].map(String::from).to_vec();
                let rows = self.explain_rows(inner)?;
                Ok(QueryResult::Rows(build_result(headers, rows)?))
            }
            Statement::ExplainAnalyze(inner) => {
                // Collect stage timings around the inner statement; the
                // recursion re-applies the read-only gate and per-verb
                // counters to the inner statement itself.
                evofd_obs::stages_begin();
                let started = std::time::Instant::now();
                let result = self.execute_stmt(inner);
                let total_ns = started.elapsed().as_nanos() as u64;
                let stages = evofd_obs::stages_take().unwrap_or_default();
                let result = result?;
                let headers = ["stage", "ms", "detail"].map(String::from).to_vec();
                let mut tuples: Vec<Vec<Value>> = stages
                    .into_iter()
                    .map(|s| {
                        vec![
                            Value::str(s.name),
                            Value::Float(s.nanos as f64 / 1e6),
                            Value::str(s.detail),
                        ]
                    })
                    .collect();
                tuples.push(vec![
                    Value::str("total"),
                    Value::Float(total_ns as f64 / 1e6),
                    Value::str(describe_result(&result)),
                ]);
                Ok(QueryResult::Rows(build_result(headers, tuples)?))
            }
            Statement::Select(sel) => {
                let rel = self.catalog.get(&sel.from)?;
                let fds = self.planner_fds(&sel.from, rel);
                Ok(QueryResult::Rows(run_select(rel, self.table_indexes(&sel.from), &fds, sel)?))
            }
        }
    }

    /// Rows of `EXPLAIN <stmt>`: the plan the statement would run with,
    /// leaf-first, without executing it.
    fn explain_rows(&self, stmt: &Statement) -> Result<Vec<Vec<Value>>> {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut push =
            |op: &str, detail: String| rows.push(vec![Value::str(op), Value::str(detail)]);
        match stmt {
            Statement::Select(sel) => {
                let rel = self.catalog.get(&sel.from)?;
                let fds = self.planner_fds(&sel.from, rel);
                let (exprs, _headers) = expand_select_list(rel, sel);
                let sel_plan =
                    plan::plan_select(rel, self.table_indexes(&sel.from), &fds, sel, &exprs)?;
                explain_match(&mut push, &sel.from, rel, &sel_plan.scan);
                let is_aggregate =
                    !sel.group_by.is_empty() || exprs.iter().any(Expr::has_aggregate);
                if is_aggregate {
                    let detail = if sel_plan.hash_group_by.is_empty() {
                        "global".to_string()
                    } else {
                        format!(
                            "GROUP BY {}",
                            sel_plan
                                .hash_group_by
                                .iter()
                                .map(plan::render_expr)
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    };
                    push("Aggregate", detail);
                    if let Some(h) = &sel.having {
                        push("Having", plan::render_expr(h));
                    }
                }
                push("Project", format!("{} exprs", exprs.len()));
                if sel.distinct {
                    let detail = match &sel_plan.distinct_key {
                        None => "all output columns".to_string(),
                        Some(pos) => format!(
                            "key columns {}",
                            pos.iter().map(usize::to_string).collect::<Vec<_>>().join(", ")
                        ),
                    };
                    push("Distinct", detail);
                }
                if !sel.order_by.is_empty() {
                    push(
                        "Sort",
                        sel.order_by
                            .iter()
                            .map(|k| {
                                format!(
                                    "{}{}",
                                    plan::render_expr(&k.expr),
                                    if k.desc { " DESC" } else { "" }
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", "),
                    );
                }
                if let Some(limit) = sel.limit {
                    push("Limit", limit.to_string());
                }
                for rw in &sel_plan.rewrites {
                    push(&format!("Rewrite[{}]", rw.kind), rw.detail.clone());
                }
            }
            Statement::Delete { table, filter } => {
                let rel = self.catalog.get(table)?;
                let fds = self.planner_fds(table, rel);
                let (match_plan, rewrites) = plan::plan_match_with_rewrites(
                    rel,
                    self.table_indexes(table),
                    &fds,
                    filter.as_ref(),
                )?;
                explain_match(&mut push, table, rel, &match_plan);
                push("Delete", table.clone());
                for rw in &rewrites {
                    push(&format!("Rewrite[{}]", rw.kind), rw.detail.clone());
                }
            }
            Statement::Update { table, sets, filter } => {
                let rel = self.catalog.get(table)?;
                let fds = self.planner_fds(table, rel);
                let (match_plan, rewrites) = plan::plan_match_with_rewrites(
                    rel,
                    self.table_indexes(table),
                    &fds,
                    filter.as_ref(),
                )?;
                explain_match(&mut push, table, rel, &match_plan);
                push(
                    "Update",
                    format!(
                        "{table} SET {}",
                        sets.iter().map(|(c, _)| c.as_str()).collect::<Vec<_>>().join(", ")
                    ),
                );
                for rw in &rewrites {
                    push(&format!("Rewrite[{}]", rw.kind), rw.detail.clone());
                }
            }
            other => push("Statement", statement_verb(other).to_string()),
        }
        Ok(rows)
    }

    /// The attached FD catalog, or the canonical "needs tracked FDs"
    /// error for plain in-memory engines.
    fn require_fd_provider(&self, what: &str) -> Result<&dyn FdInfoProvider> {
        match &self.fd_provider {
            Some(p) => Ok(p.as_ref()),
            None => Err(SqlError::Eval {
                message: format!(
                    "{what} needs an engine with tracked FDs (durable or replica mode)"
                ),
            }),
        }
    }

    /// Journal one value-level mutation batch through the durable backend
    /// (no-op without one). The caller then applies the SAME batch to the
    /// catalog through the ordinary in-memory path, keeping durable
    /// mutation O(changed) — the backend never re-materialises the table.
    fn journal_mutation(
        &mut self,
        table: &str,
        inserts: &[Vec<Value>],
        deletes: &[usize],
    ) -> Result<()> {
        let Some(backend) = &mut self.backend else { return Ok(()) };
        // The table must be known to the engine before we touch the
        // backend, so unknown-table errors match the in-memory path.
        self.catalog.get(table)?;
        backend
            .apply_mutation(table, inserts.to_vec(), deletes.to_vec())
            .map_err(|message| SqlError::Backend { message })
    }

    /// `SET name = value`.
    fn set_variable(&mut self, name: &str, value: &Expr) -> Result<QueryResult> {
        match name {
            "compact_threshold" => {
                let v = eval_const(value)?;
                let t = v.as_f64().ok_or_else(|| SqlError::Eval {
                    message: format!("compact_threshold needs a number, got {v}"),
                })?;
                if !(t > 0.0 && t <= 1.0) {
                    return Err(SqlError::Eval {
                        message: format!("compact_threshold must be in (0, 1], got {t}"),
                    });
                }
                self.settings.compact_threshold = t;
                if let Some(backend) = &mut self.backend {
                    backend.set_compact_threshold(t);
                }
                Ok(QueryResult::SetVar { name: name.to_string(), value: t.to_string() })
            }
            other => Err(SqlError::Eval { message: format!("unknown setting `{other}`") }),
        }
    }
}

/// Evaluate a literal-only expression (INSERT values).
fn eval_const(expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Neg(inner) => match eval_const(inner)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(SqlError::Eval { message: format!("cannot negate {other}") }),
        },
        _ => Err(SqlError::Eval { message: "INSERT values must be literals".into() }),
    }
}

/// SQL comparison: numeric types compare numerically; same-type values
/// compare naturally; NULL involvement yields `None` (unknown).
fn sql_compare(a: &Value, b: &Value) -> Result<Option<Ordering>> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(None),
        (Value::Int(_), Value::Float(_))
        | (Value::Float(_), Value::Int(_))
        | (Value::Int(_), Value::Int(_))
        | (Value::Float(_), Value::Float(_)) => {
            let (x, y) = (a.as_f64().expect("numeric"), b.as_f64().expect("numeric"));
            Ok(Some(x.total_cmp(&y)))
        }
        (Value::Str(x), Value::Str(y)) => Ok(Some(x.cmp(y))),
        (Value::Bool(x), Value::Bool(y)) => Ok(Some(x.cmp(y))),
        _ => Err(SqlError::Eval { message: format!("cannot compare {a} with {b}") }),
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            BinOp::Add => Ok(Value::Int(x.wrapping_add(*y))),
            BinOp::Sub => Ok(Value::Int(x.wrapping_sub(*y))),
            BinOp::Mul => Ok(Value::Int(x.wrapping_mul(*y))),
            BinOp::Div => {
                if *y == 0 {
                    Err(SqlError::Eval { message: "division by zero".into() })
                } else {
                    Ok(Value::Float(*x as f64 / *y as f64))
                }
            }
            BinOp::Mod => {
                if *y == 0 {
                    Err(SqlError::Eval { message: "modulo by zero".into() })
                } else {
                    Ok(Value::Int(x % y))
                }
            }
            _ => unreachable!("arith called with non-arithmetic op"),
        },
        _ => {
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(SqlError::Eval {
                        message: format!("arithmetic on non-numeric values {a}, {b}"),
                    })
                }
            };
            match op {
                BinOp::Add => Ok(Value::Float(x + y)),
                BinOp::Sub => Ok(Value::Float(x - y)),
                BinOp::Mul => Ok(Value::Float(x * y)),
                BinOp::Div => {
                    if y == 0.0 {
                        Err(SqlError::Eval { message: "division by zero".into() })
                    } else {
                        Ok(Value::Float(x / y))
                    }
                }
                BinOp::Mod => Err(SqlError::Eval { message: "modulo needs integers".into() }),
                _ => unreachable!("arith called with non-arithmetic op"),
            }
        }
    }
}

/// Three-valued logic helpers: Bool / Null / error.
pub(crate) fn truthy(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(SqlError::Eval { message: format!("expected boolean, got {other}") }),
    }
}

/// Row-context evaluation (no aggregates).
pub(crate) fn eval_row(expr: &Expr, rel: &Relation, row: usize) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => {
            let attr = rel.schema().resolve(name)?;
            Ok(rel.column(attr).value_at(row))
        }
        Expr::Neg(inner) => match eval_row(inner, rel, row)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(SqlError::Eval { message: format!("cannot negate {other}") }),
        },
        Expr::Not(inner) => {
            let v = eval_row(inner, rel, row)?;
            Ok(match truthy(&v)? {
                None => Value::Null,
                Some(b) => Value::Bool(!b),
            })
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_row(expr, rel, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval_row(expr, rel, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval_row(item, rel, row)?;
                match sql_compare(&v, &w)? {
                    Some(Ordering::Equal) => return Ok(Value::Bool(!negated)),
                    None => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::And | BinOp::Or => {
                let l = truthy(&eval_row(lhs, rel, row)?)?;
                let r = truthy(&eval_row(rhs, rel, row)?)?;
                let out = match op {
                    BinOp::And => match (l, r) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    },
                    _ => match (l, r) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    },
                };
                Ok(out.map_or(Value::Null, Value::Bool))
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let a = eval_row(lhs, rel, row)?;
                let b = eval_row(rhs, rel, row)?;
                Ok(match sql_compare(&a, &b)? {
                    None => Value::Null,
                    Some(ord) => Value::Bool(match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::Ne => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::Le => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::Ge => ord != Ordering::Less,
                        _ => unreachable!(),
                    }),
                })
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let a = eval_row(lhs, rel, row)?;
                let b = eval_row(rhs, rel, row)?;
                arith(*op, &a, &b)
            }
        },
        Expr::Aggregate { .. } => {
            Err(SqlError::Eval { message: "aggregate in row context (missing GROUP BY?)".into() })
        }
    }
}

/// Compute one aggregate over a set of rows.
fn eval_aggregate(
    func: AggFunc,
    distinct: bool,
    args: &[Expr],
    rel: &Relation,
    rows: &[usize],
) -> Result<Value> {
    // COUNT(*)
    if args.is_empty() {
        if func != AggFunc::Count {
            return Err(SqlError::Eval { message: format!("{}(*) is not valid", func.name()) });
        }
        return Ok(Value::Int(rows.len() as i64));
    }
    // Materialise argument tuples, skipping rows with any NULL (SQL).
    let mut tuples: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
    'rows: for &r in rows {
        let mut tuple = Vec::with_capacity(args.len());
        for a in args {
            let v = eval_row(a, rel, r)?;
            if v.is_null() {
                continue 'rows;
            }
            tuple.push(v);
        }
        tuples.push(tuple);
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        tuples.retain(|t| seen.insert(t.clone()));
    }
    match func {
        AggFunc::Count => Ok(Value::Int(tuples.len() as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            if args.len() != 1 {
                return Err(SqlError::Eval {
                    message: format!("{} takes one argument", func.name()),
                });
            }
            if tuples.is_empty() {
                return Ok(Value::Null);
            }
            let mut all_int = true;
            let mut sum = 0.0;
            let mut isum: i64 = 0;
            for t in &tuples {
                match &t[0] {
                    Value::Int(i) => {
                        isum = isum.wrapping_add(*i);
                        sum += *i as f64;
                    }
                    Value::Float(f) => {
                        all_int = false;
                        sum += f;
                    }
                    other => {
                        return Err(SqlError::Eval {
                            message: format!("{} of non-numeric {other}", func.name()),
                        })
                    }
                }
            }
            if func == AggFunc::Avg {
                Ok(Value::Float(sum / tuples.len() as f64))
            } else if all_int {
                Ok(Value::Int(isum))
            } else {
                Ok(Value::Float(sum))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            if args.len() != 1 {
                return Err(SqlError::Eval {
                    message: format!("{} takes one argument", func.name()),
                });
            }
            let mut best: Option<Value> = None;
            for t in tuples {
                let v = t.into_iter().next().expect("one arg");
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match sql_compare(&v, &b)? {
                            Some(Ordering::Less) => func == AggFunc::Min,
                            Some(Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

/// Group-context evaluation: aggregates computed over the group's rows,
/// plain columns taken from the group's representative row (must be
/// functionally constant — guaranteed when they appear in GROUP BY).
pub(crate) fn eval_group(
    expr: &Expr,
    rel: &Relation,
    rows: &[usize],
    group_by: &[Expr],
) -> Result<Value> {
    if group_by.iter().any(|g| g == expr) {
        let rep = rows
            .first()
            .copied()
            .ok_or_else(|| SqlError::Eval { message: "empty group".into() })?;
        return eval_row(expr, rel, rep);
    }
    match expr {
        Expr::Aggregate { func, distinct, args } => {
            eval_aggregate(*func, *distinct, args, rel, rows)
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => Err(SqlError::Eval {
            message: format!("column `{name}` must appear in GROUP BY or an aggregate"),
        }),
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let l = eval_group(lhs, rel, rows, group_by)?;
                let r = eval_group(rhs, rel, rows, group_by)?;
                arith(*op, &l, &r)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = eval_group(lhs, rel, rows, group_by)?;
                let r = eval_group(rhs, rel, rows, group_by)?;
                Ok(match sql_compare(&l, &r)? {
                    None => Value::Null,
                    Some(ord) => Value::Bool(match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::Ne => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::Le => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::Ge => ord != Ordering::Less,
                        _ => unreachable!(),
                    }),
                })
            }
            BinOp::And | BinOp::Or => {
                let l = truthy(&eval_group(lhs, rel, rows, group_by)?)?;
                let r = truthy(&eval_group(rhs, rel, rows, group_by)?)?;
                let out = match op {
                    BinOp::And => match (l, r) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    },
                    _ => match (l, r) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    },
                };
                Ok(out.map_or(Value::Null, Value::Bool))
            }
        },
        Expr::Not(inner) => {
            let v = eval_group(inner, rel, rows, group_by)?;
            Ok(match truthy(&v)? {
                None => Value::Null,
                Some(b) => Value::Bool(!b),
            })
        }
        Expr::Neg(inner) => match eval_group(inner, rel, rows, group_by)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(SqlError::Eval { message: format!("cannot negate {other}") }),
        },
        _ => Err(SqlError::Eval { message: "unsupported expression in aggregate query".into() }),
    }
}

fn infer_dtype(values: &[Vec<Value>], col: usize) -> DataType {
    let mut dtype: Option<DataType> = None;
    for row in values {
        match (&row[col], dtype) {
            (Value::Null, _) => {}
            (v, None) => dtype = v.dtype(),
            (Value::Int(_), Some(DataType::Float)) => {}
            (Value::Float(_), Some(DataType::Int)) => dtype = Some(DataType::Float),
            (v, Some(t)) if v.dtype() == Some(t) => {}
            // Mixed incompatible types: degrade to TEXT.
            _ => return DataType::Str,
        }
    }
    dtype.unwrap_or(DataType::Str)
}

fn build_result(headers: Vec<String>, mut rows: Vec<Vec<Value>>) -> Result<Relation> {
    let n_cols = headers.len();
    // Unique-ify duplicate headers (e.g. two `expr` columns).
    let mut seen: HashMap<String, usize> = HashMap::new();
    let names: Vec<String> = headers
        .into_iter()
        .map(|h| {
            let n = seen.entry(h.clone()).or_insert(0);
            *n += 1;
            if *n == 1 {
                h
            } else {
                format!("{h}_{n}")
            }
        })
        .collect();
    // Degrade incompatible cells to strings when the column became TEXT.
    let dtypes: Vec<DataType> = (0..n_cols).map(|c| infer_dtype(&rows, c)).collect();
    for row in &mut rows {
        for (c, v) in row.iter_mut().enumerate() {
            if dtypes[c] == DataType::Str && !v.is_null() && v.dtype() != Some(DataType::Str) {
                *v = Value::str(v.to_string());
            }
        }
    }
    let fields: Vec<Field> =
        names.iter().zip(&dtypes).map(|(n, t)| Field::new(n.clone(), *t)).collect();
    let schema = Schema::new("result", fields)?.into_shared();
    Ok(Relation::from_rows(schema, rows)?)
}

/// The statement's verb, as the `sql_statements_total` label.
fn statement_verb(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::CreateTable { .. } => "create-table",
        Statement::Insert { .. } => "insert",
        Statement::Delete { .. } => "delete",
        Statement::Update { .. } => "update",
        Statement::Set { .. } => "set",
        Statement::ShowFds { .. } => "show-fds",
        Statement::CheckFd { .. } => "check-fd",
        Statement::AlterFd { .. } => "alter-fd",
        Statement::SuggestRepairs { .. } => "suggest-repairs",
        Statement::AcceptRepair { .. } => "accept-repair",
        Statement::ShowStats { .. } => "show-stats",
        Statement::CreateAlert { .. } => "create-alert",
        Statement::DropAlert { .. } => "drop-alert",
        Statement::ShowAlerts { .. } => "show-alerts",
        Statement::ShowDriftHistory { .. } => "show-drift-history",
        Statement::CreateIndex { .. } => "create-index",
        Statement::DropIndex { .. } => "drop-index",
        Statement::Explain(_) => "explain",
        Statement::ExplainAnalyze(_) => "explain-analyze",
        Statement::Select(_) => "select",
    }
}

/// A one-line summary of an inner result for the EXPLAIN ANALYZE
/// `total` row.
fn describe_result(result: &QueryResult) -> String {
    match result {
        QueryResult::Rows(rel) => format!("{} rows", rel.row_count()),
        QueryResult::Created { table } => format!("created {table}"),
        QueryResult::Inserted { rows, .. } => format!("inserted {rows}"),
        QueryResult::Deleted { rows, .. } => format!("deleted {rows}"),
        QueryResult::Updated { rows, .. } => format!("updated {rows}"),
        QueryResult::SetVar { name, value } => format!("{name} = {value}"),
        QueryResult::AlteredFds { tracked, .. } => format!("{tracked} FDs tracked"),
        QueryResult::RepairAccepted { evolved, .. } => format!("evolved to {evolved}"),
        QueryResult::IndexCreated { table, column } => format!("indexed {table}({column})"),
        QueryResult::IndexDropped { table, column } => {
            format!("dropped index {table}({column})")
        }
        QueryResult::AlertsChanged { installed, rules, .. } => {
            format!("{} alert, {rules} rules", if *installed { "installed" } else { "dropped" })
        }
    }
}

/// Count the chosen access path in the planner metrics.
fn record_access(access: &Access) {
    match access {
        Access::SeqScan => evofd_obs::metrics::PLANNER_SEQ_SCANS_TOTAL.inc(),
        Access::IndexProbe { .. } => evofd_obs::metrics::PLANNER_INDEX_PROBES_TOTAL.inc(),
    }
}

/// Render a match plan's access + filter rows for EXPLAIN.
fn explain_match(
    push: &mut impl FnMut(&str, String),
    table: &str,
    rel: &Relation,
    match_plan: &MatchPlan,
) {
    match &match_plan.access {
        Access::SeqScan => push("SeqScan", format!("{table} ({} rows)", rel.row_count())),
        Access::IndexProbe { column, value, est_rows, unique, .. } => {
            let unique = match unique {
                None => String::new(),
                Some(UniqueVia::Stats) => ", unique (stats)".to_string(),
                Some(UniqueVia::Fd(via)) => format!(", unique (FD {via})"),
            };
            push("IndexProbe", format!("{table}.{column} = {value} (est {est_rows} rows{unique})"));
        }
    }
    if !match_plan.steps.is_empty() {
        push(
            "Filter",
            match_plan.steps.iter().map(plan::render_step).collect::<Vec<_>>().join("; "),
        );
    }
}

/// Expand the select list's wildcard into `(exprs, output headers)`.
fn expand_select_list(rel: &Relation, sel: &Select) -> (Vec<Expr>, Vec<String>) {
    let mut exprs: Vec<Expr> = Vec::new();
    let mut headers: Vec<String> = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for f in rel.schema().fields() {
                    exprs.push(Expr::Column(f.name.clone()));
                    headers.push(f.name.clone());
                }
            }
            SelectItem::Expr { expr, alias } => {
                headers.push(alias.clone().unwrap_or_else(|| expr.header()));
                exprs.push(expr.clone());
            }
        }
    }
    (exprs, headers)
}

/// Stable ORDER BY (NULLs first, like the storage `Value` order) + LIMIT.
fn sort_and_limit(out: &mut Vec<(Vec<Value>, Vec<Value>)>, sel: &Select) {
    if !sel.order_by.is_empty() {
        let _stage = evofd_obs::stage("select.sort");
        let desc: Vec<bool> = sel.order_by.iter().map(|k| k.desc).collect();
        out.sort_by(|(_, ka), (_, kb)| {
            for (i, (a, b)) in ka.iter().zip(kb.iter()).enumerate() {
                let ord = a.cmp(b);
                let ord = if desc[i] { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    if let Some(limit) = sel.limit {
        out.truncate(limit);
    }
}

/// Run a SELECT through the planner and the Volcano operator pipeline.
fn run_select(
    rel: &Relation,
    indexes: &BTreeMap<String, ColumnIndex>,
    fds: &[Fd],
    sel: &Select,
) -> Result<Relation> {
    let (exprs, headers) = expand_select_list(rel, sel);
    let sel_plan = plan::plan_select(rel, indexes, fds, sel, &exprs)?;
    record_access(&sel_plan.scan.access);
    let timed = evofd_obs::stages_active();
    let is_aggregate = !sel.group_by.is_empty() || exprs.iter().any(Expr::has_aggregate);

    let source = ops::build_row_ops(rel, indexes, &sel_plan.scan, timed);
    let mut out: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    let (input_rows, row_nanos, chain) = if is_aggregate {
        let mut agg = ops::Aggregate::new(
            rel,
            source,
            &exprs,
            &sel.order_by,
            &sel_plan.hash_group_by,
            &sel.group_by,
            sel.having.as_ref(),
            timed,
        );
        while let Some(t) = agg.next_tuple()? {
            out.push(t);
        }
        (agg.input_rows(), agg.child_nanos(), agg.stats())
    } else {
        let mut proj = ops::Project::new(rel, source, &exprs, &sel.order_by, timed);
        while let Some(t) = proj.next_tuple()? {
            out.push(t);
        }
        (proj.input_rows(), proj.child_nanos(), proj.stats())
    };
    if timed {
        // The umbrella stages keep their historical names and details;
        // the per-operator breakdown rides along as `op.*` rows.
        evofd_obs::record_stage(
            "select.filter",
            row_nanos,
            format!("{input_rows} of {} rows", rel.row_count()),
        );
        for s in &chain {
            evofd_obs::record_stage(
                format!("op.{}", s.name),
                s.nanos,
                format!("{} rows; {}", s.rows, s.detail),
            );
        }
        let top_nanos = chain.last().map_or(0, |s| s.nanos);
        evofd_obs::record_stage(
            "select.project",
            top_nanos.saturating_sub(row_nanos),
            format!("{} tuples{}", out.len(), if is_aggregate { ", aggregated" } else { "" }),
        );
        for rw in &sel_plan.rewrites {
            evofd_obs::record_stage(format!("rewrite.{}", rw.kind), 0, rw.detail.clone());
        }
    }

    // DISTINCT — on the FD-reduced key positions when the planner derived
    // them (rows agreeing there agree everywhere, so the surviving first
    // occurrences are byte-identical to full-tuple dedup).
    if sel.distinct {
        let _stage = evofd_obs::stage("select.distinct");
        let mut seen = std::collections::HashSet::new();
        match &sel_plan.distinct_key {
            None => out.retain(|(tuple, _)| seen.insert(tuple.clone())),
            Some(pos) => out.retain(|(tuple, _)| {
                seen.insert(pos.iter().map(|&i| tuple[i].clone()).collect::<Vec<_>>())
            }),
        }
    }

    sort_and_limit(&mut out, sel);
    build_result(headers, out.into_iter().map(|(t, _)| t).collect())
}

/// The pre-planner reference evaluator: straight row loop, no indexes,
/// no FD rewrites, no code comparisons. Kept as the oracle the planner
/// pipeline is property-tested against (byte-identical results).
pub fn naive_select(rel: &Relation, sel: &Select) -> Result<Relation> {
    // 1. WHERE
    let rows = {
        let mut stage = evofd_obs::stage("select.filter");
        let mut rows: Vec<usize> = Vec::with_capacity(rel.row_count());
        for r in 0..rel.row_count() {
            let keep = match &sel.filter {
                None => true,
                Some(f) => truthy(&eval_row(f, rel, r)?)? == Some(true),
            };
            if keep {
                rows.push(r);
            }
        }
        stage.detail(format!("{} of {} rows", rows.len(), rel.row_count()));
        rows
    };

    // 2. Expand wildcard.
    let (exprs, headers) = expand_select_list(rel, sel);

    let is_aggregate = !sel.group_by.is_empty() || exprs.iter().any(Expr::has_aggregate);

    // 3. Produce output tuples (plus ORDER BY keys evaluated in the same
    //    context).
    let mut project_stage = evofd_obs::stage("select.project");
    let mut out: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    if is_aggregate {
        // Group rows by the GROUP BY key tuple.
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for &r in &rows {
            let key: Vec<Value> =
                sel.group_by.iter().map(|g| eval_row(g, rel, r)).collect::<Result<_>>()?;
            let slot = *index.entry(key.clone()).or_insert_with(|| {
                groups.push((key, Vec::new()));
                groups.len() - 1
            });
            groups[slot].1.push(r);
        }
        if sel.group_by.is_empty() && groups.is_empty() {
            // Global aggregate over zero rows still yields one output row.
            groups.push((Vec::new(), Vec::new()));
        }
        if let Some(having) = &sel.having {
            let mut kept = Vec::with_capacity(groups.len());
            for (key, group_rows) in groups {
                if truthy(&eval_group(having, rel, &group_rows, &sel.group_by)?)? == Some(true) {
                    kept.push((key, group_rows));
                }
            }
            groups = kept;
        }
        for (_, group_rows) in &groups {
            let tuple: Vec<Value> = exprs
                .iter()
                .map(|e| eval_group(e, rel, group_rows, &sel.group_by))
                .collect::<Result<_>>()?;
            let keys: Vec<Value> = sel
                .order_by
                .iter()
                .map(|k| eval_group(&k.expr, rel, group_rows, &sel.group_by))
                .collect::<Result<_>>()?;
            out.push((tuple, keys));
        }
    } else {
        for &r in &rows {
            let tuple: Vec<Value> =
                exprs.iter().map(|e| eval_row(e, rel, r)).collect::<Result<_>>()?;
            let keys: Vec<Value> =
                sel.order_by.iter().map(|k| eval_row(&k.expr, rel, r)).collect::<Result<_>>()?;
            out.push((tuple, keys));
        }
    }
    project_stage.detail(format!(
        "{} tuples{}",
        out.len(),
        if is_aggregate { ", aggregated" } else { "" }
    ));
    drop(project_stage);

    // 4. DISTINCT
    if sel.distinct {
        let _stage = evofd_obs::stage("select.distinct");
        let mut seen = std::collections::HashSet::new();
        out.retain(|(tuple, _)| seen.insert(tuple.clone()));
    }

    // 5+6. ORDER BY and LIMIT.
    sort_and_limit(&mut out, sel);

    build_result(headers, out.into_iter().map(|(t, _)| t).collect())
}

/// Register a relation in an engine under its schema name and return the
/// engine (convenience for tests and examples).
pub fn engine_with(rels: impl IntoIterator<Item = Relation>) -> Result<Engine> {
    let mut cat = Catalog::new();
    for r in rels {
        cat.insert(r)?;
    }
    Ok(Engine::with_catalog(cat))
}

/// Shared-schema helper used by the doc examples.
pub fn schema_of(rel: &Relation) -> Arc<Schema> {
    rel.schema_arc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.run_script(
            "CREATE TABLE t (a INT, b TEXT, c FLOAT);
             INSERT INTO t VALUES (1, 'x', 1.5), (2, 'x', 2.5), (2, 'y', NULL), (NULL, 'z', 4.0);",
        )
        .unwrap();
        e
    }

    #[test]
    fn create_insert_select_star() {
        let mut e = engine();
        let rel = e.query("SELECT * FROM t").unwrap();
        assert_eq!(rel.row_count(), 4);
        assert_eq!(rel.arity(), 3);
        assert_eq!(rel.row(0), vec![Value::Int(1), Value::str("x"), Value::Float(1.5)]);
    }

    #[test]
    fn count_distinct_matches_paper_query_shape() {
        let mut e = engine();
        let v = e.query_scalar("SELECT COUNT(DISTINCT a, b) FROM t").unwrap();
        // (1,x), (2,x), (2,y); the (NULL, z) row is skipped per SQL.
        assert_eq!(v, Value::Int(3));
        let v = e.query_scalar("SELECT COUNT(DISTINCT b) FROM t").unwrap();
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn count_star_and_count_column() {
        let mut e = engine();
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(4));
        assert_eq!(e.query_scalar("SELECT COUNT(a) FROM t").unwrap(), Value::Int(3));
        assert_eq!(e.query_scalar("SELECT COUNT(c) FROM t").unwrap(), Value::Int(3));
    }

    #[test]
    fn where_three_valued_logic() {
        let mut e = engine();
        // a > 1 is NULL for the NULL row → filtered out.
        let rel = e.query("SELECT b FROM t WHERE a > 1").unwrap();
        assert_eq!(rel.row_count(), 2);
        // IS NULL picks it up.
        let rel = e.query("SELECT b FROM t WHERE a IS NULL").unwrap();
        assert_eq!(rel.row_count(), 1);
        assert_eq!(rel.row(0)[0], Value::str("z"));
        // NOT (NULL) is NULL → filtered.
        let rel = e.query("SELECT b FROM t WHERE NOT (a > 1)").unwrap();
        assert_eq!(rel.row_count(), 1);
    }

    #[test]
    fn group_by_aggregates() {
        let mut e = engine();
        let rel =
            e.query("SELECT b, COUNT(*) AS n, SUM(a) AS s FROM t GROUP BY b ORDER BY b").unwrap();
        assert_eq!(rel.row_count(), 3);
        // x: 2 rows, sum 3; y: 1 row sum 2; z: 1 row sum NULL.
        assert_eq!(rel.row(0), vec![Value::str("x"), Value::Int(2), Value::Int(3)]);
        assert_eq!(rel.row(1), vec![Value::str("y"), Value::Int(1), Value::Int(2)]);
        assert_eq!(rel.row(2), vec![Value::str("z"), Value::Int(1), Value::Null]);
    }

    #[test]
    fn min_max_avg() {
        let mut e = engine();
        assert_eq!(e.query_scalar("SELECT MIN(a) FROM t").unwrap(), Value::Int(1));
        assert_eq!(e.query_scalar("SELECT MAX(c) FROM t").unwrap(), Value::Float(4.0));
        let avg = e.query_scalar("SELECT AVG(a) FROM t").unwrap();
        assert!((avg.as_f64().unwrap() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_select() {
        let mut e = engine();
        let rel = e.query("SELECT DISTINCT b FROM t ORDER BY b").unwrap();
        assert_eq!(rel.row_count(), 3);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let mut e = engine();
        let rel = e.query("SELECT a FROM t WHERE a IS NOT NULL ORDER BY a DESC LIMIT 2").unwrap();
        assert_eq!(rel.row(0)[0], Value::Int(2));
        assert_eq!(rel.row_count(), 2);
    }

    #[test]
    fn arithmetic_and_aliases() {
        let mut e = engine();
        let rel = e.query("SELECT a + 10 AS shifted, a / 2 FROM t WHERE a = 2").unwrap();
        assert_eq!(rel.schema().attr_name(evofd_storage::AttrId(0)), "shifted");
        assert_eq!(rel.row(0)[0], Value::Int(12));
        assert_eq!(rel.row(0)[1], Value::Float(1.0));
    }

    #[test]
    fn in_list() {
        let mut e = engine();
        let rel = e.query("SELECT b FROM t WHERE b IN ('x', 'z') ORDER BY b").unwrap();
        assert_eq!(rel.row_count(), 3);
        let rel = e.query("SELECT b FROM t WHERE b NOT IN ('x', 'z')").unwrap();
        assert_eq!(rel.row_count(), 1);
    }

    #[test]
    fn errors() {
        let mut e = engine();
        assert!(matches!(e.query("SELECT nope FROM t"), Err(SqlError::Storage(_))));
        assert!(matches!(e.query("SELECT * FROM missing"), Err(SqlError::Storage(_))));
        assert!(matches!(e.query("SELECT a FROM t WHERE b"), Err(SqlError::Eval { .. })));
        // b not in GROUP BY:
        assert!(matches!(
            e.query("SELECT b, COUNT(*) FROM t GROUP BY a"),
            Err(SqlError::Eval { .. })
        ));
        // not a scalar:
        assert!(matches!(e.query_scalar("SELECT a FROM t"), Err(SqlError::Eval { .. })));
        assert!(matches!(e.query("SELECT 1 / 0 FROM t"), Err(SqlError::Eval { .. })));
    }

    #[test]
    fn insert_type_checked() {
        let mut e = engine();
        let err = e.execute("INSERT INTO t VALUES ('not an int', 'b', 1.0)").unwrap_err();
        assert!(matches!(err, SqlError::Storage(_)));
        // Table unchanged after failed insert.
        assert_eq!(e.query("SELECT * FROM t").unwrap().row_count(), 4);
    }

    #[test]
    fn delete_with_where() {
        let mut e = engine();
        let QueryResult::Deleted { table, rows } =
            e.execute("DELETE FROM t WHERE b = 'x'").unwrap()
        else {
            panic!("expected Deleted")
        };
        assert_eq!(table, "t");
        assert_eq!(rows, 2);
        let rel = e.query("SELECT * FROM t").unwrap();
        assert_eq!(rel.row_count(), 2);
        // Three-valued logic: NULL predicates do not match.
        let QueryResult::Deleted { rows, .. } = e.execute("DELETE FROM t WHERE a > 0").unwrap()
        else {
            panic!()
        };
        assert_eq!(rows, 1, "the NULL-a row survives a > 0");
        assert_eq!(e.query("SELECT * FROM t").unwrap().row_count(), 1);
    }

    #[test]
    fn update_with_where_rewrites_matching_rows() {
        let mut e = engine();
        let QueryResult::Updated { table, rows } =
            e.execute("UPDATE t SET b = 'w' WHERE b = 'x'").unwrap()
        else {
            panic!("expected Updated")
        };
        assert_eq!(table, "t");
        assert_eq!(rows, 2);
        assert_eq!(e.query("SELECT * FROM t WHERE b = 'x'").unwrap().row_count(), 0);
        assert_eq!(e.query("SELECT * FROM t WHERE b = 'w'").unwrap().row_count(), 2);
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(4));
    }

    #[test]
    fn update_reads_old_values() {
        let mut e = engine();
        // Swap-flavoured assignment: every new value comes from the old row.
        e.execute("UPDATE t SET a = a + 10 WHERE a IS NOT NULL").unwrap();
        let rel = e.query("SELECT a FROM t WHERE a IS NOT NULL ORDER BY a").unwrap();
        assert_eq!(rel.row(0)[0], Value::Int(11));
        assert_eq!(rel.row(1)[0], Value::Int(12));
        assert_eq!(rel.row(2)[0], Value::Int(12));
    }

    #[test]
    fn update_without_where_touches_every_row() {
        let mut e = engine();
        let QueryResult::Updated { rows, .. } = e.execute("UPDATE t SET b = 'all'").unwrap() else {
            panic!()
        };
        assert_eq!(rows, 4);
        assert_eq!(e.query_scalar("SELECT COUNT(DISTINCT b) FROM t").unwrap(), Value::Int(1));
    }

    #[test]
    fn update_multi_column_and_null() {
        let mut e = engine();
        e.execute("UPDATE t SET b = 'gone', c = NULL WHERE a = 1").unwrap();
        let rel = e.query("SELECT b, c FROM t WHERE a = 1").unwrap();
        assert_eq!(rel.row(0), vec![Value::str("gone"), Value::Null]);
    }

    #[test]
    fn update_is_one_atomic_batch() {
        let mut e = engine();
        // The type error only occurs on the second matching row (a = 2,
        // b = 'y' would set int column a to a string via c NULL? no —
        // force it: set a to a non-int literal for rows b='x').
        let err = e.execute("UPDATE t SET a = 'oops' WHERE b = 'x'").unwrap_err();
        assert!(matches!(err, SqlError::Eval { .. }), "{err:?}");
        // Nothing changed: the whole batch was rejected.
        assert_eq!(e.query("SELECT * FROM t WHERE b = 'x'").unwrap().row_count(), 2);
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(4));
    }

    #[test]
    fn update_errors_leave_table_intact() {
        let mut e = engine();
        assert!(matches!(e.execute("UPDATE missing SET a = 1"), Err(SqlError::Storage(_))));
        assert!(e.execute("UPDATE t SET nope = 1").is_err());
        assert!(e.execute("UPDATE t SET a = 1 WHERE nope = 2").is_err());
        assert_eq!(e.query("SELECT * FROM t").unwrap().row_count(), 4);
    }

    #[test]
    fn update_rejects_duplicate_set_columns() {
        let mut e = engine();
        let err = e.execute("UPDATE t SET a = 1, a = 2").unwrap_err();
        assert!(matches!(err, SqlError::Eval { .. }), "{err:?}");
        assert!(err.to_string().contains("assigned twice"), "{err}");
        assert_eq!(e.query("SELECT * FROM t WHERE a = 1").unwrap().row_count(), 1, "unchanged");
    }

    #[test]
    fn update_zero_matches_is_a_noop() {
        let mut e = engine();
        let QueryResult::Updated { rows, .. } =
            e.execute("UPDATE t SET b = 'z' WHERE a > 99").unwrap()
        else {
            panic!()
        };
        assert_eq!(rows, 0);
        assert_eq!(e.query("SELECT * FROM t").unwrap().row_count(), 4);
    }

    #[test]
    fn delete_without_where_empties_table() {
        let mut e = engine();
        let QueryResult::Deleted { rows, .. } = e.execute("DELETE FROM t").unwrap() else {
            panic!()
        };
        assert_eq!(rows, 4);
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(0));
        // The schema survives: inserting again works.
        e.execute("INSERT INTO t VALUES (5, 'w', 0.5)").unwrap();
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(1));
    }

    #[test]
    fn delete_errors_leave_table_intact() {
        let mut e = engine();
        assert!(matches!(e.execute("DELETE FROM missing"), Err(SqlError::Storage(_))));
        // Bad predicate: unknown column.
        assert!(e.execute("DELETE FROM t WHERE nope = 1").is_err());
        assert_eq!(e.query("SELECT * FROM t").unwrap().row_count(), 4);
    }

    #[test]
    fn insert_mutable_path_appends_and_round_trips() {
        let mut e = engine();
        let QueryResult::Inserted { rows, .. } =
            e.execute("INSERT INTO t VALUES (7, 'q', 7.5), (8, 'q', 8.5)").unwrap()
        else {
            panic!()
        };
        assert_eq!(rows, 2);
        let rel = e.query("SELECT * FROM t WHERE b = 'q' ORDER BY a").unwrap();
        assert_eq!(rel.row_count(), 2);
        assert_eq!(rel.row(0)[0], Value::Int(7));
        // Interleaved insert/delete traffic keeps counts consistent.
        e.execute("DELETE FROM t WHERE a = 7").unwrap();
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(5));
    }

    #[test]
    fn engine_with_existing_relations() {
        let r = relation_of_strs("people", &["name"], &[&["ada"], &["alan"]]).unwrap();
        let mut e = engine_with([r]).unwrap();
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM people").unwrap(), Value::Int(2));
    }

    #[test]
    fn global_aggregate_over_empty_table() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE v (x INT)").unwrap();
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM v").unwrap(), Value::Int(0));
        assert_eq!(e.query_scalar("SELECT SUM(x) FROM v").unwrap(), Value::Null);
    }

    #[test]
    fn having_filters_groups() {
        let mut e = engine();
        // Violation-finding query: groups of b with >1 distinct a.
        let rel = e
            .query(
                "SELECT b, COUNT(DISTINCT a) AS n FROM t GROUP BY b \
                 HAVING COUNT(DISTINCT a) > 1 ORDER BY b",
            )
            .unwrap();
        assert_eq!(rel.row_count(), 1, "only b = 'x' has two distinct a");
        assert_eq!(rel.row(0)[0], Value::str("x"));
        assert_eq!(rel.row(0)[1], Value::Int(2));
    }

    #[test]
    fn having_with_boolean_logic() {
        let mut e = engine();
        let rel = e
            .query(
                "SELECT b FROM t GROUP BY b \
                 HAVING COUNT(*) >= 1 AND NOT (COUNT(*) > 1) ORDER BY b",
            )
            .unwrap();
        assert_eq!(rel.row_count(), 2, "y and z are singleton groups");
    }

    #[test]
    fn having_requires_group_by() {
        let mut e = engine();
        assert!(matches!(
            e.query("SELECT a FROM t HAVING COUNT(*) > 1"),
            Err(SqlError::Parse { .. })
        ));
    }

    #[test]
    fn set_compact_threshold_session_setting() {
        let mut e = engine();
        let QueryResult::SetVar { name, value } =
            e.execute("SET compact_threshold = 0.25").unwrap()
        else {
            panic!("expected SetVar")
        };
        assert_eq!(name, "compact_threshold");
        assert_eq!(value, "0.25");
        assert!((e.settings().compact_threshold - 0.25).abs() < 1e-12);
        // Out-of-range and unknown settings are rejected.
        assert!(e.execute("SET compact_threshold = 0").is_err());
        assert!(e.execute("SET compact_threshold = 1.5").is_err());
        assert!(e.execute("SET compact_threshold = 'lots'").is_err());
        assert!(e.execute("SET mystery_knob = 1").is_err());
        // UPDATE still works under the adjusted threshold.
        e.execute("UPDATE t SET b = 'w' WHERE b = 'x'").unwrap();
        assert_eq!(e.query("SELECT * FROM t WHERE b = 'w'").unwrap().row_count(), 2);
    }

    /// Observable state of [`MockBackend`], shared with the test through
    /// an `Arc<Mutex<…>>` so the backend can stay behind the trait object.
    #[derive(Debug, Default)]
    struct MockState {
        tables: HashMap<String, LiveRelation>,
        calls: Vec<(String, usize, Vec<usize>)>,
        threshold: Option<f64>,
        fail_next: bool,
    }

    /// An in-memory mock backend recording the engine's mutation batches
    /// and applying them through the same LiveRelation lowering the real
    /// durable store uses.
    #[derive(Debug, Default, Clone)]
    struct MockBackend {
        state: std::sync::Arc<std::sync::Mutex<MockState>>,
    }

    impl StorageBackend for MockBackend {
        fn create_table(&mut self, schema: Arc<Schema>) -> std::result::Result<(), String> {
            let mut s = self.state.lock().unwrap();
            let name = schema.name().to_string();
            s.tables.insert(name, LiveRelation::new(Relation::empty(schema)));
            Ok(())
        }

        fn apply_mutation(
            &mut self,
            table: &str,
            inserts: Vec<Vec<Value>>,
            deletes: Vec<usize>,
        ) -> std::result::Result<(), String> {
            let mut s = self.state.lock().unwrap();
            if s.fail_next {
                s.fail_next = false;
                return Err("injected backend failure".into());
            }
            s.calls.push((table.to_string(), inserts.len(), deletes.clone()));
            let live = s.tables.get_mut(table).ok_or("unknown table")?;
            // Canonical row index k = k-th live physical row.
            let physical: Vec<usize> = live.live_rows().collect();
            let deletes = deletes.iter().map(|&k| physical[k]).collect();
            let delta = Delta { inserts, deletes };
            live.apply(&delta).map_err(|e| e.to_string())?;
            Ok(())
        }

        fn set_compact_threshold(&mut self, threshold: f64) {
            self.state.lock().unwrap().threshold = Some(threshold);
        }
    }

    #[test]
    fn backend_receives_all_dml_and_serves_selects() {
        let mock = MockBackend::default();
        let state = std::sync::Arc::clone(&mock.state);
        let mut e = Engine::new();
        e.set_backend(Box::new(mock));
        assert!(e.is_durable());
        e.run_script(
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'x'), (3, 'y');
             SET compact_threshold = 0.5;
             UPDATE t SET b = 'z' WHERE a = 2;
             DELETE FROM t WHERE b = 'x';",
        )
        .unwrap();
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(2));
        let rel = e.query("SELECT a, b FROM t ORDER BY a").unwrap();
        assert_eq!(rel.row(0), vec![Value::Int(2), Value::str("z")]);
        assert_eq!(rel.row(1), vec![Value::Int(3), Value::str("y")]);

        let s = state.lock().unwrap();
        assert_eq!(s.calls.len(), 3, "insert + update + delete batches");
        assert_eq!(s.calls[0], ("t".into(), 3, vec![]));
        assert_eq!(s.calls[1], ("t".into(), 1, vec![1]), "update = delete+insert batch");
        assert_eq!(s.calls[2].2, vec![0], "delete names canonical row 0 (a=1)");
        assert_eq!(s.threshold, Some(0.5), "SET forwarded to the backend");
        // The backend's durable state and the engine's catalog mirror stay
        // in lock-step: same canonical contents in the same row order.
        let durable = s.tables["t"].snapshot();
        drop(s);
        let mirror = e.query("SELECT * FROM t").unwrap();
        assert_eq!(durable.row_count(), mirror.row_count());
        for i in 0..durable.row_count() {
            assert_eq!(durable.row(i), mirror.row(i), "row {i}");
        }
    }

    #[test]
    fn backend_failure_keeps_catalog_intact() {
        let mock = MockBackend::default();
        let state = std::sync::Arc::clone(&mock.state);
        let mut e = Engine::new();
        e.set_backend(Box::new(mock));
        e.run_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);").unwrap();
        state.lock().unwrap().fail_next = true;
        let err = e.execute("INSERT INTO t VALUES (2)").unwrap_err();
        assert!(matches!(err, SqlError::Backend { .. }), "{err:?}");
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(1));
        // DML on a table the engine does not know stays a storage error.
        let err = e.execute("INSERT INTO missing VALUES (1)").unwrap_err();
        assert!(matches!(err, SqlError::Storage(_)));
    }

    #[test]
    fn read_only_mode_rejects_writes_and_serves_reads() {
        let mut e = engine();
        e.set_read_only(true);
        assert!(e.is_read_only());
        for sql in [
            "INSERT INTO t VALUES (9, 'w', 0.5)",
            "DELETE FROM t WHERE a = 1",
            "UPDATE t SET b = 'w'",
            "CREATE TABLE u (x INT)",
        ] {
            let err = e.execute(sql).unwrap_err();
            assert!(matches!(err, SqlError::ReadOnly { .. }), "{sql}: {err:?}");
            assert!(err.to_string().contains("read-only replica"), "{err}");
        }
        // Reads (and CHECK FD) still work; the table is untouched.
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(4));
        let rel = e.query("CHECK FD 'b -> a' ON t").unwrap();
        assert_eq!(rel.row_count(), 1);
        assert_eq!(rel.row(0)[3], Value::Bool(false), "b -> a is violated (b=x has a=1,2)");
        // Back to writable.
        e.set_read_only(false);
        e.execute("DELETE FROM t WHERE a = 1").unwrap();
    }

    #[test]
    fn check_fd_reports_measures() {
        let mut e = engine();
        let rel = e.query("CHECK FD 'a, b -> c' ON t").unwrap();
        assert_eq!(rel.row_count(), 1);
        assert_eq!(rel.arity(), 4);
        // An unparsable FD or unknown table is a clean error.
        assert!(matches!(e.query("CHECK FD 'nope -> b' ON t"), Err(SqlError::Eval { .. })));
        assert!(matches!(e.query("CHECK FD 'a -> b' ON missing"), Err(SqlError::Storage(_))));
    }

    /// A canned FD catalog for SHOW FDS tests.
    #[derive(Debug)]
    struct FixedFds(Vec<FdInfoRow>);

    impl FdInfoProvider for FixedFds {
        fn fd_rows(&self, table: Option<&str>) -> std::result::Result<Vec<FdInfoRow>, String> {
            Ok(self.0.iter().filter(|r| table.is_none_or(|t| r.table == t)).cloned().collect())
        }
    }

    #[test]
    fn show_fds_uses_the_attached_provider() {
        let mut e = engine();
        assert!(matches!(e.query("SHOW FDS"), Err(SqlError::Eval { .. })), "no provider attached");
        e.set_fd_provider(Box::new(FixedFds(vec![FdInfoRow {
            table: "t".into(),
            fd: "[a] -> [b]".into(),
            confidence: 0.75,
            goodness: -1,
            violating_rows: 2,
            status: "violated".into(),
            g3: 0.25,
            proposals: 1,
            approx: false,
        }])));
        let rel = e.query("SHOW FDS").unwrap();
        assert_eq!(rel.row_count(), 1);
        assert_eq!(rel.arity(), 9);
        assert_eq!(rel.row(0)[1], Value::str("[a] -> [b]"));
        assert_eq!(rel.row(0)[4], Value::Int(2));
        assert_eq!(rel.row(0)[5], Value::str("violated"));
        assert_eq!(rel.row(0)[6], Value::Float(0.25));
        assert_eq!(rel.row(0)[7], Value::Int(1));
        assert_eq!(rel.row(0)[8], Value::str("no"));
        let rel = e.query("SHOW FDS FOR t").unwrap();
        assert_eq!(rel.row_count(), 1);
        // Unknown tables error the same way SELECT does.
        assert!(matches!(e.query("SHOW FDS FOR missing"), Err(SqlError::Storage(_))));
    }

    #[test]
    fn advisor_statements_need_a_capable_provider() {
        let mut e = engine();
        // No provider at all: the canonical "tracked FDs" error.
        for sql in [
            "SUGGEST REPAIRS FOR t",
            "ACCEPT REPAIR 1 FOR 'a -> b' ON t",
            "ALTER TABLE t ADD CONSTRAINT FD 'a -> b'",
        ] {
            let err = e.execute(sql).unwrap_err();
            assert!(matches!(err, SqlError::Eval { .. }), "{sql}: {err:?}");
            assert!(err.to_string().contains("tracked FDs"), "{err}");
        }
        // A provider without advisor support: the default stubs error.
        e.set_fd_provider(Box::new(FixedFds(Vec::new())));
        let err = e.execute("SUGGEST REPAIRS FOR t").unwrap_err();
        assert!(matches!(err, SqlError::Backend { .. }), "{err:?}");
        let err = e.execute("ALTER TABLE t ADD CONSTRAINT FD 'a -> b'").unwrap_err();
        assert!(matches!(err, SqlError::Backend { .. }), "{err:?}");
        // Unknown tables still error like SELECT, before the provider.
        let err = e.execute("SUGGEST REPAIRS FOR missing").unwrap_err();
        assert!(matches!(err, SqlError::Storage(_)), "{err:?}");
    }

    #[test]
    fn read_only_rejects_advisor_writes_but_serves_suggest() {
        let mut e = engine();
        e.set_fd_provider(Box::new(FixedFds(Vec::new())));
        e.set_read_only(true);
        for sql in ["ALTER TABLE t ADD CONSTRAINT FD 'a -> b'", "ACCEPT REPAIR 1 FOR 'a -> b' ON t"]
        {
            let err = e.execute(sql).unwrap_err();
            assert!(matches!(err, SqlError::ReadOnly { .. }), "{sql}: {err:?}");
        }
        // SUGGEST is a read: it reaches the provider (whose stub errors).
        let err = e.execute("SUGGEST REPAIRS FOR t").unwrap_err();
        assert!(matches!(err, SqlError::Backend { .. }), "{err:?}");
    }

    #[test]
    fn duplicate_headers_uniquified() {
        let mut e = engine();
        let rel = e.query("SELECT a + 1, a + 2 FROM t WHERE a = 1").unwrap();
        assert_eq!(rel.schema().attr_name(evofd_storage::AttrId(0)), "expr");
        assert_eq!(rel.schema().attr_name(evofd_storage::AttrId(1)), "expr_2");
    }

    /// A provider with a fixed pool of ranked proposals, honouring the
    /// `limit` contract (LIMIT tests and EXPLAIN ANALYZE SUGGEST).
    #[derive(Debug)]
    struct CannedProposals(usize);

    impl FdInfoProvider for CannedProposals {
        fn fd_rows(&self, _table: Option<&str>) -> std::result::Result<Vec<FdInfoRow>, String> {
            Ok(Vec::new())
        }

        fn proposal_rows(
            &self,
            table: &str,
            limit: usize,
        ) -> std::result::Result<Vec<ProposalRow>, String> {
            Ok((0..self.0.min(limit))
                .map(|i| ProposalRow {
                    table: table.to_string(),
                    fd: "[a] -> [b]".into(),
                    rank: i + 1,
                    evolved: format!("[a, c{i}] -> [b]"),
                    added: format!("[c{i}]"),
                    goodness: -(i as i64),
                })
                .collect())
        }
    }

    fn stage_names(rel: &Relation) -> Vec<String> {
        (0..rel.row_count())
            .map(|r| match &rel.row(r)[0] {
                Value::Str(s) => s.to_string(),
                v => panic!("stage name should be text, got {v:?}"),
            })
            .collect()
    }

    #[test]
    fn suggest_repairs_limit_caps_rows() {
        let mut e = engine();
        e.set_fd_provider(Box::new(CannedProposals(50)));
        // Default cap.
        let rel = e.query("SUGGEST REPAIRS FOR t").unwrap();
        assert_eq!(rel.row_count(), DEFAULT_SUGGEST_LIMIT);
        // Explicit LIMIT below and above the pool size.
        let rel = e.query("SUGGEST REPAIRS FOR t LIMIT 3").unwrap();
        assert_eq!(rel.row_count(), 3);
        assert_eq!(rel.row(2)[2], Value::Int(3), "ranks stay 1-based after the cap");
        let rel = e.query("SUGGEST REPAIRS FOR t LIMIT 100").unwrap();
        assert_eq!(rel.row_count(), 50);
    }

    #[test]
    fn show_stats_snapshots_the_registry() {
        let mut e = engine();
        let rel = e.query("SHOW STATS").unwrap();
        assert_eq!(rel.arity(), 3);
        assert!(rel.row_count() > 0, "the catalog is visible even with no traffic");
        let metrics: Vec<String> = stage_names(&rel);
        for family in ["tracker_deltas_total", "wal_appends_total", "advisor_deltas_total"] {
            assert!(metrics.iter().any(|m| m == family), "{family} missing");
        }
        // Histograms expand to quantile components.
        assert!(metrics.iter().any(|m| m.ends_with(".p99_ms")), "histogram quantiles present");
        // FOR t keeps only samples labeled with that table (none here —
        // the in-memory engine has no per-table instrumentation).
        let rel = e.query("SHOW STATS FOR t").unwrap();
        assert_eq!(rel.arity(), 3);
        // Unknown tables error like SELECT.
        assert!(matches!(e.query("SHOW STATS FOR missing"), Err(SqlError::Storage(_))));
    }

    #[test]
    fn explain_analyze_select_reports_stage_timings() {
        let mut e = engine();
        let rel = e.query("EXPLAIN ANALYZE SELECT a FROM t WHERE a > 1 ORDER BY a").unwrap();
        assert_eq!(rel.arity(), 3, "stage / ms / detail");
        let stages = stage_names(&rel);
        for want in ["select.filter", "select.project", "select.sort"] {
            assert!(stages.iter().any(|s| s == want), "{want} missing from {stages:?}");
        }
        assert_eq!(stages.last().map(String::as_str), Some("total"));
        for r in 0..rel.row_count() {
            match rel.row(r)[1] {
                Value::Float(ms) => assert!(ms >= 0.0, "negative stage time"),
                ref v => panic!("ms should be a float, got {v:?}"),
            }
        }
        // The filter stage reports its selectivity.
        let filter_row = stages.iter().position(|s| s == "select.filter").unwrap();
        assert_eq!(rel.row(filter_row)[2], Value::str("2 of 4 rows"));
    }

    #[test]
    fn explain_analyze_insert_reports_stage_timings_and_applies() {
        let mut e = engine();
        let rel = e.query("EXPLAIN ANALYZE INSERT INTO t VALUES (9, 'q', 0.5)").unwrap();
        let stages = stage_names(&rel);
        for want in ["insert.eval", "insert.journal", "insert.apply", "total"] {
            assert!(stages.iter().any(|s| s == want), "{want} missing from {stages:?}");
        }
        // The total row carries the inner statement's outcome.
        assert_eq!(rel.row(rel.row_count() - 1)[2], Value::str("inserted 1"));
        // The analyzed insert really ran.
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(5));
        // The read-only gate still applies through EXPLAIN ANALYZE.
        e.set_read_only(true);
        assert!(matches!(
            e.query("EXPLAIN ANALYZE INSERT INTO t VALUES (1, 'x', 1.0)"),
            Err(SqlError::ReadOnly { .. })
        ));
    }

    #[test]
    fn explain_analyze_suggest_reports_stage_timings() {
        let mut e = engine();
        e.set_fd_provider(Box::new(CannedProposals(5)));
        let rel = e.query("EXPLAIN ANALYZE SUGGEST REPAIRS FOR t LIMIT 2").unwrap();
        let stages = stage_names(&rel);
        for want in ["suggest.proposals", "suggest.render", "total"] {
            assert!(stages.iter().any(|s| s == want), "{want} missing from {stages:?}");
        }
        let fetch = stages.iter().position(|s| s == "suggest.proposals").unwrap();
        assert_eq!(rel.row(fetch)[2], Value::str("2 proposals, limit 2"));
    }

    /// Every row of a result, materialised for equality asserts.
    fn all_rows(rel: &Relation) -> Vec<Vec<Value>> {
        (0..rel.row_count()).map(|r| rel.row(r)).collect()
    }

    /// All `(operator, detail)` rows of an EXPLAIN result, flattened.
    fn explain_ops(rel: &Relation) -> Vec<(String, String)> {
        (0..rel.row_count())
            .map(|r| {
                let row = rel.row(r);
                (row[0].to_string(), row[1].to_string())
            })
            .collect()
    }

    #[test]
    fn create_index_probe_matches_scan_results() {
        let mut e = engine();
        let before = e.query("SELECT * FROM t WHERE b = 'x'").unwrap();
        e.execute("CREATE INDEX ON t (b)").unwrap();
        assert_eq!(e.indexed_columns("t"), vec!["b".to_string()]);
        let after = e.query("SELECT * FROM t WHERE b = 'x'").unwrap();
        assert_eq!(all_rows(&before), all_rows(&after), "probe must be byte-identical");
        // The chosen plan is visible through EXPLAIN…
        let plan = e.query("EXPLAIN SELECT * FROM t WHERE b = 'x'").unwrap();
        let ops = explain_ops(&plan);
        assert!(
            ops.iter().any(|(op, d)| op == "IndexProbe" && d.contains("t.b = x (est 2 rows")),
            "{ops:?}"
        );
        // …and through EXPLAIN ANALYZE's per-operator rows.
        let rel = e.query("EXPLAIN ANALYZE SELECT * FROM t WHERE b = 'x'").unwrap();
        let stages = stage_names(&rel);
        assert!(stages.iter().any(|s| s == "op.index_probe"), "{stages:?}");
        let filter = stages.iter().position(|s| s == "select.filter").unwrap();
        assert_eq!(rel.row(filter)[2], Value::str("2 of 4 rows"));
    }

    #[test]
    fn index_ddl_validates_and_round_trips() {
        let mut e = engine();
        e.execute("CREATE INDEX ON t (a)").unwrap();
        assert!(
            matches!(e.execute("CREATE INDEX ON t (a)"), Err(SqlError::Eval { .. })),
            "duplicate index rejected"
        );
        assert!(e.execute("CREATE INDEX ON t (nope)").is_err(), "unknown column rejected");
        assert!(e.execute("CREATE INDEX ON missing (a)").is_err(), "unknown table rejected");
        let QueryResult::IndexDropped { column, .. } = e.execute("DROP INDEX ON t (a)").unwrap()
        else {
            panic!("expected IndexDropped")
        };
        assert_eq!(column, "a");
        assert!(e.indexed_columns("t").is_empty());
        assert!(
            matches!(e.execute("DROP INDEX ON t (a)"), Err(SqlError::Eval { .. })),
            "dropping a missing index errors"
        );
        // Replica mode rejects index DDL like any other DDL.
        e.set_read_only(true);
        assert!(matches!(e.execute("CREATE INDEX ON t (a)"), Err(SqlError::ReadOnly { .. })));
        assert!(matches!(e.execute("DROP INDEX ON t (a)"), Err(SqlError::ReadOnly { .. })));
    }

    #[test]
    fn indexes_follow_insert_delete_update() {
        let mut e = engine();
        e.execute("CREATE INDEX ON t (b)").unwrap();
        e.execute("INSERT INTO t VALUES (7, 'x', 7.0), (8, 'w', 8.0)").unwrap();
        let probed = e.query("SELECT a FROM t WHERE b = 'x' ORDER BY a").unwrap();
        assert_eq!(
            (0..probed.row_count()).map(|r| probed.row(r)[0].clone()).collect::<Vec<_>>(),
            vec![Value::Int(1), Value::Int(2), Value::Int(7)],
            "O(inserted) maintenance sees appended rows"
        );
        e.execute("DELETE FROM t WHERE b = 'x' AND a = 2").unwrap();
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t WHERE b = 'x'").unwrap(), Value::Int(2));
        e.execute("UPDATE t SET b = 'x' WHERE b = 'w'").unwrap();
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t WHERE b = 'x'").unwrap(), Value::Int(3));
        // After all that churn a probe still matches a fresh naive scan.
        let stmt = parse("SELECT * FROM t WHERE b = 'x' ORDER BY c").unwrap();
        let Statement::Select(sel) = stmt else { panic!() };
        let naive = naive_select(e.catalog().get("t").unwrap(), &sel).unwrap();
        let planned = e.query("SELECT * FROM t WHERE b = 'x' ORDER BY c").unwrap();
        assert_eq!(all_rows(&naive), all_rows(&planned));
    }

    #[test]
    fn explain_plans_without_executing() {
        let mut e = engine();
        let plan = e.query("EXPLAIN INSERT INTO t VALUES (9, 'q', 0.5)").unwrap();
        let ops = explain_ops(&plan);
        assert_eq!(ops, vec![("Statement".to_string(), "insert".to_string())]);
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(4), "not run");
        // DELETE / UPDATE expose their match plan.
        e.execute("CREATE INDEX ON t (a)").unwrap();
        let plan = e.query("EXPLAIN DELETE FROM t WHERE a = 2").unwrap();
        let ops = explain_ops(&plan);
        assert!(ops.iter().any(|(op, _)| op == "IndexProbe"), "{ops:?}");
        assert!(ops.iter().any(|(op, d)| op == "Delete" && d == "t"), "{ops:?}");
        let plan = e.query("EXPLAIN UPDATE t SET c = 0.0 WHERE a = 2 AND b = 'y'").unwrap();
        let ops = explain_ops(&plan);
        assert!(ops.iter().any(|(op, _)| op == "IndexProbe"), "{ops:?}");
        assert!(ops.iter().any(|(op, d)| op == "Filter" && d.contains("b = code#")), "{ops:?}");
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(4), "not run");
        // EXPLAIN works in replica mode even for write statements — it
        // only plans.
        e.set_read_only(true);
        assert!(e.query("EXPLAIN DELETE FROM t WHERE a = 2").is_ok());
    }

    /// An FD provider whose exact-FD set tests can flip mid-stream —
    /// the drift scenario the planner must re-read every statement.
    #[derive(Debug, Clone, Default)]
    struct ExactFds(std::sync::Arc<std::sync::Mutex<Vec<String>>>);

    impl FdInfoProvider for ExactFds {
        fn fd_rows(&self, _table: Option<&str>) -> std::result::Result<Vec<FdInfoRow>, String> {
            Ok(Vec::new())
        }

        fn exact_fds(&self, _table: &str) -> Vec<String> {
            self.0.lock().unwrap().clone()
        }
    }

    #[test]
    fn fd_rewrites_activate_and_deactivate_with_drift() {
        let mut e = Engine::new();
        e.run_script(
            "CREATE TABLE z (zip TEXT, city TEXT, pop INT);
             INSERT INTO z VALUES ('1', 'rome', 10), ('1', 'rome', 20), ('2', 'oslo', 30);",
        )
        .unwrap();
        let fds = ExactFds::default();
        e.set_fd_provider(Box::new(fds.clone()));

        let q = "SELECT zip, city, SUM(pop) FROM z GROUP BY zip, city ORDER BY zip";
        let without = e.query(q).unwrap();

        // zip -> city holds exactly: the planner collapses the GROUP BY.
        fds.0.lock().unwrap().push("zip -> city".into());
        let plan = e.query(&format!("EXPLAIN {q}")).unwrap();
        let ops = explain_ops(&plan);
        assert!(ops.iter().any(|(op, d)| op == "Aggregate" && d == "GROUP BY zip"), "{ops:?}");
        assert!(ops.iter().any(|(op, _)| op == "Rewrite[group-collapse]"), "{ops:?}");
        let with = e.query(q).unwrap();
        assert_eq!(all_rows(&without), all_rows(&with), "collapse must not change results");

        // DISTINCT over determined columns dedups on the reduced key.
        let d = "SELECT DISTINCT zip, city FROM z ORDER BY zip";
        let plan = e.query(&format!("EXPLAIN {d}")).unwrap();
        let ops = explain_ops(&plan);
        assert!(ops.iter().any(|(op, _)| op == "Rewrite[distinct-reduce]"), "{ops:?}");
        assert_eq!(e.query(d).unwrap().row_count(), 2);

        // Drift: the validator stops reporting the FD — the very next
        // statement plans without the rewrite.
        fds.0.lock().unwrap().clear();
        let plan = e.query(&format!("EXPLAIN {q}")).unwrap();
        let ops = explain_ops(&plan);
        assert!(
            ops.iter().any(|(op, d)| op == "Aggregate" && d == "GROUP BY zip, city"),
            "{ops:?}"
        );
        assert!(!ops.iter().any(|(op, _)| op.starts_with("Rewrite")), "{ops:?}");
    }
}
