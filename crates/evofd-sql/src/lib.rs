//! # evofd-sql
//!
//! A small SQL engine over [`evofd_storage`] relations — the equivalent of
//! the MySQL layer the paper's prototype ran on. Supports exactly the
//! query shapes the CB method and the examples need:
//!
//! * `SELECT COUNT(DISTINCT a, b, …) FROM t` — the paper's Q1/Q2 (§4.4);
//! * single-table `SELECT` with `WHERE` (three-valued logic), `GROUP BY`
//!   with `COUNT`/`SUM`/`MIN`/`MAX`/`AVG`, `DISTINCT`, `ORDER BY`, `LIMIT`;
//! * `CREATE TABLE`, `INSERT INTO … VALUES`, `DELETE`, `UPDATE` — all
//!   lowered onto value-level change batches, so a pluggable
//!   [`StorageBackend`] (e.g. `evofd-persist`'s WAL-backed store) can turn
//!   them into durable write-ahead transactions;
//! * `SET compact_threshold = …` session settings ([`SessionSettings`]);
//! * a **read-only replica mode** ([`Engine::set_read_only`]) that serves
//!   SELECT / `SHOW FDS` / `CHECK FD 'A -> B' ON t` on a follower while
//!   rejecting DML with a clear error ([`SqlError::ReadOnly`]);
//! * observability statements: `SHOW STATS [FOR t]` dumps the process
//!   metrics registry (`evofd-obs`) as rows, and `EXPLAIN ANALYZE <stmt>`
//!   executes a statement and reports its per-stage wall-clock timings;
//! * a **read path with a planner**: `CREATE INDEX ON t (col)` builds a
//!   sorted secondary index ([`evofd_incremental::ColumnIndex`]), the
//!   [`plan`] module costs index probes against scans and derives FD-aware
//!   rewrites from exact tracked FDs, the [`ops`] module executes the
//!   chosen plan as a Volcano-style pull pipeline over dictionary codes,
//!   and `EXPLAIN <stmt>` reports the chosen plan without executing it.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`plan`] → [`ops`] / [`exec`] over a
//! [`Catalog`](evofd_storage::Catalog).

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod ops;
pub mod parser;
pub mod plan;

pub use ast::{AggFunc, BinOp, ColumnDef, Expr, OrderKey, Select, SelectItem, Statement};
pub use error::{Result, SqlError};
pub use exec::{
    engine_with, naive_select, AcceptedRepair, AlertInfoRow, DriftInfoRow, Engine, FdInfoProvider,
    FdInfoRow, ProposalRow, QueryResult, SessionSettings, StorageBackend, DEFAULT_SUGGEST_LIMIT,
};
pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse, parse_script};
pub use plan::{Access, MatchPlan, PredStep, Rewrite, SelectPlan, UniqueVia};
