//! SQL tokenizer.

use crate::error::{Result, SqlError};

/// A lexical token with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub pos: usize,
}

/// Token kinds of the supported SQL subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are resolved case-insensitively by
    /// the parser). Double-quoted and backtick-quoted identifiers are
    /// supported for names with spaces.
    Ident(String),
    /// Numeric literal (lexed as text, parsed to int/float later).
    Number(String),
    /// Single-quoted string literal (embedded `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `;`
    Semicolon,
    /// An operator: `= <> != < <= > >= + - / %`.
    Op(String),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword test (case-insensitive) for identifiers.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenise SQL text.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, pos: i });
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, pos: i });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, pos: i });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, pos: i });
                i += 1;
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, pos: i });
                i += 1;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex {
                            pos: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), pos: start });
            }
            '"' | '`' => {
                let quote = bytes[i];
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != quote {
                    s.push(bytes[i] as char);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SqlError::Lex {
                        pos: start,
                        message: "unterminated quoted identifier".into(),
                    });
                }
                i += 1;
                tokens.push(Token { kind: TokenKind::Ident(s), pos: start });
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Op("=".into()), pos: i });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token { kind: TokenKind::Op("<>".into()), pos: i });
                i += 2;
            }
            '<' => {
                let (op, len) = match bytes.get(i + 1) {
                    Some(b'=') => ("<=", 2),
                    Some(b'>') => ("<>", 2),
                    _ => ("<", 1),
                };
                tokens.push(Token { kind: TokenKind::Op(op.into()), pos: i });
                i += len;
            }
            '>' => {
                let (op, len) = if bytes.get(i + 1) == Some(&b'=') { (">=", 2) } else { (">", 1) };
                tokens.push(Token { kind: TokenKind::Op(op.into()), pos: i });
                i += len;
            }
            '+' | '-' | '/' | '%' => {
                tokens.push(Token { kind: TokenKind::Op(c.to_string()), pos: i });
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))))
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number(input[start..i].to_string()),
                    pos: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    pos: start,
                });
            }
            other => {
                return Err(SqlError::Lex {
                    pos: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, pos: input.len() });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select_tokens() {
        let k = kinds("SELECT count(DISTINCT a, b) FROM t;");
        assert_eq!(k[0], TokenKind::Ident("SELECT".into()));
        assert!(k.contains(&TokenKind::LParen));
        assert!(k.contains(&TokenKind::Comma));
        assert!(k.contains(&TokenKind::Semicolon));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn string_literals_with_escapes() {
        let k = kinds("'it''s'");
        assert_eq!(k[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn quoted_identifiers() {
        let k = kinds("\"Moore Park\" `odd name`");
        assert_eq!(k[0], TokenKind::Ident("Moore Park".into()));
        assert_eq!(k[1], TokenKind::Ident("odd name".into()));
    }

    #[test]
    fn numbers() {
        let k = kinds("42 4.5 1e3 2.5e-2");
        assert_eq!(k[0], TokenKind::Number("42".into()));
        assert_eq!(k[1], TokenKind::Number("4.5".into()));
        assert_eq!(k[2], TokenKind::Number("1e3".into()));
        assert_eq!(k[3], TokenKind::Number("2.5e-2".into()));
    }

    #[test]
    fn operators() {
        let k = kinds("= <> != <= >= < > + - / %");
        let ops: Vec<String> = k
            .into_iter()
            .filter_map(|t| match t {
                TokenKind::Op(o) => Some(o),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["=", "<>", "<>", "<=", ">=", "<", ">", "+", "-", "/", "%"]);
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT -- the works\n1");
        assert_eq!(k.len(), 3); // SELECT, 1, EOF
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(lex("'open"), Err(SqlError::Lex { .. })));
        assert!(matches!(lex("a ~ b"), Err(SqlError::Lex { .. })));
        assert!(matches!(lex("\"open"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn keyword_test_case_insensitive() {
        let t = lex("select").unwrap();
        assert!(t[0].kind.is_kw("SELECT"));
        assert!(t[0].kind.is_kw("select"));
        assert!(!t[0].kind.is_kw("FROM"));
    }
}
