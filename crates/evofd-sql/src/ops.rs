//! Volcano-style pull operators executing a [`crate::plan`] plan.
//!
//! The row pipeline (`SeqScan` / `IndexProbe` → `Filter`) produces
//! **physical row ids** — rows stay dictionary-coded until something
//! actually needs a value. `Filter` applies the plan's compiled
//! [`PredStep`]s: code equalities compare raw `u32` codes without
//! decoding; only residual expressions (and the final projection) decode
//! the surviving rows. `Project` and `Aggregate` sit on top and pull
//! rows one at a time (`Aggregate` is a pipeline breaker: it drains its
//! child on first pull).
//!
//! Every operator counts the rows it emits and, when an
//! `EXPLAIN ANALYZE` stage collection is active, the wall-clock time
//! spent inside its `next` (inclusive of its children — subtracting
//! child time would put two clock reads on every row).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::time::Instant;

use evofd_incremental::ColumnIndex;
use evofd_storage::{Relation, Value};

use crate::ast::{Expr, OrderKey};
use crate::error::{Result, SqlError};
use crate::exec::{eval_group, eval_row, truthy};
use crate::plan::{render_step, Access, MatchPlan, PredStep};

/// Execution statistics of one operator, reported to `EXPLAIN ANALYZE`.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Operator name (`seq_scan`, `index_probe`, `filter`, …).
    pub name: &'static str,
    /// Operator-specific detail (probe key, compiled steps, group count).
    pub detail: String,
    /// Rows (or tuples) emitted.
    pub rows: usize,
    /// Inclusive wall-clock nanoseconds spent in `next` (0 when no stage
    /// collection was active).
    pub nanos: u64,
}

/// A pull operator producing physical row ids in ascending order.
pub trait RowOp {
    /// The next matching physical row id.
    fn next(&mut self) -> Result<Option<usize>>;
    /// Execution stats, children first (pipeline order).
    fn collect_stats(&self, out: &mut Vec<OpStats>);
    /// Rows emitted so far.
    fn emitted(&self) -> usize;
    /// Inclusive nanoseconds spent so far.
    fn nanos(&self) -> u64;
}

fn tick(timed: bool) -> Option<Instant> {
    timed.then(Instant::now)
}

fn tock(acc: &mut u64, t: Option<Instant>) {
    if let Some(t) = t {
        *acc += t.elapsed().as_nanos() as u64;
    }
}

/// Scan every physical row.
pub struct SeqScan {
    row_count: usize,
    cursor: usize,
    timed: bool,
    nanos: u64,
}

impl SeqScan {
    /// Scan `rel` front to back.
    pub fn new(rel: &Relation, timed: bool) -> SeqScan {
        SeqScan { row_count: rel.row_count(), cursor: 0, timed, nanos: 0 }
    }
}

impl RowOp for SeqScan {
    fn next(&mut self) -> Result<Option<usize>> {
        let t = tick(self.timed);
        let out = if self.cursor < self.row_count {
            self.cursor += 1;
            Some(self.cursor - 1)
        } else {
            None
        };
        tock(&mut self.nanos, t);
        Ok(out)
    }

    fn collect_stats(&self, out: &mut Vec<OpStats>) {
        out.push(OpStats {
            name: "seq_scan",
            detail: format!("{} rows", self.row_count),
            rows: self.cursor,
            nanos: self.nanos,
        });
    }

    fn emitted(&self) -> usize {
        self.cursor
    }

    fn nanos(&self) -> u64 {
        self.nanos
    }
}

/// Emit the ascending row ids a secondary-index equality probe matched.
pub struct IndexProbe {
    ids: Vec<u32>,
    detail: String,
    cursor: usize,
    timed: bool,
    nanos: u64,
}

impl IndexProbe {
    /// Probe `index` for `value`.
    pub fn new(index: &ColumnIndex, column: &str, value: &Value, timed: bool) -> IndexProbe {
        let ids = index.probe(value).to_vec();
        let detail = format!("{column} = {value} ({} rows)", ids.len());
        IndexProbe { ids, detail, cursor: 0, timed, nanos: 0 }
    }
}

impl RowOp for IndexProbe {
    fn next(&mut self) -> Result<Option<usize>> {
        let t = tick(self.timed);
        let out = self.ids.get(self.cursor).map(|&id| {
            self.cursor += 1;
            id as usize
        });
        tock(&mut self.nanos, t);
        Ok(out)
    }

    fn collect_stats(&self, out: &mut Vec<OpStats>) {
        out.push(OpStats {
            name: "index_probe",
            detail: self.detail.clone(),
            rows: self.cursor,
            nanos: self.nanos,
        });
    }

    fn emitted(&self) -> usize {
        self.cursor
    }

    fn nanos(&self) -> u64 {
        self.nanos
    }
}

/// Apply compiled predicate steps to the child's rows.
pub struct Filter<'a> {
    rel: &'a Relation,
    child: Box<dyn RowOp + 'a>,
    steps: Vec<PredStep>,
    emitted: usize,
    timed: bool,
    nanos: u64,
}

impl<'a> Filter<'a> {
    /// Filter `child` by `steps` (conjunct order).
    pub fn new(
        rel: &'a Relation,
        child: Box<dyn RowOp + 'a>,
        steps: Vec<PredStep>,
        timed: bool,
    ) -> Filter<'a> {
        Filter { rel, child, steps, emitted: 0, timed, nanos: 0 }
    }

    fn matches(&self, row: usize) -> Result<bool> {
        for step in &self.steps {
            let hit = match step {
                PredStep::CodeEq { attr, code, .. } => self.rel.column(*attr).code_at(row) == *code,
                PredStep::Never { .. } => false,
                PredStep::Residual(e) => truthy(&eval_row(e, self.rel, row)?)? == Some(true),
            };
            if !hit {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl RowOp for Filter<'_> {
    fn next(&mut self) -> Result<Option<usize>> {
        let t = tick(self.timed);
        let out = loop {
            match self.child.next()? {
                None => break None,
                Some(row) => {
                    if self.matches(row)? {
                        self.emitted += 1;
                        break Some(row);
                    }
                }
            }
        };
        tock(&mut self.nanos, t);
        Ok(out)
    }

    fn collect_stats(&self, out: &mut Vec<OpStats>) {
        self.child.collect_stats(out);
        out.push(OpStats {
            name: "filter",
            detail: self.steps.iter().map(render_step).collect::<Vec<_>>().join("; "),
            rows: self.emitted,
            nanos: self.nanos,
        });
    }

    fn emitted(&self) -> usize {
        self.emitted
    }

    fn nanos(&self) -> u64 {
        self.nanos
    }
}

/// Build the row pipeline for a match plan: `SeqScan`/`IndexProbe`,
/// wrapped in a `Filter` when predicate steps remain.
pub fn build_row_ops<'a>(
    rel: &'a Relation,
    indexes: &BTreeMap<String, ColumnIndex>,
    plan: &MatchPlan,
    timed: bool,
) -> Box<dyn RowOp + 'a> {
    let source: Box<dyn RowOp + 'a> = match &plan.access {
        Access::SeqScan => Box::new(SeqScan::new(rel, timed)),
        Access::IndexProbe { column, value, .. } => {
            let index = indexes.get(column).expect("planned probe has an index");
            Box::new(IndexProbe::new(index, column, value, timed))
        }
    };
    if plan.steps.is_empty() {
        source
    } else {
        Box::new(Filter::new(rel, source, plan.steps.clone(), timed))
    }
}

/// Drain a row pipeline into the matched row ids (ascending), returning
/// the per-operator stats chain alongside.
pub fn collect_matches(mut op: Box<dyn RowOp + '_>) -> Result<(Vec<usize>, Vec<OpStats>)> {
    let mut rows = Vec::new();
    while let Some(row) = op.next()? {
        rows.push(row);
    }
    let mut stats = Vec::new();
    op.collect_stats(&mut stats);
    Ok((rows, stats))
}

/// Evaluate the select list and ORDER BY keys per matched row.
pub struct Project<'a> {
    rel: &'a Relation,
    child: Box<dyn RowOp + 'a>,
    exprs: &'a [Expr],
    order_by: &'a [OrderKey],
    emitted: usize,
    timed: bool,
    nanos: u64,
}

impl<'a> Project<'a> {
    /// Project `child`'s rows through `exprs` (+ order keys).
    pub fn new(
        rel: &'a Relation,
        child: Box<dyn RowOp + 'a>,
        exprs: &'a [Expr],
        order_by: &'a [OrderKey],
        timed: bool,
    ) -> Project<'a> {
        Project { rel, child, exprs, order_by, emitted: 0, timed, nanos: 0 }
    }

    /// The next `(output tuple, order keys)` pair.
    pub fn next_tuple(&mut self) -> Result<Option<(Vec<Value>, Vec<Value>)>> {
        let t = tick(self.timed);
        let out = match self.child.next()? {
            None => None,
            Some(row) => {
                let tuple: Vec<Value> =
                    self.exprs.iter().map(|e| eval_row(e, self.rel, row)).collect::<Result<_>>()?;
                let keys: Vec<Value> = self
                    .order_by
                    .iter()
                    .map(|k| eval_row(&k.expr, self.rel, row))
                    .collect::<Result<_>>()?;
                self.emitted += 1;
                Some((tuple, keys))
            }
        };
        tock(&mut self.nanos, t);
        Ok(out)
    }

    /// Stats chain, children first.
    pub fn stats(&self) -> Vec<OpStats> {
        let mut out = Vec::new();
        self.child.collect_stats(&mut out);
        out.push(OpStats {
            name: "project",
            detail: format!("{} exprs", self.exprs.len()),
            rows: self.emitted,
            nanos: self.nanos,
        });
        out
    }

    /// Rows the row pipeline fed in (for the `select.filter` stage).
    pub fn input_rows(&self) -> usize {
        self.child.emitted()
    }

    /// Inclusive nanos of the row pipeline below.
    pub fn child_nanos(&self) -> u64 {
        self.child.nanos()
    }
}

/// Group the child's rows and evaluate aggregates per group — a pipeline
/// breaker (drains its child on first pull).
///
/// Groups hash on `hash_group_by` (the planner's possibly-collapsed
/// list) in first-appearance order, while expressions evaluate against
/// `eval_group_by` (the statement's original GROUP BY list) so
/// representative-row semantics are unchanged: any key the FD collapse
/// dropped is constant within its group.
pub struct Aggregate<'a> {
    rel: &'a Relation,
    child: Box<dyn RowOp + 'a>,
    exprs: &'a [Expr],
    order_by: &'a [OrderKey],
    hash_group_by: &'a [Expr],
    eval_group_by: &'a [Expr],
    having: Option<&'a Expr>,
    out: Option<std::vec::IntoIter<(Vec<Value>, Vec<Value>)>>,
    groups: usize,
    emitted: usize,
    timed: bool,
    nanos: u64,
}

impl<'a> Aggregate<'a> {
    /// Aggregate `child`'s rows.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rel: &'a Relation,
        child: Box<dyn RowOp + 'a>,
        exprs: &'a [Expr],
        order_by: &'a [OrderKey],
        hash_group_by: &'a [Expr],
        eval_group_by: &'a [Expr],
        having: Option<&'a Expr>,
        timed: bool,
    ) -> Aggregate<'a> {
        Aggregate {
            rel,
            child,
            exprs,
            order_by,
            hash_group_by,
            eval_group_by,
            having,
            out: None,
            groups: 0,
            emitted: 0,
            timed,
            nanos: 0,
        }
    }

    fn materialise(&mut self) -> Result<Vec<(Vec<Value>, Vec<Value>)>> {
        // Group rows by the (possibly collapsed) hash key, preserving
        // first-appearance order.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        while let Some(r) = self.child.next()? {
            let key: Vec<Value> = self
                .hash_group_by
                .iter()
                .map(|g| eval_row(g, self.rel, r))
                .collect::<Result<_>>()?;
            let slot = *index.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[slot].push(r);
        }
        if self.eval_group_by.is_empty() && groups.is_empty() {
            // Global aggregate over zero rows still yields one output row.
            groups.push(Vec::new());
        }
        if let Some(having) = self.having {
            let mut kept = Vec::with_capacity(groups.len());
            for rows in groups {
                if truthy(&eval_group(having, self.rel, &rows, self.eval_group_by)?)? == Some(true)
                {
                    kept.push(rows);
                }
            }
            groups = kept;
        }
        self.groups = groups.len();
        let mut out = Vec::with_capacity(groups.len());
        for rows in &groups {
            let tuple: Vec<Value> = self
                .exprs
                .iter()
                .map(|e| eval_group(e, self.rel, rows, self.eval_group_by))
                .collect::<Result<_>>()?;
            let keys: Vec<Value> = self
                .order_by
                .iter()
                .map(|k| eval_group(&k.expr, self.rel, rows, self.eval_group_by))
                .collect::<Result<_>>()?;
            out.push((tuple, keys));
        }
        Ok(out)
    }

    /// The next `(output tuple, order keys)` pair.
    pub fn next_tuple(&mut self) -> Result<Option<(Vec<Value>, Vec<Value>)>> {
        let t = tick(self.timed);
        if self.out.is_none() {
            let tuples = self.materialise()?;
            self.out = Some(tuples.into_iter());
        }
        let out = self.out.as_mut().and_then(Iterator::next);
        if out.is_some() {
            self.emitted += 1;
        }
        tock(&mut self.nanos, t);
        Ok(out)
    }

    /// Stats chain, children first.
    pub fn stats(&self) -> Vec<OpStats> {
        let mut out = Vec::new();
        self.child.collect_stats(&mut out);
        let collapsed = self.hash_group_by.len() != self.eval_group_by.len();
        out.push(OpStats {
            name: "aggregate",
            detail: format!(
                "{} groups, {} keys{}",
                self.groups,
                self.hash_group_by.len(),
                if collapsed { " (collapsed)" } else { "" }
            ),
            rows: self.emitted,
            nanos: self.nanos,
        });
        out
    }

    /// Rows the row pipeline fed in (for the `select.filter` stage).
    pub fn input_rows(&self) -> usize {
        self.child.emitted()
    }

    /// Inclusive nanos of the row pipeline below.
    pub fn child_nanos(&self) -> u64 {
        self.child.nanos()
    }
}

/// A `SqlError::Eval` helper kept for operator-internal errors.
#[allow(dead_code)]
fn eval_err(message: impl Into<String>) -> SqlError {
    SqlError::Eval { message: message.into() }
}
