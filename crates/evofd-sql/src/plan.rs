//! The query planner: turns a parsed statement into a physical plan over
//! the dictionary-coded storage.
//!
//! Planning is deliberately cheap — a handful of dictionary and index
//! lookups — and happens on **every** statement (no plan cache). That is
//! the drift guard for the FD-aware rewrites below: a rewrite is derived
//! from the FDs the live validator currently reports as holding with
//! confidence 1, so the instant an FD drifts the next statement plans
//! without it.
//!
//! Three decisions are made here:
//!
//! 1. **Access path** — the WHERE clause is split into top-level AND
//!    conjuncts; an equality conjunct `col = literal` whose column has a
//!    [`ColumnIndex`] becomes an [`Access::IndexProbe`] candidate, costed
//!    by the *exact* number of matching rows the index reports (the index
//!    is maintained synchronously, so its cardinalities are current —
//!    this is the "existing statistics" of the dictionary/index layer).
//!    The cheapest candidate wins if it beats a full scan.
//! 2. **Predicate compilation** — remaining conjuncts become
//!    [`PredStep`]s: an equality against a dictionary-coded column whose
//!    literal type matches compiles to a raw **code comparison**
//!    ([`PredStep::CodeEq`], no decode); a comparable literal absent from
//!    the dictionary compiles to [`PredStep::Never`]; anything else stays
//!    a residual expression evaluated on decoded values.
//! 3. **FD rewrites** — exact FDs collapse `GROUP BY X, Y` to
//!    `GROUP BY X` when `X → Y`, reduce the DISTINCT dedup key to a
//!    determining subset, and upgrade a probe to a unique point lookup
//!    when the probed column determines a stat-unique column.
//!
//! Code-compare validity: `Int` literals on `Float` columns are coerced
//! (exact), every other cross-type numeric pairing falls back to residual
//! evaluation because `sql_compare` compares those numerically while the
//! dictionary would compare representations.

use std::collections::BTreeMap;

use evofd_core::{determines, reduce_determined, Fd};
use evofd_incremental::ColumnIndex;
use evofd_storage::{AttrId, AttrSet, DataType, Relation, Value};

use crate::ast::{BinOp, Expr, Select};
use crate::error::Result;

/// How matching rows are produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Scan every row.
    SeqScan,
    /// Probe one column's secondary index for an equality literal.
    IndexProbe {
        /// The probed column (canonical schema name).
        column: String,
        /// The probed attribute.
        attr: AttrId,
        /// The (coerced) literal.
        value: Value,
        /// Exact matching-row count the index reports.
        est_rows: usize,
        /// Why the probe returns at most one row, when known.
        unique: Option<UniqueVia>,
    },
}

/// How the planner knows a probe is a point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UniqueVia {
    /// The column's dictionary says every value occurs once.
    Stats,
    /// An exact FD chain: the probed column determines a stat-unique
    /// column (rendered here), so it is itself unique.
    Fd(String),
}

/// One compiled predicate step, applied in conjunct order.
#[derive(Debug, Clone, PartialEq)]
pub enum PredStep {
    /// Decode-free equality on dictionary codes.
    CodeEq {
        /// The compared column (canonical schema name).
        column: String,
        /// The compared attribute.
        attr: AttrId,
        /// The literal's dictionary code.
        code: u32,
    },
    /// The literal cannot match any row (absent from the dictionary, or
    /// a NULL comparison) — the conjunct is always UNKNOWN/false.
    Never {
        /// The compared column.
        column: String,
    },
    /// Evaluated on decoded row values (three-valued logic).
    Residual(Expr),
}

/// An FD-aware rewrite the planner applied. `kind` is one of
/// `group-collapse`, `distinct-reduce` or `unique-probe` — also the
/// `planner_fd_rewrites_total` metric label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    /// Rewrite kind.
    pub kind: &'static str,
    /// Human-readable description for EXPLAIN.
    pub detail: String,
}

/// The physical plan for matching a statement's rows (the WHERE clause
/// of SELECT, UPDATE and DELETE).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchPlan {
    /// Chosen access path.
    pub access: Access,
    /// Predicate steps applied after the access path, in conjunct order.
    pub steps: Vec<PredStep>,
}

/// The physical plan for a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    /// Row matching.
    pub scan: MatchPlan,
    /// The exprs the executor hashes groups on — equal to the statement's
    /// GROUP BY list unless an exact FD collapsed it.
    pub hash_group_by: Vec<Expr>,
    /// Output-tuple positions that suffice as the DISTINCT dedup key
    /// (`None` = dedup on the whole tuple).
    pub distinct_key: Option<Vec<usize>>,
    /// FD rewrites applied, in application order.
    pub rewrites: Vec<Rewrite>,
}

/// Split a predicate into its top-level AND conjuncts.
fn conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            conjuncts(lhs, out);
            conjuncts(rhs, out);
        }
        other => out.push(other.clone()),
    }
}

/// `col = literal` (either side), returning the column name and literal.
fn as_col_eq_literal(e: &Expr) -> Option<(&str, &Value)> {
    let Expr::Binary { op: BinOp::Eq, lhs, rhs } = e else { return None };
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => Some((c, v)),
        _ => None,
    }
}

/// The literal as stored in the column's dictionary, when dictionary
/// equality agrees with [`sql_compare`] equality: same type, or an `Int`
/// literal exactly coerced onto a `Float` column. `None` = the conjunct
/// must stay residual; `Some(Value::Null)` never occurs (NULL handled by
/// the caller).
fn comparable_literal(col_dtype: DataType, lit: &Value) -> Option<Value> {
    match (col_dtype, lit) {
        (DataType::Int, Value::Int(_))
        | (DataType::Float, Value::Float(_))
        | (DataType::Str, Value::Str(_))
        | (DataType::Bool, Value::Bool(_)) => Some(lit.clone()),
        (DataType::Float, Value::Int(i)) => Some(Value::Float(*i as f64)),
        _ => None,
    }
}

/// Plan row matching for `filter` over `rel`, choosing between a full
/// scan and an index probe and compiling the remaining conjuncts.
pub fn plan_match(
    rel: &Relation,
    indexes: &BTreeMap<String, ColumnIndex>,
    fds: &[Fd],
    filter: Option<&Expr>,
) -> Result<MatchPlan> {
    let Some(filter) = filter else {
        return Ok(MatchPlan { access: Access::SeqScan, steps: Vec::new() });
    };
    let mut parts = Vec::new();
    conjuncts(filter, &mut parts);

    // Pre-resolve each conjunct: either a code-comparable equality or a
    // residual. `probe_of[i]` additionally notes an available index.
    struct EqInfo {
        column: String,
        attr: AttrId,
        value: Value,
        code: Option<u32>,
        indexed_rows: usize,
        has_index: bool,
    }
    let mut eq_info: Vec<Option<EqInfo>> = Vec::with_capacity(parts.len());
    for part in &parts {
        let info = as_col_eq_literal(part).and_then(|(name, lit)| {
            let attr = rel.schema().resolve(name).ok()?;
            let field = &rel.schema().fields()[attr.index()];
            if lit.is_null() {
                // `col = NULL` is UNKNOWN on every row.
                return Some(EqInfo {
                    column: field.name.clone(),
                    attr,
                    value: Value::Null,
                    code: None,
                    indexed_rows: 0,
                    has_index: false,
                });
            }
            let value = comparable_literal(field.dtype, lit)?;
            let code = rel.column(attr).dict().lookup(&value);
            let idx = indexes.get(&field.name);
            Some(EqInfo {
                column: field.name.clone(),
                attr,
                indexed_rows: idx.map_or(0, |i| i.probe(&value).len()),
                has_index: idx.is_some(),
                value,
                code,
            })
        });
        eq_info.push(info);
    }

    // Pick the most selective indexed equality, if it beats a full scan.
    let scan_cost = rel.row_count();
    let best = eq_info
        .iter()
        .enumerate()
        .filter_map(|(i, info)| {
            let info = info.as_ref()?;
            (info.has_index && !info.value.is_null()).then_some((i, info.indexed_rows))
        })
        .min_by_key(|&(_, est)| est)
        .filter(|&(_, est)| est < scan_cost);

    let access = match best {
        Some((probe_at, est_rows)) => {
            let info = eq_info[probe_at].as_ref().expect("probe candidate");
            let unique = probe_uniqueness(rel, info.attr, fds);
            let access = Access::IndexProbe {
                column: info.column.clone(),
                attr: info.attr,
                value: info.value.clone(),
                est_rows,
                unique,
            };
            parts.remove(probe_at);
            eq_info.remove(probe_at);
            access
        }
        None => Access::SeqScan,
    };

    let steps = parts
        .into_iter()
        .zip(eq_info)
        .map(|(part, info)| match info {
            Some(info) if info.value.is_null() => PredStep::Never { column: info.column },
            Some(info) => match info.code {
                Some(code) => PredStep::CodeEq { column: info.column, attr: info.attr, code },
                None => PredStep::Never { column: info.column },
            },
            None => PredStep::Residual(part),
        })
        .collect();

    Ok(MatchPlan { access, steps })
}

/// Same as [`plan_match`] but also reporting the rewrites it applied
/// (currently only `unique-probe`).
pub fn plan_match_with_rewrites(
    rel: &Relation,
    indexes: &BTreeMap<String, ColumnIndex>,
    fds: &[Fd],
    filter: Option<&Expr>,
) -> Result<(MatchPlan, Vec<Rewrite>)> {
    let plan = plan_match(rel, indexes, fds, filter)?;
    let mut rewrites = Vec::new();
    if let Access::IndexProbe { unique: Some(UniqueVia::Fd(via)), column, .. } = &plan.access {
        rewrites.push(Rewrite {
            kind: "unique-probe",
            detail: format!("{column} unique via exact FD ({via})"),
        });
    }
    Ok((plan, rewrites))
}

/// Why (if at all) probing `attr` returns at most one row: the column's
/// own dictionary stats, or an exact-FD chain to a stat-unique column —
/// if `attr → d` holds exactly and `d` is unique, two rows sharing the
/// probed value would have to share `d`, so `attr` is unique too.
fn probe_uniqueness(rel: &Relation, attr: AttrId, fds: &[Fd]) -> Option<UniqueVia> {
    if rel.column(attr).is_unique() {
        return Some(UniqueVia::Stats);
    }
    if fds.is_empty() {
        return None;
    }
    let base = AttrSet::single(attr);
    for (field_idx, field) in rel.schema().fields().iter().enumerate() {
        let d = rel.schema().resolve(&field.name).expect("own field resolves");
        if d == attr || !rel.column(d).is_unique() {
            continue;
        }
        if determines(fds, &base, &AttrSet::single(d)) {
            let via = format!(
                "{} -> {}",
                rel.schema().fields()[attr.index()].name,
                rel.schema().fields()[field_idx].name
            );
            return Some(UniqueVia::Fd(via));
        }
    }
    None
}

/// Plan a SELECT: row matching plus the FD-aware GROUP BY / DISTINCT
/// rewrites. `output` is the wildcard-expanded select list.
pub fn plan_select(
    rel: &Relation,
    indexes: &BTreeMap<String, ColumnIndex>,
    fds: &[Fd],
    sel: &Select,
    output: &[Expr],
) -> Result<SelectPlan> {
    let (scan, mut rewrites) = plan_match_with_rewrites(rel, indexes, fds, sel.filter.as_ref())?;

    // GROUP BY collapse: hash on a determining subset, evaluate against
    // the original list (representative-row semantics are unchanged
    // because the dropped keys are constant within each group).
    let mut hash_group_by = sel.group_by.clone();
    if !sel.group_by.is_empty() {
        if let Some(attrs) = plain_columns(rel, &sel.group_by) {
            let reduced = reduce_determined(&attrs, fds);
            if reduced.len() < attrs.len() {
                let dedup_len = reduce_determined(&attrs, &[]).len();
                if reduced.len() < dedup_len {
                    rewrites.push(Rewrite {
                        kind: "group-collapse",
                        detail: format!(
                            "GROUP BY {} (collapsed from {})",
                            render_attr_names(rel, &reduced),
                            render_attr_names(rel, &attrs),
                        ),
                    });
                }
                hash_group_by = reduced
                    .iter()
                    .map(|a| Expr::Column(rel.schema().fields()[a.index()].name.clone()))
                    .collect();
            }
        }
    }

    // DISTINCT key reduction: dedup on a determining subset of the output
    // columns. Valid only for non-aggregate all-column select lists —
    // rows agreeing on the reduced key agree on every determined column,
    // so the dedup classes (and the surviving first occurrences) are
    // byte-identical.
    let is_aggregate = !sel.group_by.is_empty() || output.iter().any(Expr::has_aggregate);
    let mut distinct_key = None;
    if sel.distinct && !is_aggregate && !fds.is_empty() {
        if let Some(attrs) = plain_columns(rel, output) {
            let reduced = reduce_determined(&attrs, fds);
            let dedup_len = reduce_determined(&attrs, &[]).len();
            if reduced.len() < dedup_len {
                let positions: Vec<usize> = reduced
                    .iter()
                    .map(|a| attrs.iter().position(|b| b == a).expect("kept attr"))
                    .collect();
                rewrites.push(Rewrite {
                    kind: "distinct-reduce",
                    detail: format!(
                        "DISTINCT key {} (reduced from {})",
                        render_attr_names(rel, &reduced),
                        render_attr_names(rel, &attrs),
                    ),
                });
                distinct_key = Some(positions);
            }
        }
    }

    for r in &rewrites {
        evofd_obs::metrics::PLANNER_FD_REWRITES_TOTAL.with_label(r.kind).inc();
    }
    Ok(SelectPlan { scan, hash_group_by, distinct_key, rewrites })
}

/// The attrs of `exprs` when every expr is a resolvable plain column.
fn plain_columns(rel: &Relation, exprs: &[Expr]) -> Option<Vec<AttrId>> {
    exprs
        .iter()
        .map(|e| match e {
            Expr::Column(name) => rel.schema().resolve(name).ok(),
            _ => None,
        })
        .collect()
}

fn render_attr_names(rel: &Relation, attrs: &[AttrId]) -> String {
    attrs
        .iter()
        .map(|a| rel.schema().fields()[a.index()].name.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render an expression for EXPLAIN details (parenthesised infix).
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(Value::Str(s)) => format!("'{s}'"),
        Expr::Literal(v) => v.to_string(),
        Expr::Column(c) => c.clone(),
        Expr::Binary { op, lhs, rhs } => {
            let op = match op {
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
            };
            format!("({} {op} {})", render_expr(lhs), render_expr(rhs))
        }
        Expr::Not(inner) => format!("NOT {}", render_expr(inner)),
        Expr::Neg(inner) => format!("-{}", render_expr(inner)),
        Expr::IsNull { expr, negated } => {
            format!("{} IS {}NULL", render_expr(expr), if *negated { "NOT " } else { "" })
        }
        Expr::InList { expr, list, negated } => format!(
            "{} {}IN ({})",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            list.iter().map(render_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Aggregate { .. } => e.header(),
    }
}

/// Render a predicate step for EXPLAIN.
pub fn render_step(step: &PredStep) -> String {
    match step {
        PredStep::CodeEq { column, code, .. } => format!("{column} = code#{code}"),
        PredStep::Never { column } => format!("{column}: no matching dictionary entry"),
        PredStep::Residual(e) => format!("residual {}", render_expr(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["k", "v", "w"],
            &[&["a", "1", "x"], &["b", "2", "y"], &["a", "3", "x"], &["c", "4", "z"]],
        )
        .unwrap()
    }

    fn select(sql: &str) -> Select {
        let crate::ast::Statement::Select(sel) = parse(sql).unwrap() else { panic!() };
        sel
    }

    fn indexes_on(rel: &Relation, cols: &[&str]) -> BTreeMap<String, ColumnIndex> {
        cols.iter()
            .map(|c| {
                let attr = rel.schema().resolve(c).unwrap();
                ((*c).to_string(), ColumnIndex::build(rel, attr))
            })
            .collect()
    }

    #[test]
    fn equality_with_index_becomes_probe() {
        let r = rel();
        let idx = indexes_on(&r, &["k"]);
        let sel = select("SELECT * FROM t WHERE k = 'a' AND v = '1'");
        let plan = plan_match(&r, &idx, &[], sel.filter.as_ref()).unwrap();
        let Access::IndexProbe { column, est_rows, .. } = &plan.access else { panic!("{plan:?}") };
        assert_eq!(column, "k");
        assert_eq!(*est_rows, 2);
        // The other conjunct compiled to a code comparison.
        assert!(
            matches!(plan.steps.as_slice(), [PredStep::CodeEq { column, .. }] if column == "v")
        );
    }

    #[test]
    fn most_selective_index_wins() {
        let r = rel();
        let idx = indexes_on(&r, &["k", "v"]);
        let sel = select("SELECT * FROM t WHERE k = 'a' AND v = '1'");
        let plan = plan_match(&r, &idx, &[], sel.filter.as_ref()).unwrap();
        let Access::IndexProbe { column, est_rows, unique, .. } = &plan.access else {
            panic!("{plan:?}")
        };
        assert_eq!(column, "v", "v = '1' matches 1 row, k = 'a' matches 2");
        assert_eq!(*est_rows, 1);
        assert_eq!(*unique, Some(UniqueVia::Stats), "v is unique by stats");
    }

    #[test]
    fn no_index_or_no_equality_scans() {
        let r = rel();
        let sel = select("SELECT * FROM t WHERE k = 'a'");
        let plan = plan_match(&r, &BTreeMap::new(), &[], sel.filter.as_ref()).unwrap();
        assert_eq!(plan.access, Access::SeqScan);
        assert!(matches!(plan.steps.as_slice(), [PredStep::CodeEq { .. }]));

        let idx = indexes_on(&r, &["k"]);
        let sel = select("SELECT * FROM t WHERE k > 'a'");
        let plan = plan_match(&r, &idx, &[], sel.filter.as_ref()).unwrap();
        assert_eq!(plan.access, Access::SeqScan);
        assert!(matches!(plan.steps.as_slice(), [PredStep::Residual(_)]));
    }

    #[test]
    fn absent_literal_compiles_to_never() {
        let r = rel();
        let sel = select("SELECT * FROM t WHERE k = 'zzz'");
        let plan = plan_match(&r, &BTreeMap::new(), &[], sel.filter.as_ref()).unwrap();
        assert!(matches!(plan.steps.as_slice(), [PredStep::Never { .. }]));
        // NULL equality never matches either.
        let sel = select("SELECT * FROM t WHERE k = NULL");
        let plan = plan_match(&r, &BTreeMap::new(), &[], sel.filter.as_ref()).unwrap();
        assert!(matches!(plan.steps.as_slice(), [PredStep::Never { .. }]));
    }

    #[test]
    fn or_predicates_stay_residual() {
        let r = rel();
        let idx = indexes_on(&r, &["k"]);
        let sel = select("SELECT * FROM t WHERE k = 'a' OR v = '1'");
        let plan = plan_match(&r, &idx, &[], sel.filter.as_ref()).unwrap();
        assert_eq!(plan.access, Access::SeqScan, "OR cannot be probed");
        assert!(matches!(plan.steps.as_slice(), [PredStep::Residual(_)]));
    }

    #[test]
    fn group_by_collapses_under_exact_fd() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "k -> w").unwrap();
        let sel = select("SELECT k, w, COUNT(*) FROM t GROUP BY k, w");
        let output = vec![
            Expr::Column("k".into()),
            Expr::Column("w".into()),
            Expr::Aggregate { func: crate::ast::AggFunc::Count, distinct: false, args: vec![] },
        ];
        let plan =
            plan_select(&r, &BTreeMap::new(), std::slice::from_ref(&fd), &sel, &output).unwrap();
        assert_eq!(plan.hash_group_by, vec![Expr::Column("k".into())]);
        assert!(plan.rewrites.iter().any(|rw| rw.kind == "group-collapse"));
        // Without the FD the list survives.
        let plan = plan_select(&r, &BTreeMap::new(), &[], &sel, &output).unwrap();
        assert_eq!(plan.hash_group_by.len(), 2);
        assert!(plan.rewrites.is_empty());
    }

    #[test]
    fn distinct_key_reduces_under_exact_fd() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "k -> w").unwrap();
        let sel = select("SELECT DISTINCT k, w FROM t");
        let output = vec![Expr::Column("k".into()), Expr::Column("w".into())];
        let plan = plan_select(&r, &BTreeMap::new(), &[fd], &sel, &output).unwrap();
        assert_eq!(plan.distinct_key, Some(vec![0]));
        assert!(plan.rewrites.iter().any(|rw| rw.kind == "distinct-reduce"));
        // No FD: full-tuple dedup.
        let plan = plan_select(&r, &BTreeMap::new(), &[], &sel, &output).unwrap();
        assert_eq!(plan.distinct_key, None);
    }

    #[test]
    fn fd_inferred_unique_probe() {
        let r = rel();
        // v is unique by stats; k -> v exact makes k a point lookup even
        // though k itself repeats.
        let fd = Fd::parse(r.schema(), "k -> v").unwrap();
        let idx = indexes_on(&r, &["k"]);
        let sel = select("SELECT * FROM t WHERE k = 'c'");
        let (plan, rewrites) =
            plan_match_with_rewrites(&r, &idx, &[fd], sel.filter.as_ref()).unwrap();
        let Access::IndexProbe { unique, .. } = &plan.access else { panic!("{plan:?}") };
        assert!(matches!(unique, Some(UniqueVia::Fd(_))), "{unique:?}");
        assert!(rewrites.iter().any(|rw| rw.kind == "unique-probe"));
    }

    #[test]
    fn int_literal_coerces_onto_float_column() {
        let mut cat = evofd_storage::Catalog::new();
        let schema =
            evofd_storage::Schema::new("f", vec![evofd_storage::Field::new("x", DataType::Float)])
                .unwrap()
                .into_shared();
        let mut r = Relation::empty(schema);
        r.append_rows(vec![vec![Value::Float(2.0)], vec![Value::Float(3.5)]]).unwrap();
        cat.insert(r).unwrap();
        let r = cat.get("f").unwrap();
        let sel = select("SELECT * FROM f WHERE x = 2");
        let plan = plan_match(r, &BTreeMap::new(), &[], sel.filter.as_ref()).unwrap();
        assert!(
            matches!(plan.steps.as_slice(), [PredStep::CodeEq { .. }]),
            "Int 2 coerces to Float 2.0 exactly: {plan:?}"
        );
        // The reverse direction (Float literal, Int column) must NOT
        // code-compare: sql_compare matches 2 = 2.0 numerically but the
        // dictionary would miss.
        let r2 = relation_of_strs("g", &["a"], &[&["1"]]).unwrap();
        let sel = select("SELECT * FROM g WHERE a = 1");
        let plan = plan_match(&r2, &BTreeMap::new(), &[], sel.filter.as_ref()).unwrap();
        assert!(
            matches!(plan.steps.as_slice(), [PredStep::Residual(_)]),
            "Int literal on TEXT column stays residual: {plan:?}"
        );
    }
}
