//! Error types for the SQL engine.

use std::fmt;

use evofd_storage::StorageError;

/// Errors produced while lexing, parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// A character sequence could not be tokenised.
    Lex {
        /// Byte offset in the input.
        pos: usize,
        /// Description.
        message: String,
    },
    /// The token stream did not form a valid statement.
    Parse {
        /// Byte offset in the input (approximate).
        pos: usize,
        /// Description.
        message: String,
    },
    /// The statement is valid SQL but outside the supported subset.
    Unsupported {
        /// What was attempted.
        feature: String,
    },
    /// A runtime evaluation error (type mismatch, division by zero, …).
    Eval {
        /// Description.
        message: String,
    },
    /// An underlying storage error (unknown table/column, …).
    Storage(StorageError),
    /// The durable storage backend rejected or failed a transaction
    /// (journal I/O, recovery mismatch, …). The transaction was rolled
    /// back; the in-memory table is unchanged.
    Backend {
        /// Rendered backend error.
        message: String,
    },
    /// The engine is serving a read-only replica: writes must go to the
    /// leader.
    ReadOnly {
        /// The rejected statement kind (e.g. `INSERT`).
        statement: String,
    },
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            SqlError::Parse { pos, message } => write!(f, "parse error at byte {pos}: {message}"),
            SqlError::Unsupported { feature } => write!(f, "unsupported SQL: {feature}"),
            SqlError::Eval { message } => write!(f, "evaluation error: {message}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
            SqlError::Backend { message } => write!(f, "durable backend error: {message}"),
            SqlError::ReadOnly { statement } => write!(
                f,
                "read-only replica: {statement} is not allowed here — send writes to the leader"
            ),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

/// Result alias for SQL operations.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SqlError::Lex { pos: 3, message: "bad char".into() }
            .to_string()
            .contains("byte 3"));
        assert!(SqlError::Unsupported { feature: "JOIN".into() }.to_string().contains("JOIN"));
    }
}
