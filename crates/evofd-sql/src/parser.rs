//! Recursive-descent parser for the supported SQL subset.

use evofd_storage::{DataType, Value};

use crate::ast::{AggFunc, BinOp, ColumnDef, Expr, OrderKey, Select, SelectItem, Statement};
use crate::error::{Result, SqlError};
use crate::lexer::{lex, Token, TokenKind};

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, i: 0 };
    let stmt = p.statement()?;
    p.eat_optional_semicolon();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a script of `;`-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, i: 0 };
    let mut out = Vec::new();
    loop {
        while matches!(p.peek(), TokenKind::Semicolon) {
            p.advance();
        }
        if matches!(p.peek(), TokenKind::Eof) {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i].kind
    }

    fn pos(&self) -> usize {
        self.tokens[self.i].pos
    }

    fn advance(&mut self) -> &TokenKind {
        let k = &self.tokens[self.i].kind;
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        k
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(SqlError::Parse { pos: self.pos(), message: message.into() })
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.error(format!("expected `{kw}`"))
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            self.error(format!("expected {what}"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            _ => self.error("expected identifier"),
        }
    }

    fn eat_optional_semicolon(&mut self) {
        while matches!(self.peek(), TokenKind::Semicolon) {
            self.advance();
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            self.error("unexpected trailing input")
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek().is_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.peek().is_kw("CREATE") {
            if self.tokens.get(self.i + 1).is_some_and(|t| t.kind.is_kw("INDEX")) {
                self.create_index()
            } else {
                self.create_table()
            }
        } else if self.peek().is_kw("DROP") {
            if self.tokens.get(self.i + 1).is_some_and(|t| t.kind.is_kw("ALERT")) {
                self.drop_alert()
            } else {
                self.drop_index()
            }
        } else if self.peek().is_kw("ALERT") {
            self.create_alert()
        } else if self.peek().is_kw("INSERT") {
            self.insert()
        } else if self.peek().is_kw("DELETE") {
            self.delete()
        } else if self.peek().is_kw("UPDATE") {
            self.update()
        } else if self.peek().is_kw("SET") {
            self.set_statement()
        } else if self.peek().is_kw("SHOW") {
            self.show()
        } else if self.peek().is_kw("CHECK") {
            self.check_fd()
        } else if self.peek().is_kw("ALTER") {
            self.alter_table()
        } else if self.peek().is_kw("SUGGEST") {
            self.suggest_repairs()
        } else if self.peek().is_kw("ACCEPT") {
            self.accept_repair()
        } else if self.peek().is_kw("EXPLAIN") {
            self.explain_analyze()
        } else {
            self.error(
                "expected SELECT, CREATE TABLE, CREATE INDEX, DROP INDEX, ALTER TABLE, \
                 INSERT, UPDATE, DELETE, SET, SHOW FDS, SHOW STATS, SHOW ALERTS, \
                 SHOW DRIFT HISTORY, CHECK FD, ALERT ON, DROP ALERT, \
                 SUGGEST REPAIRS, ACCEPT REPAIR, EXPLAIN or EXPLAIN ANALYZE",
            )
        }
    }

    /// A quoted FD text like `'A, B -> C'`.
    fn fd_text(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Str(s) => {
                self.advance();
                Ok(s)
            }
            _ => self.error("expected a quoted FD like 'A, B -> C'"),
        }
    }

    fn alter_table(&mut self) -> Result<Statement> {
        self.expect_kw("ALTER")?;
        self.expect_kw("TABLE")?;
        let table = self.ident()?;
        let add = if self.eat_kw("ADD") {
            true
        } else if self.eat_kw("DROP") {
            false
        } else {
            return self.error("expected ADD or DROP after the table name");
        };
        self.expect_kw("CONSTRAINT")?;
        self.expect_kw("FD")?;
        let fd = self.fd_text()?;
        Ok(Statement::AlterFd { table, fd, add })
    }

    fn suggest_repairs(&mut self) -> Result<Statement> {
        self.expect_kw("SUGGEST")?;
        self.expect_kw("REPAIRS")?;
        self.expect_kw("FOR")?;
        let table = self.ident()?;
        let limit = if self.eat_kw("LIMIT") {
            match self.peek().clone() {
                TokenKind::Number(n) => {
                    self.advance();
                    let v: usize = n.parse().map_err(|_| SqlError::Parse {
                        pos: self.pos(),
                        message: "LIMIT expects a non-negative integer".into(),
                    })?;
                    Some(v)
                }
                _ => return self.error("expected a row count after LIMIT"),
            }
        } else {
            None
        };
        Ok(Statement::SuggestRepairs { table, limit })
    }

    fn explain_analyze(&mut self) -> Result<Statement> {
        self.expect_kw("EXPLAIN")?;
        let analyze = self.eat_kw("ANALYZE");
        if self.peek().is_kw("EXPLAIN") {
            return self.error("EXPLAIN cannot be nested");
        }
        let inner = Box::new(self.statement()?);
        Ok(if analyze { Statement::ExplainAnalyze(inner) } else { Statement::Explain(inner) })
    }

    /// `CREATE INDEX ON t (col)` / `DROP INDEX ON t (col)`.
    fn index_target(&mut self) -> Result<(String, String)> {
        self.expect_kw("INDEX")?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let column = self.ident()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok((table, column))
    }

    fn create_index(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        let (table, column) = self.index_target()?;
        Ok(Statement::CreateIndex { table, column })
    }

    fn drop_index(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        let (table, column) = self.index_target()?;
        Ok(Statement::DropIndex { table, column })
    }

    fn accept_repair(&mut self) -> Result<Statement> {
        self.expect_kw("ACCEPT")?;
        self.expect_kw("REPAIR")?;
        let proposal = match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                let v: usize = n.parse().map_err(|_| SqlError::Parse {
                    pos: self.pos(),
                    message: "ACCEPT REPAIR expects a positive proposal number".into(),
                })?;
                if v == 0 {
                    return self.error("proposal numbers are 1-based");
                }
                v
            }
            _ => return self.error("expected a proposal number after ACCEPT REPAIR"),
        };
        self.expect_kw("FOR")?;
        let fd = self.fd_text()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        Ok(Statement::AcceptRepair { proposal, fd, table })
    }

    /// `ALERT ON t FD 'A -> B' WHEN metric op threshold [FOR n EPOCHS]`.
    /// The clause after the table is re-rendered as canonical rule text;
    /// the engine-side alert catalog parses and validates it against the
    /// table's schema.
    fn create_alert(&mut self) -> Result<Statement> {
        self.expect_kw("ALERT")?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_kw("FD")?;
        let fd = self.fd_text()?;
        self.expect_kw("WHEN")?;
        let metric = self.ident()?;
        if !["confidence", "g3", "violating_groups"].contains(&metric.to_ascii_lowercase().as_str())
        {
            return self.error("expected a metric: confidence, g3 or violating_groups");
        }
        let op = match self.peek().clone() {
            TokenKind::Op(op) if ["<", "<=", ">", ">="].contains(&op.as_str()) => {
                self.advance();
                op
            }
            _ => return self.error("expected a comparison: <, <=, > or >="),
        };
        let threshold = match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                n
            }
            _ => return self.error("expected a numeric threshold"),
        };
        let epochs = if self.eat_kw("FOR") {
            let n = match self.peek().clone() {
                TokenKind::Number(n) => {
                    self.advance();
                    n.parse::<u64>().map_err(|_| SqlError::Parse {
                        pos: self.pos(),
                        message: "FOR expects a positive epoch count".into(),
                    })?
                }
                _ => return self.error("expected an epoch count after FOR"),
            };
            if !(self.eat_kw("EPOCHS") || self.eat_kw("EPOCH")) {
                return self.error("expected EPOCHS after the count");
            }
            n
        } else {
            1
        };
        let rule = format!(
            "FD '{fd}' WHEN {} {op} {threshold} FOR {epochs} EPOCHS",
            metric.to_lowercase()
        );
        Ok(Statement::CreateAlert { table, rule })
    }

    fn drop_alert(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        self.expect_kw("ALERT")?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_kw("FD")?;
        let fd = self.fd_text()?;
        Ok(Statement::DropAlert { table, fd })
    }

    fn show(&mut self) -> Result<Statement> {
        self.expect_kw("SHOW")?;
        if self.eat_kw("STATS") {
            let table = if self.eat_kw("FOR") { Some(self.ident()?) } else { None };
            return Ok(Statement::ShowStats { table });
        }
        if self.eat_kw("ALERTS") {
            let table = if self.eat_kw("FOR") { Some(self.ident()?) } else { None };
            return Ok(Statement::ShowAlerts { table });
        }
        if self.eat_kw("DRIFT") {
            self.expect_kw("HISTORY")?;
            self.expect_kw("FOR")?;
            let table = self.ident()?;
            let fd = if self.eat_kw("FD") { Some(self.fd_text()?) } else { None };
            let since_epoch = if self.eat_kw("SINCE") {
                self.expect_kw("EPOCH")?;
                match self.peek().clone() {
                    TokenKind::Number(n) => {
                        self.advance();
                        Some(n.parse::<u64>().map_err(|_| SqlError::Parse {
                            pos: self.pos(),
                            message: "SINCE EPOCH expects a non-negative integer".into(),
                        })?)
                    }
                    _ => return self.error("expected an epoch number after SINCE EPOCH"),
                }
            } else {
                None
            };
            return Ok(Statement::ShowDriftHistory { table, fd, since_epoch });
        }
        self.expect_kw("FDS")?;
        let table = if self.eat_kw("FOR") { Some(self.ident()?) } else { None };
        Ok(Statement::ShowFds { table })
    }

    fn check_fd(&mut self) -> Result<Statement> {
        self.expect_kw("CHECK")?;
        self.expect_kw("FD")?;
        let fd = match self.peek().clone() {
            TokenKind::Str(s) => {
                self.advance();
                s
            }
            _ => return self.error("expected a quoted FD like 'A, B -> C'"),
        };
        self.expect_kw("ON")?;
        let table = self.ident()?;
        Ok(Statement::CheckFd { fd, table })
    }

    fn set_statement(&mut self) -> Result<Statement> {
        self.expect_kw("SET")?;
        let name = self.ident()?;
        if !matches!(self.peek(), TokenKind::Op(op) if op == "=") {
            return self.error("expected `=` after the setting name");
        }
        self.advance();
        let value = self.expr()?;
        Ok(Statement::Set { name, value })
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let tname = self.ident()?;
            let dtype = DataType::parse(&tname).ok_or_else(|| SqlError::Parse {
                pos: self.pos(),
                message: format!("unknown type `{tname}`"),
            })?;
            let mut nullable = true;
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                nullable = false;
            } else if self.eat_kw("NULL") {
                // explicit NULL marker — default anyway
            }
            columns.push(ColumnDef { name: col, dtype, nullable });
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.advance();
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut row = Vec::new();
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    row.push(self.expr()?);
                    if !matches!(self.peek(), TokenKind::Comma) {
                        break;
                    }
                    self.advance();
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            rows.push(row);
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.advance();
        }
        Ok(Statement::Insert { table, rows })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, filter })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            if !matches!(self.peek(), TokenKind::Op(op) if op == "=") {
                return self.error("expected `=` after column name in SET");
            }
            self.advance();
            let value = self.expr()?;
            sets.push((col, value));
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.advance();
        }
        let filter = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, sets, filter })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if matches!(self.peek(), TokenKind::Star) {
                self.advance();
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.advance();
        }
        self.expect_kw("FROM")?;
        let from = self.ident()?;
        if self.peek().is_kw("JOIN") || self.peek().is_kw("INNER") || self.peek().is_kw("LEFT") {
            return Err(SqlError::Unsupported { feature: "JOIN".into() });
        }
        let filter = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !matches!(self.peek(), TokenKind::Comma) {
                    break;
                }
                self.advance();
            }
        }
        let having = if self.eat_kw("HAVING") {
            if group_by.is_empty() {
                return Err(SqlError::Parse {
                    pos: self.pos(),
                    message: "HAVING requires GROUP BY".into(),
                });
            }
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !matches!(self.peek(), TokenKind::Comma) {
                    break;
                }
                self.advance();
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.peek().clone() {
                TokenKind::Number(n) => {
                    self.advance();
                    Some(n.parse::<usize>().map_err(|_| SqlError::Parse {
                        pos: self.pos(),
                        message: "LIMIT expects a non-negative integer".into(),
                    })?)
                }
                _ => return self.error("LIMIT expects a number"),
            }
        } else {
            None
        };
        Ok(Select { distinct, items, from, filter, group_by, having, order_by, limit })
    }

    // Expression precedence: OR < AND < NOT < comparison/IS/IN < add < mul < unary.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }
        // [NOT] IN (list)
        let negated_in = if self.peek().is_kw("NOT")
            && self.tokens.get(self.i + 1).is_some_and(|t| t.kind.is_kw("IN"))
        {
            self.advance();
            self.advance();
            true
        } else if self.eat_kw("IN") {
            false
        } else {
            // plain comparison operator?
            if let TokenKind::Op(op) = self.peek().clone() {
                let bin = match op.as_str() {
                    "=" => Some(BinOp::Eq),
                    "<>" => Some(BinOp::Ne),
                    "<" => Some(BinOp::Lt),
                    "<=" => Some(BinOp::Le),
                    ">" => Some(BinOp::Gt),
                    ">=" => Some(BinOp::Ge),
                    _ => None,
                };
                if let Some(bin) = bin {
                    self.advance();
                    let rhs = self.additive()?;
                    return Ok(Expr::Binary { op: bin, lhs: Box::new(lhs), rhs: Box::new(rhs) });
                }
            }
            return Ok(lhs);
        };
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut list = Vec::new();
        loop {
            list.push(self.expr()?);
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.advance();
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(Expr::InList { expr: Box::new(lhs), list, negated: negated_in })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Op(o) if o == "+" => BinOp::Add,
                TokenKind::Op(o) if o == "-" => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Op(o) if o == "/" => BinOp::Div,
                TokenKind::Op(o) if o == "%" => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), TokenKind::Op(o) if o == "-") {
            self.advance();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                let v = if n.contains(['.', 'e', 'E']) {
                    Value::Float(n.parse::<f64>().map_err(|_| SqlError::Parse {
                        pos: self.pos(),
                        message: format!("bad number `{n}`"),
                    })?)
                } else {
                    Value::Int(n.parse::<i64>().map_err(|_| SqlError::Parse {
                        pos: self.pos(),
                        message: format!("bad number `{n}`"),
                    })?)
                };
                Ok(Expr::Literal(v))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::str(s)))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                // Aggregate call?
                if let Some(func) = AggFunc::parse(&name) {
                    if self.tokens.get(self.i + 1).map(|t| &t.kind) == Some(&TokenKind::LParen) {
                        self.advance(); // name
                        self.advance(); // (
                        let distinct = self.eat_kw("DISTINCT");
                        let mut args = Vec::new();
                        if matches!(self.peek(), TokenKind::Star) {
                            self.advance();
                        } else if !matches!(self.peek(), TokenKind::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !matches!(self.peek(), TokenKind::Comma) {
                                    break;
                                }
                                self.advance();
                            }
                        }
                        self.expect(&TokenKind::RParen, "`)`")?;
                        return Ok(Expr::Aggregate { func, distinct, args });
                    }
                }
                self.advance();
                Ok(Expr::Column(name))
            }
            _ => self.error("expected expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query() {
        // The exact Q1 of §4.4.
        let stmt = parse("select count(distinct District, Region) from Places").unwrap();
        let Statement::Select(sel) = stmt else { panic!("expected SELECT") };
        assert_eq!(sel.from, "Places");
        assert_eq!(sel.items.len(), 1);
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        assert_eq!(
            *expr,
            Expr::Aggregate {
                func: AggFunc::Count,
                distinct: true,
                args: vec![Expr::Column("District".into()), Expr::Column("Region".into())],
            }
        );
    }

    #[test]
    fn parses_create_and_insert() {
        let stmt = parse("CREATE TABLE t (a INT NOT NULL, b TEXT, c DOUBLE)").unwrap();
        let Statement::CreateTable { name, columns } = stmt else { panic!() };
        assert_eq!(name, "t");
        assert_eq!(columns.len(), 3);
        assert!(!columns[0].nullable);
        assert!(columns[1].nullable);
        assert_eq!(columns[2].dtype, DataType::Float);

        let stmt = parse("INSERT INTO t VALUES (1, 'x', 2.5), (2, NULL, -3.5)").unwrap();
        let Statement::Insert { table, rows } = stmt else { panic!() };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], Expr::Literal(Value::Null));
        assert_eq!(rows[1][2], Expr::Neg(Box::new(Expr::Literal(Value::Float(3.5)))));
    }

    #[test]
    fn parses_delete() {
        let stmt = parse("DELETE FROM t WHERE a > 1 AND b IS NOT NULL").unwrap();
        let Statement::Delete { table, filter } = stmt else { panic!("{stmt:?}") };
        assert_eq!(table, "t");
        assert!(matches!(filter, Some(Expr::Binary { op: BinOp::And, .. })));
        let stmt = parse("delete from t;").unwrap();
        let Statement::Delete { filter, .. } = stmt else { panic!() };
        assert!(filter.is_none());
        assert!(parse("DELETE t").is_err(), "FROM is required");
        assert!(parse("DELETE FROM t WHERE").is_err());
    }

    #[test]
    fn parses_update() {
        let stmt = parse("UPDATE t SET a = a + 1, b = 'x' WHERE c > 2").unwrap();
        let Statement::Update { table, sets, filter } = stmt else { panic!("{stmt:?}") };
        assert_eq!(table, "t");
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].0, "a");
        assert!(matches!(sets[0].1, Expr::Binary { op: BinOp::Add, .. }));
        assert_eq!(sets[1].1, Expr::Literal(Value::str("x")));
        assert!(filter.is_some());

        let stmt = parse("update t set a = NULL;").unwrap();
        let Statement::Update { sets, filter, .. } = stmt else { panic!() };
        assert_eq!(sets[0].1, Expr::Literal(Value::Null));
        assert!(filter.is_none());

        assert!(parse("UPDATE t").is_err(), "SET is required");
        assert!(parse("UPDATE t SET a 1").is_err(), "= is required");
        assert!(parse("UPDATE t SET a = ").is_err());
    }

    #[test]
    fn parses_full_select_clauses() {
        let stmt = parse(
            "SELECT DISTINCT a, b AS bee FROM t WHERE a > 1 AND b IS NOT NULL \
             GROUP BY a, b ORDER BY a DESC, b LIMIT 10;",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else { panic!() };
        assert!(sel.distinct);
        assert_eq!(sel.items.len(), 2);
        assert!(sel.filter.is_some());
        assert_eq!(sel.group_by.len(), 2);
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].desc);
        assert!(!sel.order_by[1].desc);
        assert_eq!(sel.limit, Some(10));
    }

    #[test]
    fn precedence() {
        let Statement::Select(sel) = parse("SELECT a + b * 2 FROM t").unwrap() else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        // a + (b * 2)
        let Expr::Binary { op: BinOp::Add, rhs, .. } = expr else { panic!("{expr:?}") };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn boolean_precedence() {
        let Statement::Select(sel) =
            parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap()
        else {
            panic!()
        };
        // OR at top: a=1 OR (b=2 AND c=3)
        let Some(Expr::Binary { op: BinOp::Or, .. }) = sel.filter else {
            panic!("{:?}", sel.filter)
        };
    }

    #[test]
    fn in_list_and_not_in() {
        let Statement::Select(sel) =
            parse("SELECT * FROM t WHERE a IN (1, 2) AND b NOT IN ('x')").unwrap()
        else {
            panic!()
        };
        let Some(Expr::Binary { lhs, rhs, .. }) = sel.filter else { panic!() };
        assert!(matches!(*lhs, Expr::InList { negated: false, .. }));
        assert!(matches!(*rhs, Expr::InList { negated: true, .. }));
    }

    #[test]
    fn joins_rejected() {
        assert!(matches!(parse("SELECT * FROM a JOIN b"), Err(SqlError::Unsupported { .. })));
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = parse("SELECT FROM").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        assert!(matches!(parse("SELECT a"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("SELECT a FROM t extra"), Err(SqlError::Parse { .. })));
    }

    #[test]
    fn parse_set_statement() {
        let stmt = parse("SET compact_threshold = 0.4").unwrap();
        let Statement::Set { name, value } = stmt else { panic!("{stmt:?}") };
        assert_eq!(name, "compact_threshold");
        assert_eq!(value, Expr::Literal(Value::Float(0.4)));
        assert!(matches!(parse("SET x"), Err(SqlError::Parse { .. })));
        // `UPDATE t SET …` still parses as UPDATE, not SET.
        assert!(matches!(parse("UPDATE t SET a = 1"), Ok(Statement::Update { .. })));
    }

    #[test]
    fn parse_show_fds_and_check_fd() {
        assert_eq!(parse("SHOW FDS").unwrap(), Statement::ShowFds { table: None });
        assert_eq!(
            parse("show fds for places;").unwrap(),
            Statement::ShowFds { table: Some("places".into()) }
        );
        let stmt = parse("CHECK FD 'District, Region -> AreaCode' ON places").unwrap();
        assert_eq!(
            stmt,
            Statement::CheckFd {
                fd: "District, Region -> AreaCode".into(),
                table: "places".into()
            }
        );
        assert!(matches!(parse("SHOW TABLES"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("CHECK FD A -> B ON t"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("CHECK FD 'A -> B'"), Err(SqlError::Parse { .. })));
    }

    #[test]
    fn parse_alter_fd() {
        assert_eq!(
            parse("ALTER TABLE t ADD CONSTRAINT FD 'A, B -> C'").unwrap(),
            Statement::AlterFd { table: "t".into(), fd: "A, B -> C".into(), add: true }
        );
        assert_eq!(
            parse("alter table places drop constraint fd 'Zip -> City';").unwrap(),
            Statement::AlterFd { table: "places".into(), fd: "Zip -> City".into(), add: false }
        );
        assert!(matches!(parse("ALTER TABLE t"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("ALTER TABLE t RENAME"), Err(SqlError::Parse { .. })));
        assert!(matches!(
            parse("ALTER TABLE t ADD CONSTRAINT FD A -> B"),
            Err(SqlError::Parse { .. })
        ));
    }

    #[test]
    fn parse_suggest_and_accept() {
        assert_eq!(
            parse("SUGGEST REPAIRS FOR places").unwrap(),
            Statement::SuggestRepairs { table: "places".into(), limit: None }
        );
        assert_eq!(
            parse("suggest repairs for places limit 5;").unwrap(),
            Statement::SuggestRepairs { table: "places".into(), limit: Some(5) }
        );
        assert_eq!(
            parse("accept repair 2 for 'D -> A' on t;").unwrap(),
            Statement::AcceptRepair { proposal: 2, fd: "D -> A".into(), table: "t".into() }
        );
        assert!(matches!(parse("SUGGEST REPAIRS"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("SUGGEST REPAIRS FOR t LIMIT"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("ACCEPT REPAIR 0 FOR 'A -> B' ON t"), Err(SqlError::Parse { .. })));
        assert!(matches!(
            parse("ACCEPT REPAIR one FOR 'A -> B' ON t"),
            Err(SqlError::Parse { .. })
        ));
        assert!(matches!(parse("ACCEPT REPAIR 1 FOR 'A -> B'"), Err(SqlError::Parse { .. })));
    }

    #[test]
    fn parse_show_stats_and_explain_analyze() {
        assert_eq!(parse("SHOW STATS").unwrap(), Statement::ShowStats { table: None });
        assert_eq!(
            parse("show stats for places;").unwrap(),
            Statement::ShowStats { table: Some("places".into()) }
        );
        let stmt = parse("EXPLAIN ANALYZE SELECT * FROM t").unwrap();
        let Statement::ExplainAnalyze(inner) = stmt else { panic!("expected ExplainAnalyze") };
        assert!(matches!(*inner, Statement::Select(_)));
        assert_eq!(
            parse("explain analyze suggest repairs for t limit 3").unwrap(),
            Statement::ExplainAnalyze(Box::new(Statement::SuggestRepairs {
                table: "t".into(),
                limit: Some(3),
            }))
        );
        assert!(matches!(parse("EXPLAIN ANALYZE"), Err(SqlError::Parse { .. })));
        assert!(matches!(
            parse("EXPLAIN ANALYZE EXPLAIN ANALYZE SELECT * FROM t"),
            Err(SqlError::Parse { .. })
        ));
        assert!(matches!(parse("EXPLAIN EXPLAIN SELECT * FROM t"), Err(SqlError::Parse { .. })));
    }

    #[test]
    fn parse_bare_explain() {
        let stmt = parse("EXPLAIN SELECT * FROM t").unwrap();
        let Statement::Explain(inner) = stmt else { panic!("expected Explain, got {stmt:?}") };
        assert!(matches!(*inner, Statement::Select(_)));
        let stmt = parse("explain delete from t where a = 1;").unwrap();
        assert!(
            matches!(stmt, Statement::Explain(inner) if matches!(*inner, Statement::Delete { .. }))
        );
        assert!(matches!(parse("EXPLAIN"), Err(SqlError::Parse { .. })));
    }

    #[test]
    fn parse_create_and_drop_index() {
        assert_eq!(
            parse("CREATE INDEX ON t (a)").unwrap(),
            Statement::CreateIndex { table: "t".into(), column: "a".into() }
        );
        assert_eq!(
            parse("drop index on places (Zip);").unwrap(),
            Statement::DropIndex { table: "places".into(), column: "Zip".into() }
        );
        // CREATE TABLE still parses.
        assert!(matches!(parse("CREATE TABLE t (a INT)"), Ok(Statement::CreateTable { .. })));
        assert!(matches!(parse("CREATE INDEX t (a)"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("CREATE INDEX ON t"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("CREATE INDEX ON t (a, b)"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("DROP TABLE t"), Err(SqlError::Parse { .. })));
    }

    #[test]
    fn parse_script_multi() {
        let stmts =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn quoted_identifier_columns() {
        let Statement::Select(sel) = parse("SELECT \"Moore Park\" FROM t").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        assert_eq!(*expr, Expr::Column("Moore Park".into()));
    }

    #[test]
    fn having_parses_after_group_by() {
        let Statement::Select(sel) =
            parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1").unwrap()
        else {
            panic!()
        };
        assert!(sel.having.is_some());
        assert_eq!(sel.group_by.len(), 1);
    }

    #[test]
    fn count_star() {
        let Statement::Select(sel) = parse("SELECT COUNT(*) FROM t").unwrap() else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        assert_eq!(*expr, Expr::Aggregate { func: AggFunc::Count, distinct: false, args: vec![] });
    }
}
