//! Property test: the planner pipeline is **byte-identical** to the
//! naive evaluator on random workloads.
//!
//! Two engines run the same statement stream over a random table of
//! width 1..=4:
//!
//! * the *planned* engine carries a random, mutating index set and an
//!   [`FdInfoProvider`] whose exact-FD list is recomputed after every
//!   mutation (so accepted FDs drift in and out of exactness
//!   mid-stream, flipping the planner's rewrites on and off);
//! * the *twin* engine has no indexes and no FD provider, and doubles
//!   as the oracle: every SELECT is also evaluated by
//!   [`naive_select`] over the twin's relation.
//!
//! After each INSERT / DELETE / UPDATE the two tables must be
//! identical, and every SELECT must agree row-for-row (including row
//! order — the pipeline emits ascending row ids just like the naive
//! scan) and error-for-error.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use evofd_sql::{naive_select, parse, Engine, FdInfoProvider, FdInfoRow, Statement};
use evofd_storage::{Relation, Value};
use proptest::prelude::*;

/// An FD provider whose exact-FD list the test rewrites after every
/// mutation — the stand-in for the incremental validator's
/// confidence-1 report.
#[derive(Debug, Clone, Default)]
struct ExactFds(Arc<Mutex<Vec<String>>>);

impl FdInfoProvider for ExactFds {
    fn fd_rows(&self, _table: Option<&str>) -> Result<Vec<FdInfoRow>, String> {
        Ok(Vec::new())
    }

    fn exact_fds(&self, _table: &str) -> Vec<String> {
        self.0.lock().unwrap().clone()
    }
}

#[derive(Debug, Clone)]
enum Cond {
    Eq(usize, i64),
    Lt(usize, i64),
}

#[derive(Debug, Clone)]
enum Agg {
    CountStar,
    Sum(usize),
    Min(usize),
    Max(usize),
}

#[derive(Debug, Clone)]
struct Sel {
    distinct: bool,
    group_by: Vec<usize>,
    aggs: Vec<Agg>,
    cols: Vec<usize>,
    conds: Vec<Cond>,
    order: bool,
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<Vec<Option<i64>>>),
    Delete(Vec<Cond>),
    Update { sets: Vec<(usize, Option<i64>)>, conds: Vec<Cond> },
    CreateIndex(usize),
    DropIndex(usize),
    Select(Sel),
}

#[derive(Debug, Clone)]
struct Scenario {
    width: usize,
    rows: Vec<Vec<Option<i64>>>,
    /// Candidate FDs `(lhs, rhs)`; only those holding exactly over the
    /// *current* data are ever reported to the planner.
    fds: Vec<(Vec<usize>, usize)>,
    ops: Vec<Op>,
}

use proptest::collection::vec;

fn lit() -> impl Strategy<Value = Option<i64>> {
    (0u8..15).prop_map(|x| if x < 12 { Some(i64::from(x % 3)) } else { None })
}

fn cond(w: usize) -> impl Strategy<Value = Cond> {
    (0..w, 0i64..3, 0u8..2)
        .prop_map(|(c, k, eq)| if eq == 0 { Cond::Eq(c, k) } else { Cond::Lt(c, k) })
}

fn agg(w: usize) -> impl Strategy<Value = Agg> {
    (0u8..4, 0..w).prop_map(|(kind, c)| match kind {
        0 => Agg::CountStar,
        1 => Agg::Sum(c),
        2 => Agg::Min(c),
        _ => Agg::Max(c),
    })
}

fn sel(w: usize) -> impl Strategy<Value = Sel> {
    (0u8..2, vec(0..w, 0..=w), vec(agg(w), 0..3), vec(0..w, 1..=w), vec(cond(w), 0..3), 0u8..2)
        .prop_map(|(distinct, mut group_by, aggs, cols, conds, order)| {
            let mut seen = [false; 4];
            group_by.retain(|&c| !std::mem::replace(&mut seen[c], true));
            Sel { distinct: distinct == 1, group_by, aggs, cols, conds, order: order == 1 }
        })
}

fn op(w: usize) -> impl Strategy<Value = Op> {
    // A weighted choice: the shim has no `prop_oneof!`, so generate every
    // component plus a discriminant and pick in the map.
    (0u32..13, vec(vec(lit(), w), 1..4), vec(cond(w), 0..3), vec((0..w, lit()), 1..3), 0..w, sel(w))
        .prop_map(|(kind, rows, conds, sets, c, s)| match kind {
            0..=2 => Op::Insert(rows),
            3..=4 => Op::Delete(conds),
            5..=6 => Op::Update { sets, conds },
            7 => Op::CreateIndex(c),
            8 => Op::DropIndex(c),
            _ => Op::Select(s),
        })
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=4).prop_flat_map(|w| {
        (Just(w), vec(vec(lit(), w), 0..12), vec((vec(0..w, 1..=w), 0..w), 0..3), vec(op(w), 1..10))
            .prop_map(|(width, rows, fds, ops)| Scenario { width, rows, fds, ops })
    })
}

fn col(i: usize) -> String {
    format!("c{i}")
}

fn render_lit(v: &Option<i64>) -> String {
    match v {
        Some(k) => k.to_string(),
        None => "NULL".to_string(),
    }
}

fn render_conds(conds: &[Cond]) -> String {
    if conds.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = conds
        .iter()
        .map(|c| match c {
            Cond::Eq(i, k) => format!("{} = {k}", col(*i)),
            Cond::Lt(i, k) => format!("{} < {k}", col(*i)),
        })
        .collect();
    format!(" WHERE {}", parts.join(" AND "))
}

fn render_select(s: &Sel) -> String {
    let render_agg = |a: &Agg| match a {
        Agg::CountStar => "COUNT(*)".to_string(),
        Agg::Sum(i) => format!("SUM({})", col(*i)),
        Agg::Min(i) => format!("MIN({})", col(*i)),
        Agg::Max(i) => format!("MAX({})", col(*i)),
    };
    if !s.group_by.is_empty() {
        let mut items: Vec<String> = s.group_by.iter().map(|&i| col(i)).collect();
        items.extend(s.aggs.iter().map(render_agg));
        let keys: Vec<String> = s.group_by.iter().map(|&i| col(i)).collect();
        let order = if s.order { format!(" ORDER BY {}", keys.join(", ")) } else { String::new() };
        format!(
            "SELECT {} FROM t{} GROUP BY {}{order}",
            items.join(", "),
            render_conds(&s.conds),
            keys.join(", "),
        )
    } else if !s.aggs.is_empty() {
        let items: Vec<String> = s.aggs.iter().map(render_agg).collect();
        format!("SELECT {} FROM t{}", items.join(", "), render_conds(&s.conds))
    } else {
        let items: Vec<String> = s.cols.iter().map(|&i| col(i)).collect();
        let distinct = if s.distinct { "DISTINCT " } else { "" };
        let order = if s.order { format!(" ORDER BY {}", items.join(", ")) } else { String::new() };
        format!("SELECT {distinct}{} FROM t{}{order}", items.join(", "), render_conds(&s.conds))
    }
}

fn all_rows(rel: &Relation) -> Vec<Vec<Value>> {
    (0..rel.row_count()).map(|r| rel.row(r)).collect()
}

/// Does `lhs -> rhs` hold exactly over the relation, NULLs compared as
/// ordinary values — the same grouping equality the engine uses?
fn fd_holds(rel: &Relation, lhs: &[usize], rhs: usize) -> bool {
    let mut groups: HashMap<Vec<Value>, Value> = HashMap::new();
    for r in 0..rel.row_count() {
        let row = rel.row(r);
        let key: Vec<Value> = lhs.iter().map(|&i| row[i].clone()).collect();
        match groups.entry(key) {
            Entry::Occupied(seen) => {
                if *seen.get() != row[rhs] {
                    return false;
                }
            }
            Entry::Vacant(slot) => {
                slot.insert(row[rhs].clone());
            }
        }
    }
    true
}

/// Recompute which candidate FDs hold over the current data and hand
/// exactly those to the planner — the drift mechanism: one conflicting
/// insert and the FD (with every rewrite riding on it) vanishes.
fn refresh_fds(provider: &ExactFds, rel: &Relation, fds: &[(Vec<usize>, usize)]) {
    let mut list = Vec::new();
    for (lhs, rhs) in fds {
        let mut l = lhs.clone();
        l.sort_unstable();
        l.dedup();
        if l.contains(rhs) {
            continue;
        }
        if fd_holds(rel, &l, *rhs) {
            let names: Vec<String> = l.iter().map(|&i| col(i)).collect();
            list.push(format!("[{}] -> [{}]", names.join(", "), col(*rhs)));
        }
    }
    *provider.0.lock().unwrap() = list;
}

fn run_scenario(sc: &Scenario) -> Result<(), TestCaseError> {
    let cols: Vec<String> = (0..sc.width).map(|i| format!("{} INT", col(i))).collect();
    let create = format!("CREATE TABLE t ({})", cols.join(", "));
    let mut planned = Engine::new();
    let mut twin = Engine::new();
    planned.execute(&create).unwrap();
    twin.execute(&create).unwrap();
    let provider = ExactFds::default();
    planned.set_fd_provider(Box::new(provider.clone()));

    let insert_sql = |rows: &[Vec<Option<i64>>]| {
        let tuples: Vec<String> = rows
            .iter()
            .map(|r| format!("({})", r.iter().map(render_lit).collect::<Vec<_>>().join(", ")))
            .collect();
        format!("INSERT INTO t VALUES {}", tuples.join(", "))
    };
    if !sc.rows.is_empty() {
        let sql = insert_sql(&sc.rows);
        planned.execute(&sql).unwrap();
        twin.execute(&sql).unwrap();
    }
    refresh_fds(&provider, twin.catalog().get("t").unwrap(), &sc.fds);

    for op in &sc.ops {
        match op {
            Op::Insert(rows) => {
                let sql = insert_sql(rows);
                planned.execute(&sql).unwrap();
                twin.execute(&sql).unwrap();
            }
            Op::Delete(conds) => {
                let sql = format!("DELETE FROM t{}", render_conds(conds));
                planned.execute(&sql).unwrap();
                twin.execute(&sql).unwrap();
            }
            Op::Update { sets, conds } => {
                let mut seen = [false; 4];
                let sets: Vec<String> = sets
                    .iter()
                    .filter(|(c, _)| !std::mem::replace(&mut seen[*c], true))
                    .map(|(c, v)| format!("{} = {}", col(*c), render_lit(v)))
                    .collect();
                let sql = format!("UPDATE t SET {}{}", sets.join(", "), render_conds(conds));
                planned.execute(&sql).unwrap();
                twin.execute(&sql).unwrap();
            }
            Op::CreateIndex(c) => {
                if !planned.indexed_columns("t").contains(&col(*c)) {
                    planned.execute(&format!("CREATE INDEX ON t ({})", col(*c))).unwrap();
                }
            }
            Op::DropIndex(c) => {
                if planned.indexed_columns("t").contains(&col(*c)) {
                    planned.execute(&format!("DROP INDEX ON t ({})", col(*c))).unwrap();
                }
            }
            Op::Select(s) => {
                let sql = render_select(s);
                let got = planned.query(&sql);
                let Statement::Select(ast) = parse(&sql).unwrap() else { unreachable!() };
                let want = naive_select(twin.catalog().get("t").unwrap(), &ast);
                match (got, want) {
                    (Ok(got), Ok(want)) => {
                        prop_assert_eq!(
                            all_rows(&got),
                            all_rows(&want),
                            "planner diverged from naive on `{}` (indexes {:?}, fds {:?})",
                            sql,
                            planned.indexed_columns("t"),
                            provider.0.lock().unwrap().clone()
                        );
                    }
                    (Err(_), Err(_)) => {}
                    (got, want) => {
                        prop_assert!(
                            false,
                            "error divergence on `{sql}`: planner {got:?} vs naive {want:?}"
                        );
                    }
                }
            }
        }
        if matches!(op, Op::Insert(_) | Op::Delete(_) | Op::Update { .. }) {
            let a = twin.catalog().get("t").unwrap();
            let b = planned.catalog().get("t").unwrap();
            prop_assert_eq!(all_rows(b), all_rows(a), "tables diverged after {:?}", op);
            refresh_fds(&provider, a, &sc.fds);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn planner_is_byte_identical_to_naive(sc in scenario()) {
        run_scenario(&sc)?;
    }
}

/// Deterministic drift regression: the collapse rewrite is active, a
/// conflicting insert lands, and the very next statements must plan —
/// and answer — without it.
#[test]
fn rewrites_deactivate_the_statement_after_drift() {
    let sc = Scenario {
        width: 3,
        rows: vec![
            vec![Some(1), Some(1), Some(0)],
            vec![Some(1), Some(1), Some(1)],
            vec![Some(2), Some(2), Some(2)],
        ],
        fds: vec![(vec![0], 1)],
        ops: vec![
            Op::CreateIndex(0),
            Op::Select(Sel {
                distinct: false,
                group_by: vec![0, 1],
                aggs: vec![Agg::CountStar],
                cols: vec![],
                conds: vec![],
                order: true,
            }),
            // c0 = 1 now maps to both c1 = 1 and c1 = 2: drift.
            Op::Insert(vec![vec![Some(1), Some(2), Some(5)]]),
            Op::Select(Sel {
                distinct: false,
                group_by: vec![0, 1],
                aggs: vec![Agg::CountStar],
                cols: vec![],
                conds: vec![],
                order: true,
            }),
            Op::Select(Sel {
                distinct: true,
                group_by: vec![],
                aggs: vec![],
                cols: vec![0, 1],
                conds: vec![Cond::Eq(0, 1)],
                order: true,
            }),
        ],
    };
    run_scenario(&sc).unwrap();
}
