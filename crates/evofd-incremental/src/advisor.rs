//! [`LiveAdvisor`]: the paper's semi-automatic designer loop run **live**
//! over a mutating relation.
//!
//! [`evofd_core::AdvisorSession`] is batch-shaped: it analyzes one frozen
//! instance, presents ranked repair proposals for the violated FDs, and
//! records the designer's decisions. `LiveAdvisor` is the same workflow
//! attached to a [`crate::LiveRelation`] / [`crate::IncrementalValidator`]
//! pair: per applied delta it keeps every violated FD's proposal list
//! current in O(changed rows) via a [`RepairIndex`] per FD (the repair
//! lattice maintained from the same delta row lists the validator's group
//! trackers consume), reacts to drift — an FD becoming violated grows an
//! index, one repaired by the data drops it — and carries designer
//! decisions (accept / keep / drop, with the audit log) across deltas.
//!
//! The advisor's visible state — which FDs are satisfied or violated, the
//! proposals with their ranks and measures — is **equal to a fresh
//! [`AdvisorSession::analyze`](evofd_core::AdvisorSession::analyze) at
//! every epoch** (property-tested in `tests/live_advisor_equivalence.rs`),
//! while costing O(changed) instead of a from-scratch repair search per
//! check. Decisions are exportable as [`DecisionRecord`]s, the journaling
//! currency `evofd-persist` writes to the WAL so crash recovery and
//! replicas restore the session.

use std::sync::Arc;

use evofd_core::{AuditEvent, Fd, Repair, RepairConfig, RepairIndex, SearchMode};
use evofd_storage::{Relation, Schema};

use crate::delta::AppliedDelta;
use crate::error::{IncrementalError, Result};
use crate::live::LiveRelation;
use crate::validator::IncrementalValidator;

/// Designer state of one FD under the live advisor.
#[derive(Debug, Clone)]
pub enum LiveFdState {
    /// Exact on the current contents; nothing to decide.
    Satisfied,
    /// Violated: the repair index keeps the ranked proposals current.
    Violated {
        /// The maintained repair lattice for this FD.
        index: Box<RepairIndex>,
    },
    /// The designer accepted a proposal; the FD evolved.
    Evolved {
        /// The adopted (exact) FD.
        evolved: Fd,
    },
    /// The designer kept the FD despite violations.
    Kept,
    /// The designer dropped the FD from the schema.
    Dropped,
}

impl LiveFdState {
    /// True iff this FD still needs a designer decision.
    pub fn needs_decision(&self) -> bool {
        matches!(self, LiveFdState::Violated { .. })
    }

    /// True iff the designer already ruled on this FD.
    pub fn decided(&self) -> bool {
        matches!(self, LiveFdState::Evolved { .. } | LiveFdState::Kept | LiveFdState::Dropped)
    }

    /// Short status label (`SHOW FDS`, CLI tables).
    pub fn label(&self) -> &'static str {
        match self {
            LiveFdState::Satisfied => "satisfied",
            LiveFdState::Violated { .. } => "violated",
            LiveFdState::Evolved { .. } => "evolved",
            LiveFdState::Kept => "kept",
            LiveFdState::Dropped => "dropped",
        }
    }
}

/// What the designer decided for one FD — the serializable record
/// `evofd-persist` journals so recovery and replicas restore the session.
/// FDs are stored rendered ([`Fd::display`]), which [`Fd::parse`] accepts
/// back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRecord {
    /// The original FD, rendered against the relation schema.
    pub fd: String,
    /// The ruling.
    pub action: DecisionAction,
}

/// The three rulings of the paper's designer loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionAction {
    /// Proposal `proposal` (0-based) was accepted; the FD evolved into
    /// `evolved`.
    Accept {
        /// 0-based index into the proposal list at decision time.
        proposal: u32,
        /// The evolved FD, rendered.
        evolved: String,
    },
    /// The FD was kept unchanged despite violations.
    Keep,
    /// The FD was dropped from the schema.
    Drop,
}

/// Work counters for the `advisor` bench and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvisorStats {
    /// Deltas observed.
    pub deltas: u64,
    /// Deltas absorbed by O(changed) index maintenance.
    pub incremental: u64,
    /// Full resyncs (epoch gaps, oversized deltas, explicit calls).
    pub full_resyncs: u64,
    /// Repair indexes built from scratch (drift onsets + resyncs).
    pub indexes_built: u64,
}

/// The semi-automatic FD-evolution loop over a live, mutating relation.
///
/// ```
/// use evofd_core::Fd;
/// use evofd_incremental::{Delta, IncrementalValidator, LiveAdvisor, LiveRelation};
/// use evofd_storage::{relation_of_strs, Value};
///
/// let rel = relation_of_strs("t", &["D", "M", "A"], &[
///     &["d1", "m1", "a1"],
///     &["d2", "m2", "a2"],
/// ]).unwrap();
/// let fd = Fd::parse(rel.schema(), "D -> A").unwrap();
/// let mut live = LiveRelation::new(rel);
/// let mut validator = IncrementalValidator::new(&live, vec![fd]);
/// let mut advisor = LiveAdvisor::new(&live, &validator);
/// assert!(advisor.pending().is_empty(), "nothing violated yet");
///
/// // One conflicting insert: the FD drifts, proposals appear.
/// let delta = Delta::inserting(vec![vec![
///     Value::str("d1"), Value::str("m9"), Value::str("a9"),
/// ]]);
/// let applied = live.apply(&delta).unwrap();
/// validator.apply(&live, &applied);
/// advisor.apply(&live, &validator, &applied);
/// assert_eq!(advisor.pending(), vec![0]);
/// assert!(!advisor.proposals(0).unwrap().is_empty());
/// ```
#[derive(Debug)]
pub struct LiveAdvisor {
    schema: Arc<Schema>,
    config: RepairConfig,
    fds: Vec<Fd>,
    states: Vec<LiveFdState>,
    log: Vec<AuditEvent>,
    decisions: Vec<DecisionRecord>,
    last_epoch: u64,
    stats: AdvisorStats,
}

impl LiveAdvisor {
    /// Attach an advisor to a live relation and its validator. Proposal
    /// search runs in find-all mode (every minimal option), matching
    /// [`evofd_core::AdvisorSession::new`].
    pub fn new(live: &LiveRelation, validator: &IncrementalValidator) -> LiveAdvisor {
        let config = RepairConfig { mode: SearchMode::FindAll, ..RepairConfig::default() };
        LiveAdvisor::with_config(live, validator, config)
    }

    /// Attach with an explicit repair configuration. The validator must be
    /// in sync with `live` (same epoch) — the normal state right after
    /// [`IncrementalValidator::apply`].
    pub fn with_config(
        live: &LiveRelation,
        validator: &IncrementalValidator,
        config: RepairConfig,
    ) -> LiveAdvisor {
        let mut advisor = LiveAdvisor {
            schema: live.relation().schema_arc(),
            config,
            fds: validator.fds().to_vec(),
            states: Vec::new(),
            log: Vec::new(),
            decisions: Vec::new(),
            last_epoch: live.epoch(),
            stats: AdvisorStats::default(),
        };
        advisor.analyze(live, validator);
        advisor.stats = AdvisorStats::default();
        advisor
    }

    /// The FDs under advisement, in validator index order.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// The repair configuration.
    pub fn config(&self) -> &RepairConfig {
        &self.config
    }

    /// The live-relation epoch this advisor last observed.
    pub fn epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Work counters.
    pub fn stats(&self) -> AdvisorStats {
        self.stats
    }

    /// The state of FD `i`.
    pub fn state(&self, i: usize) -> Result<&LiveFdState> {
        self.states.get(i).ok_or_else(|| IncrementalError::StateMismatch {
            message: format!("FD #{i} is not under advisement"),
        })
    }

    /// Indices of FDs currently awaiting a designer decision.
    pub fn pending(&self) -> Vec<usize> {
        self.states.iter().enumerate().filter(|(_, s)| s.needs_decision()).map(|(i, _)| i).collect()
    }

    /// Ranked proposals for violated FD `i` — element for element what a
    /// fresh batch analysis would compute on the current contents.
    pub fn proposals(&self, i: usize) -> Result<&[Repair]> {
        match self.state(i)? {
            LiveFdState::Violated { index } => Ok(index.proposals()),
            other => Err(IncrementalError::StateMismatch {
                message: format!("FD #{i} is {} — not awaiting a decision", other.label()),
            }),
        }
    }

    /// Number of proposals currently pending for FD `i` (0 when satisfied
    /// or already decided).
    pub fn pending_proposals(&self, i: usize) -> usize {
        match self.states.get(i) {
            Some(LiveFdState::Violated { index }) => index.proposals().len(),
            _ => 0,
        }
    }

    /// Advance the advisor past a delta that `live` (and the validator)
    /// already absorbed. Violated FDs' proposal lists are maintained in
    /// O(changed rows); FDs that drifted get their index built or dropped;
    /// epoch gaps and oversized deltas fall back to a full resync.
    pub fn apply(
        &mut self,
        live: &LiveRelation,
        validator: &IncrementalValidator,
        applied: &AppliedDelta,
    ) {
        self.stats.deltas += 1;
        evofd_obs::metrics::ADVISOR_DELTAS_TOTAL.inc();
        if applied.is_empty() && live.epoch() == self.last_epoch {
            return;
        }
        let contiguous = !applied.is_empty()
            && applied.epoch == self.last_epoch + 1
            && live.epoch() == applied.epoch;
        let oversized = applied.len() as f64
            > validator.config().full_recompute_fraction * live.row_count().max(1) as f64;
        if !contiguous || oversized {
            if evofd_obs::enabled() {
                let cause = if oversized { "oversized" } else { "epoch-gap" };
                evofd_obs::metrics::ADVISOR_RESYNCS_TOTAL.with_label(cause).inc();
            }
            self.resync(live, validator);
            return;
        }

        let mut cached: Option<Vec<usize>> = None;
        let rel = live.relation();
        for i in 0..self.fds.len() {
            let now_exact = validator.is_exact(i);
            match &mut self.states[i] {
                LiveFdState::Satisfied if !now_exact => {
                    // Drift onset: build the repair lattice once (O(rows)).
                    let rows = cached.get_or_insert_with(|| live.live_rows().collect()).clone();
                    self.states[i] = LiveFdState::Violated {
                        index: Box::new(RepairIndex::build(
                            rel,
                            &rows,
                            self.fds[i].clone(),
                            self.config.clone(),
                        )),
                    };
                    self.stats.indexes_built += 1;
                    evofd_obs::metrics::ADVISOR_INDEXES_BUILT_TOTAL.inc();
                }
                LiveFdState::Violated { .. } if now_exact => {
                    // The data repaired the FD: proposals are moot.
                    self.states[i] = LiveFdState::Satisfied;
                }
                LiveFdState::Violated { index } => {
                    index.update(rel, &applied.deleted, applied.inserted.clone(), || {
                        cached.get_or_insert_with(|| live.live_rows().collect()).clone()
                    });
                }
                _ => {} // still satisfied, or decided (re-checked below)
            }
        }
        // Accepted repairs whose evolved FD drifted back into violation
        // re-open for a fresh ruling. Deletes cannot break an exact FD,
        // so the check only runs on insert-bearing deltas; it runs after
        // the maintenance loop so the rebuilt index (already over the
        // post-delta rows) is not updated with the same delta twice.
        if !applied.inserted.is_empty() {
            for i in 0..self.fds.len() {
                let LiveFdState::Evolved { evolved } = &self.states[i] else { continue };
                let evolved = evolved.clone();
                let rows = cached.get_or_insert_with(|| live.live_rows().collect()).clone();
                if !fd_exact_over(rel, &rows, &evolved) {
                    self.reopen(i, evolved, rel, &rows);
                }
            }
        }
        self.last_epoch = live.epoch();
        self.stats.incremental += 1;
        evofd_obs::metrics::ADVISOR_INCREMENTAL_TOTAL.inc();
    }

    /// Rebuild every undecided FD's state from the current contents
    /// (compactions, missed deltas, out-of-band mutations). Decisions and
    /// the audit log survive.
    pub fn resync(&mut self, live: &LiveRelation, validator: &IncrementalValidator) {
        let rows: Vec<usize> = live.live_rows().collect();
        let rel = live.relation();
        for i in 0..self.fds.len() {
            if let Some(LiveFdState::Evolved { evolved }) = self.states.get(i) {
                let evolved = evolved.clone();
                if !fd_exact_over(rel, &rows, &evolved) {
                    self.reopen(i, evolved, rel, &rows);
                }
                continue;
            }
            if self.states.get(i).is_some_and(LiveFdState::decided) {
                continue;
            }
            let state = if validator.is_exact(i) {
                LiveFdState::Satisfied
            } else {
                self.stats.indexes_built += 1;
                evofd_obs::metrics::ADVISOR_INDEXES_BUILT_TOTAL.inc();
                LiveFdState::Violated {
                    index: Box::new(RepairIndex::build(
                        rel,
                        &rows,
                        self.fds[i].clone(),
                        self.config.clone(),
                    )),
                }
            };
            if i < self.states.len() {
                self.states[i] = state;
            } else {
                self.states.push(state);
            }
        }
        self.last_epoch = live.epoch();
        self.stats.full_resyncs += 1;
    }

    /// Initial analysis (construction): every FD classified, indexes built
    /// for the violated ones, the `Analyzed` audit entry written.
    fn analyze(&mut self, live: &LiveRelation, validator: &IncrementalValidator) {
        self.resync(live, validator);
        let violated = self.pending().len();
        self.log.push(AuditEvent::Analyzed { violated, total: self.fds.len() });
    }

    /// Accept proposal `proposal_idx` for FD `i`: the FD evolves. Returns
    /// the adopted repair (exact by construction).
    pub fn accept(&mut self, i: usize, proposal_idx: usize) -> Result<Repair> {
        let chosen = match self.state(i)? {
            LiveFdState::Violated { index } => {
                index.proposals().get(proposal_idx).cloned().ok_or_else(|| {
                    IncrementalError::StateMismatch {
                        message: format!("no proposal #{proposal_idx} for FD #{i}"),
                    }
                })?
            }
            other => {
                return Err(IncrementalError::StateMismatch {
                    message: format!("FD #{i} is {} — not awaiting a decision", other.label()),
                })
            }
        };
        let original = self.fds[i].display(&self.schema);
        let evolved = chosen.fd.display(&self.schema);
        self.log.push(AuditEvent::Accepted {
            fd_index: i,
            original: original.clone(),
            evolved: evolved.clone(),
        });
        self.decisions.push(DecisionRecord {
            fd: original,
            action: DecisionAction::Accept { proposal: proposal_idx as u32, evolved },
        });
        self.states[i] = LiveFdState::Evolved { evolved: chosen.fd.clone() };
        Ok(chosen)
    }

    /// Record that an accepted evolution replaced `original` in the
    /// tracked FD set (the durable layer performs the swap; this keeps the
    /// audit trail of the replacement in the successor advisor session).
    pub fn note_replacement(&mut self, original: &str, evolved: &str) {
        self.log.push(AuditEvent::Replaced {
            original: original.to_string(),
            evolved: evolved.to_string(),
        });
    }

    /// Retire the accepted decision for FD `i` and put it back under
    /// advisement: the evolved FD drifted into violation, so the old
    /// ruling no longer covers the data. The slot returns to
    /// [`LiveFdState::Violated`] with a fresh repair lattice for the
    /// **original** FD (two rows violating the evolved refinement agree
    /// on a superset of the original LHS, so they violate the original
    /// too) and the retired decision leaves [`LiveAdvisor::decisions`].
    fn reopen(&mut self, i: usize, evolved: Fd, rel: &Relation, rows: &[usize]) {
        let original = self.fds[i].display(&self.schema);
        self.log.push(AuditEvent::Reopened {
            fd_index: i,
            original: original.clone(),
            evolved: evolved.display(&self.schema),
        });
        self.decisions.retain(|d| d.fd != original);
        self.states[i] = LiveFdState::Violated {
            index: Box::new(RepairIndex::build(
                rel,
                rows,
                self.fds[i].clone(),
                self.config.clone(),
            )),
        };
        self.stats.indexes_built += 1;
        evofd_obs::metrics::ADVISOR_INDEXES_BUILT_TOTAL.inc();
        evofd_obs::metrics::ADVISOR_REOPENED_TOTAL.inc();
    }

    /// Keep FD `i` unchanged despite violations.
    pub fn keep(&mut self, i: usize) -> Result<()> {
        self.require_pending(i)?;
        let fd = self.fds[i].display(&self.schema);
        self.log.push(AuditEvent::Kept { fd_index: i, fd: fd.clone() });
        self.decisions.push(DecisionRecord { fd, action: DecisionAction::Keep });
        self.states[i] = LiveFdState::Kept;
        Ok(())
    }

    /// Drop FD `i` from the schema.
    pub fn drop_fd(&mut self, i: usize) -> Result<()> {
        self.require_pending(i)?;
        let fd = self.fds[i].display(&self.schema);
        self.log.push(AuditEvent::Dropped { fd_index: i, fd: fd.clone() });
        self.decisions.push(DecisionRecord { fd, action: DecisionAction::Drop });
        self.states[i] = LiveFdState::Dropped;
        Ok(())
    }

    fn require_pending(&self, i: usize) -> Result<()> {
        if self.state(i)?.needs_decision() {
            Ok(())
        } else {
            Err(IncrementalError::StateMismatch {
                message: format!("FD #{i} is not awaiting a decision"),
            })
        }
    }

    /// Re-install a journaled decision (crash recovery, replica catch-up).
    /// Unlike the live [`LiveAdvisor::accept`], this does **not** re-run
    /// the proposal search — the record is trusted as the designer's
    /// ruling at the time it was journaled.
    pub fn restore(&mut self, record: &DecisionRecord) -> Result<()> {
        let original =
            Fd::parse(&self.schema, &record.fd).map_err(|e| IncrementalError::StateMismatch {
                message: format!("decision record names unparseable FD `{}`: {e}", record.fd),
            })?;
        let i = self.fds.iter().position(|f| *f == original).ok_or_else(|| {
            IncrementalError::StateMismatch {
                message: format!("decision record names unknown FD `{}`", record.fd),
            }
        })?;
        if self.states[i].decided() {
            return Err(IncrementalError::StateMismatch {
                message: format!("FD #{i} already carries a decision"),
            });
        }
        match &record.action {
            DecisionAction::Accept { proposal, evolved } => {
                let evolved_fd = Fd::parse(&self.schema, evolved).map_err(|e| {
                    IncrementalError::StateMismatch {
                        message: format!("decision record evolved FD `{evolved}`: {e}"),
                    }
                })?;
                self.log.push(AuditEvent::Accepted {
                    fd_index: i,
                    original: record.fd.clone(),
                    evolved: evolved.clone(),
                });
                let _ = proposal; // rank at decision time, kept for audit
                self.states[i] = LiveFdState::Evolved { evolved: evolved_fd };
            }
            DecisionAction::Keep => {
                self.log.push(AuditEvent::Kept { fd_index: i, fd: record.fd.clone() });
                self.states[i] = LiveFdState::Kept;
            }
            DecisionAction::Drop => {
                self.log.push(AuditEvent::Dropped { fd_index: i, fd: record.fd.clone() });
                self.states[i] = LiveFdState::Dropped;
            }
        }
        self.decisions.push(record.clone());
        Ok(())
    }

    /// True iff no FD awaits a decision.
    pub fn is_complete(&self) -> bool {
        self.pending().is_empty()
    }

    /// The evolved FD set: satisfied and kept FDs unchanged, evolved FDs
    /// replaced by their accepted repair, dropped FDs removed — the same
    /// semantics as [`evofd_core::AdvisorSession::evolved_fds`].
    pub fn evolved_fds(&self) -> Vec<Fd> {
        self.fds
            .iter()
            .zip(&self.states)
            .filter_map(|(fd, state)| match state {
                LiveFdState::Dropped => None,
                LiveFdState::Evolved { evolved } => Some(evolved.clone()),
                _ => Some(fd.clone()),
            })
            .collect()
    }

    /// The designer's decisions so far, in decision order (the journaling
    /// currency for `evofd-persist`).
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// The audit log, oldest first.
    pub fn log(&self) -> &[AuditEvent] {
        &self.log
    }

    /// One-paragraph session summary for UIs.
    pub fn summary(&self) -> String {
        let mut satisfied = 0;
        let mut violated = 0;
        let mut evolved = 0;
        let mut kept = 0;
        let mut dropped = 0;
        for s in &self.states {
            match s {
                LiveFdState::Satisfied => satisfied += 1,
                LiveFdState::Violated { .. } => violated += 1,
                LiveFdState::Evolved { .. } => evolved += 1,
                LiveFdState::Kept => kept += 1,
                LiveFdState::Dropped => dropped += 1,
            }
        }
        format!(
            "{} FDs: {satisfied} satisfied, {violated} awaiting decision, \
             {evolved} evolved, {kept} kept, {dropped} dropped",
            self.fds.len()
        )
    }
}

/// True iff `fd` holds exactly over `rows` of `rel`, checked at the
/// dictionary-code level (equal values share a code) with an early exit
/// on the first violating pair of rows.
fn fd_exact_over(rel: &Relation, rows: &[usize], fd: &Fd) -> bool {
    use std::collections::hash_map::Entry;
    use std::collections::HashMap;
    let key = |set: &evofd_storage::AttrSet, row: usize| -> Vec<u32> {
        set.iter().map(|a| rel.columns()[a.index()].code_at(row)).collect()
    };
    let mut groups: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
    for &row in rows {
        let rhs = key(fd.rhs(), row);
        match groups.entry(key(fd.lhs(), row)) {
            Entry::Occupied(seen) => {
                if *seen.get() != rhs {
                    return false;
                }
            }
            Entry::Vacant(slot) => {
                slot.insert(rhs);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Delta;
    use evofd_core::AdvisorSession;
    use evofd_storage::{relation_of_strs, Relation, Value};

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["D", "M", "P", "A"],
            &[
                &["d1", "m1", "p1", "a1"],
                &["d1", "m1", "p2", "a1"],
                &["d1", "m2", "p3", "a2"],
                &["d2", "m3", "p4", "a3"],
            ],
        )
        .unwrap()
    }

    fn srow(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|v| Value::str(*v)).collect()
    }

    fn setup() -> (LiveRelation, IncrementalValidator, LiveAdvisor) {
        let r = rel();
        let fds = vec![
            Fd::parse(r.schema(), "D -> A").unwrap(), // violated
            Fd::parse(r.schema(), "M -> A").unwrap(), // satisfied
        ];
        let live = LiveRelation::new(r);
        let validator = IncrementalValidator::new(&live, fds);
        let advisor = LiveAdvisor::new(&live, &validator);
        (live, validator, advisor)
    }

    /// The equality oracle: advisor state must match a fresh batch
    /// analysis on a canonical snapshot, undecided FD by undecided FD.
    fn assert_matches_batch(live: &LiveRelation, advisor: &LiveAdvisor) {
        let snap = live.snapshot();
        let mut session = AdvisorSession::new(&snap, advisor.fds().to_vec());
        session.analyze().unwrap();
        for i in 0..advisor.fds().len() {
            let state = advisor.state(i).unwrap();
            if state.decided() {
                continue;
            }
            match (state, session.state(i).unwrap()) {
                (LiveFdState::Satisfied, evofd_core::FdState::Satisfied) => {}
                (
                    LiveFdState::Violated { index },
                    evofd_core::FdState::Violated { proposals, truncated },
                ) => {
                    assert!(!truncated, "oracle must not truncate");
                    assert_eq!(index.proposals().len(), proposals.len(), "FD #{i} count");
                    for (ours, theirs) in index.proposals().iter().zip(proposals) {
                        assert_eq!(ours.added, theirs.added, "FD #{i} added set");
                        assert_eq!(ours.fd, theirs.fd, "FD #{i} evolved FD");
                        assert_eq!(ours.measures, theirs.measures, "FD #{i} measures");
                    }
                }
                (ours, theirs) => panic!("FD #{i}: live {} vs batch {theirs:?}", ours.label()),
            }
        }
    }

    fn step(
        live: &mut LiveRelation,
        validator: &mut IncrementalValidator,
        advisor: &mut LiveAdvisor,
        delta: &Delta,
    ) {
        let applied = live.apply(delta).unwrap();
        validator.apply(live, &applied);
        advisor.apply(live, validator, &applied);
    }

    #[test]
    fn initial_analysis_matches_batch() {
        let (live, _, advisor) = setup();
        assert_eq!(advisor.pending(), vec![0]);
        assert!(advisor.log()[0].to_string().contains("analyzed 2 FDs: 1 violated"));
        assert_matches_batch(&live, &advisor);
    }

    #[test]
    fn drift_creates_and_drops_proposal_lists() {
        let (mut live, mut v, mut advisor) = setup();
        // M -> A drifts to violated: its index appears.
        step(
            &mut live,
            &mut v,
            &mut advisor,
            &Delta::inserting(vec![srow(&["d3", "m1", "p9", "a9"])]),
        );
        assert_eq!(advisor.pending(), vec![0, 1]);
        assert_matches_batch(&live, &advisor);
        // Delete the offending row: M -> A is repaired by the data.
        let row = live.find_live_row(&srow(&["d3", "m1", "p9", "a9"])).unwrap();
        step(&mut live, &mut v, &mut advisor, &Delta::deleting([row]));
        assert_eq!(advisor.pending(), vec![0]);
        assert_matches_batch(&live, &advisor);
        assert!(advisor.stats().incremental >= 2);
    }

    #[test]
    fn proposals_stay_current_under_deltas() {
        let (mut live, mut v, mut advisor) = setup();
        for delta in [
            Delta::inserting(vec![srow(&["d2", "m3", "p5", "a3"])]),
            Delta::inserting(vec![srow(&["d1", "m4", "p6", "a4"])]),
            Delta::deleting([2]),
        ] {
            step(&mut live, &mut v, &mut advisor, &delta);
            assert_matches_batch(&live, &advisor);
        }
    }

    #[test]
    fn decisions_stick_across_deltas() {
        let (mut live, mut v, mut advisor) = setup();
        let chosen = advisor.accept(0, 0).unwrap();
        assert!(chosen.measures.is_exact());
        assert!(advisor.is_complete());
        assert_eq!(advisor.decisions().len(), 1);
        // Traffic keeps flowing; the decision is not revisited.
        step(
            &mut live,
            &mut v,
            &mut advisor,
            &Delta::inserting(vec![srow(&["d9", "m9", "p9", "a9"])]),
        );
        assert!(matches!(advisor.state(0).unwrap(), LiveFdState::Evolved { .. }));
        assert_eq!(advisor.evolved_fds().len(), 2);
        assert!(advisor.evolved_fds().contains(&chosen.fd));
        assert_matches_batch(&live, &advisor);
        // Deciding twice fails.
        assert!(advisor.accept(0, 0).is_err());
        assert!(advisor.keep(0).is_err());
    }

    #[test]
    fn accepted_repair_reopens_when_evolved_fd_drifts() {
        let (mut live, mut v, mut advisor) = setup();
        advisor.accept(0, 0).unwrap();
        assert!(matches!(advisor.state(0).unwrap(), LiveFdState::Evolved { .. }));
        assert_eq!(advisor.decisions().len(), 1);
        // A row agreeing with row 0 on every attribute but A violates the
        // evolved FD whatever attributes the accepted repair added.
        step(
            &mut live,
            &mut v,
            &mut advisor,
            &Delta::inserting(vec![srow(&["d1", "m1", "p1", "a9"])]),
        );
        assert!(matches!(advisor.state(0).unwrap(), LiveFdState::Violated { .. }), "re-opened");
        assert!(advisor.decisions().is_empty(), "the retired decision left the session");
        assert_eq!(advisor.pending(), vec![0, 1], "M -> A drifted in the same delta");
        assert!(advisor.log().iter().any(|e| e.to_string().contains("re-opened")));
        // The fresh proposals are for the ORIGINAL FD over the current
        // rows — exactly what a batch analysis computes.
        assert_matches_batch(&live, &advisor);
        // The designer can rule again.
        advisor.keep(0).unwrap();
        assert!(matches!(advisor.state(0).unwrap(), LiveFdState::Kept));
    }

    #[test]
    fn accepted_repair_survives_unrelated_inserts() {
        let (mut live, mut v, mut advisor) = setup();
        advisor.accept(0, 0).unwrap();
        step(
            &mut live,
            &mut v,
            &mut advisor,
            &Delta::inserting(vec![srow(&["d8", "m8", "p8", "a8"])]),
        );
        assert!(matches!(advisor.state(0).unwrap(), LiveFdState::Evolved { .. }));
        assert_eq!(advisor.decisions().len(), 1);
    }

    #[test]
    fn resync_reopens_drifted_accepted_repairs() {
        let (mut live, mut v, mut advisor) = setup();
        advisor.accept(0, 0).unwrap();
        // Mutate behind the advisor's back, then resync — the compaction
        // and epoch-gap recovery path must notice the drift too.
        let applied = live.apply(&Delta::inserting(vec![srow(&["d1", "m1", "p1", "a9"])])).unwrap();
        v.apply(&live, &applied);
        advisor.resync(&live, &v);
        assert!(matches!(advisor.state(0).unwrap(), LiveFdState::Violated { .. }));
        assert!(advisor.decisions().is_empty());
        assert_matches_batch(&live, &advisor);
    }

    #[test]
    fn keep_and_drop_flows() {
        let (live, _, mut advisor) = setup();
        advisor.keep(0).unwrap();
        assert!(matches!(advisor.state(0).unwrap(), LiveFdState::Kept));
        assert_eq!(advisor.evolved_fds().len(), 2);
        assert!(advisor.summary().contains("1 kept"));
        let _ = live;

        let (live2, _, mut advisor2) = setup();
        advisor2.drop_fd(0).unwrap();
        assert_eq!(advisor2.evolved_fds().len(), 1);
        assert!(advisor2.summary().contains("1 dropped"));
        let _ = live2;
    }

    #[test]
    fn restore_reinstalls_journaled_decisions() {
        let (live, validator, mut advisor) = setup();
        advisor.accept(0, 0).unwrap();
        let records = advisor.decisions().to_vec();

        // A fresh advisor over the same state restores the session.
        let mut restored = LiveAdvisor::new(&live, &validator);
        for r in &records {
            restored.restore(r).unwrap();
        }
        assert_eq!(restored.decisions(), advisor.decisions());
        assert_eq!(restored.evolved_fds(), advisor.evolved_fds());
        assert!(matches!(restored.state(0).unwrap(), LiveFdState::Evolved { .. }));
        // Double restore is rejected.
        assert!(restored.restore(&records[0]).is_err());
        // Unknown FDs are rejected.
        let bogus = DecisionRecord { fd: "[P] -> [D]".into(), action: DecisionAction::Keep };
        assert!(restored.restore(&bogus).is_err());
    }

    #[test]
    fn epoch_gap_forces_resync() {
        let (mut live, mut v, mut advisor) = setup();
        // Mutate behind the advisor's back (validator in the loop, advisor
        // not told): the next observed delta has a non-contiguous epoch.
        let applied = live.apply(&Delta::inserting(vec![srow(&["d7", "m7", "p7", "a7"])])).unwrap();
        v.apply(&live, &applied);
        let applied = live.apply(&Delta::inserting(vec![srow(&["d1", "m8", "p8", "a8"])])).unwrap();
        v.apply(&live, &applied);
        advisor.apply(&live, &v, &applied);
        assert_eq!(advisor.stats().full_resyncs, 1);
        assert_matches_batch(&live, &advisor);
    }

    #[test]
    fn compaction_resync_keeps_equality() {
        let (mut live, mut v, mut advisor) = setup();
        step(&mut live, &mut v, &mut advisor, &Delta::deleting([0]));
        assert!(live.compact() > 0);
        v.resync(&live);
        advisor.resync(&live, &v);
        assert_matches_batch(&live, &advisor);
        // And incremental maintenance continues after the resync.
        step(
            &mut live,
            &mut v,
            &mut advisor,
            &Delta::inserting(vec![srow(&["d1", "m5", "p5", "a5"])]),
        );
        assert_matches_batch(&live, &advisor);
    }
}
