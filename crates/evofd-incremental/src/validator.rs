//! [`IncrementalValidator`]: keeps every FD's [`Measures`] and violation
//! aggregate current under [`crate::Delta`] traffic, falling back to a full
//! rebuild only when a delta is too large a fraction of the relation (or an
//! epoch gap shows rows have been rewritten underneath it).
//!
//! ## Parallel maintenance ownership model
//!
//! Tracker updates fan out across FDs on the `mintpool` width with **no
//! locking on the hot path**: each [`FdTracker`] is owned by exactly one
//! task per delta (disjoint `&mut` splits of the tracker vector), the
//! relation is only read, and the delta's row lists are shared immutably.
//! Trackers never reference each other, so per-FD maintenance — and the
//! full rebuild fallback — is a pure fork-join over independent state;
//! drift detection then runs sequentially over the before/after measures,
//! keeping event order deterministic. At width 1 the fan-out degenerates
//! to the original in-order loop.

use evofd_core::{validate, Fd, FdStatus, Measures, ValidationReport};
use evofd_storage::Relation;

use crate::delta::AppliedDelta;
use crate::error::{IncrementalError, Result};
use crate::feed::{ChangeFeed, DriftKind, FdDrift, SubscriptionId};
use crate::live::LiveRelation;
use crate::tracker::{FdTracker, TrackerSnapshot};

/// Tuning knobs for [`IncrementalValidator`].
#[derive(Debug, Clone)]
pub struct ValidatorConfig {
    /// When a delta's row changes exceed this fraction of the live row
    /// count, rebuild from scratch instead of updating per row. Updating a
    /// tracker row costs a few hash operations versus one scan step of a
    /// rebuild, so for very large deltas the rebuild is cheaper.
    pub full_recompute_fraction: f64,
    /// Confidence thresholds whose crossings (in either direction) emit
    /// [`DriftKind::ConfidenceCrossed`] events.
    pub confidence_thresholds: Vec<f64>,
    /// Per-tracker byte budget: a tracker whose exact group-count state
    /// outgrows this degrades to memory-bounded approximate mode
    /// (sketched distinct counts, exact fallback on demand via
    /// [`IncrementalValidator::exact_summary`]). `None` (the default)
    /// never degrades. This is **session configuration**, not persisted
    /// state: durable snapshots do not carry it, a reopening session
    /// re-applies it through [`IncrementalValidator::set_config`].
    pub tracker_memory_limit: Option<usize>,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        ValidatorConfig {
            full_recompute_fraction: 0.5,
            confidence_thresholds: Vec::new(),
            tracker_memory_limit: None,
        }
    }
}

/// Work counters, for the `incremental_vs_full` bench and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidatorStats {
    /// Deltas observed via [`IncrementalValidator::apply`].
    pub deltas: u64,
    /// Deltas handled by per-row tracker updates.
    pub incremental: u64,
    /// Full rebuilds (oversized deltas, epoch gaps, explicit resyncs).
    pub full_recomputes: u64,
    /// Drift events emitted.
    pub events: u64,
}

/// Violation aggregate for one FD, maintained per delta. The numbers match
/// `evofd_core::violations` on a canonical snapshot exactly; call
/// [`ViolationSummary::materialize`] for the full tuple-level evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationSummary {
    /// The FD.
    pub fd: Fd,
    /// Number of X-groups associated with ≥ 2 Y-projections.
    pub violating_groups: usize,
    /// Live tuples belonging to violating groups.
    pub violating_rows: usize,
    /// Total live tuples.
    pub total_rows: usize,
}

impl ViolationSummary {
    /// True iff the FD is satisfied (no violating groups).
    pub fn is_clean(&self) -> bool {
        self.violating_groups == 0
    }

    /// Fraction of tuples involved in violations, in `[0, 1]`.
    pub fn violation_ratio(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.violating_rows as f64 / self.total_rows as f64
        }
    }

    /// Materialise the full tuple-level evidence (O(live rows)) against a
    /// canonical snapshot of the live relation.
    pub fn materialize(&self, live: &LiveRelation) -> evofd_core::ViolationReport {
        evofd_core::violations(&live.snapshot(), &self.fd)
    }
}

/// Delta-maintained FD validation over one [`LiveRelation`].
///
/// ```
/// use evofd_core::Fd;
/// use evofd_incremental::{Delta, IncrementalValidator, LiveRelation};
/// use evofd_storage::{relation_of_strs, Value};
///
/// let rel = relation_of_strs("t", &["X", "Y"], &[&["a", "1"], &["b", "2"]]).unwrap();
/// let fd = Fd::parse(rel.schema(), "X -> Y").unwrap();
/// let mut live = LiveRelation::new(rel);
/// let mut validator = IncrementalValidator::new(&live, vec![fd]);
/// assert!(validator.is_exact(0));
///
/// // One conflicting insert flips the FD to violated — no rescan.
/// let delta = Delta::inserting(vec![vec![Value::str("a"), Value::str("9")]]);
/// let applied = live.apply(&delta).unwrap();
/// let drift = validator.apply(&live, &applied);
/// assert_eq!(drift.len(), 1);
/// assert!(!validator.is_exact(0));
/// ```
#[derive(Debug)]
pub struct IncrementalValidator {
    fds: Vec<Fd>,
    trackers: Vec<FdTracker>,
    config: ValidatorConfig,
    last_epoch: u64,
    /// Live row count as of the last observed delta (kept independently of
    /// the trackers so a zero-FD validator still reports it correctly).
    rows: usize,
    stats: ValidatorStats,
    feed: ChangeFeed,
    /// Cached per-FD histogram handles (label = FD display string), built
    /// lazily on the first apply with observability enabled so the labeled
    /// registry lookup never sits on the per-delta hot path.
    fd_hists: Vec<std::sync::Arc<evofd_obs::Histogram>>,
}

impl IncrementalValidator {
    /// Build validator state for `fds` with one scan of the live rows.
    pub fn new(live: &LiveRelation, fds: Vec<Fd>) -> IncrementalValidator {
        IncrementalValidator::with_config(live, fds, ValidatorConfig::default())
    }

    /// Build with explicit configuration.
    pub fn with_config(
        live: &LiveRelation,
        fds: Vec<Fd>,
        config: ValidatorConfig,
    ) -> IncrementalValidator {
        let limit = config.tracker_memory_limit;
        let trackers = mintpool::par_map(&fds, |fd| {
            FdTracker::build(fd, live.relation(), live.live_rows(), limit)
        });
        IncrementalValidator {
            fds,
            trackers,
            config,
            last_epoch: live.epoch(),
            rows: live.row_count(),
            stats: ValidatorStats::default(),
            feed: ChangeFeed::new(),
            fd_hists: Vec::new(),
        }
    }

    /// Reassemble a validator from exported tracker state (crash
    /// recovery). The snapshots must have been exported against the same
    /// physical relation layout `live` now has — dictionary codes are the
    /// tracker keys — and must agree with the live row count; both are
    /// checked cheaply (count consistency), the rest is the caller's
    /// contract (`evofd-persist` guards it with checksums).
    pub fn from_tracker_snapshots(
        live: &LiveRelation,
        fds: Vec<Fd>,
        config: ValidatorConfig,
        snapshots: &[TrackerSnapshot],
    ) -> Result<IncrementalValidator> {
        if snapshots.len() != fds.len() {
            return Err(IncrementalError::StateMismatch {
                message: format!("{} tracker snapshots for {} FDs", snapshots.len(), fds.len()),
            });
        }
        let limit = config.tracker_memory_limit;
        let mut trackers = Vec::with_capacity(fds.len());
        for (fd, snap) in fds.iter().zip(snapshots) {
            if snap.approx {
                // Approximate trackers persist no group state — rebuild
                // from the live rows, then re-degrade (when a limit is
                // configured) so resumed state matches the original
                // instead of silently turning exact.
                let mut tracker = FdTracker::build(fd, live.relation(), live.live_rows(), limit);
                if limit.is_some() {
                    tracker.degrade_now();
                }
                trackers.push(tracker);
                continue;
            }
            let tracker = FdTracker::import(fd, snap, limit).ok_or_else(|| {
                IncrementalError::StateMismatch {
                    message: "malformed tracker snapshot (zero or duplicate counts)".into(),
                }
            })?;
            if tracker.total_rows() != live.row_count() {
                return Err(IncrementalError::StateMismatch {
                    message: format!(
                        "tracker covers {} rows but the relation has {} live",
                        tracker.total_rows(),
                        live.row_count()
                    ),
                });
            }
            trackers.push(tracker);
        }
        Ok(IncrementalValidator {
            fds,
            trackers,
            config,
            last_epoch: live.epoch(),
            rows: live.row_count(),
            stats: ValidatorStats::default(),
            feed: ChangeFeed::new(),
            fd_hists: Vec::new(),
        })
    }

    /// Export every tracker's group-count state in FD order — the
    /// serializable core a columnar snapshot persists so recovery can skip
    /// the O(rows) tracker rebuild.
    pub fn export_trackers(&self) -> Vec<TrackerSnapshot> {
        mintpool::par_map(&self.trackers, FdTracker::export)
    }

    /// The validator's configuration.
    pub fn config(&self) -> &ValidatorConfig {
        &self.config
    }

    /// Replace the configuration going forward (thresholds, recompute
    /// fraction, memory limit) — e.g. a recovered validator adopting this
    /// session's `--threshold`s. Thresholds and the recompute fraction
    /// only steer future [`IncrementalValidator::apply`] calls; the
    /// memory limit is pushed into every tracker and may degrade one to
    /// approximate mode immediately (it never un-degrades until the next
    /// rebuild).
    pub fn set_config(&mut self, config: ValidatorConfig) {
        let limit = config.tracker_memory_limit;
        self.config = config;
        for tracker in &mut self.trackers {
            tracker.set_memory_limit(limit);
        }
    }

    /// The FDs under validation, in index order.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Current measures of FD `i` — always in sync with the last applied
    /// delta, identical to a from-scratch [`Measures::compute`] on a
    /// canonical snapshot.
    pub fn measures(&self, i: usize) -> Measures {
        self.trackers[i].measures()
    }

    /// True iff FD `i` is exact on the current contents.
    pub fn is_exact(&self, i: usize) -> bool {
        self.trackers[i].measures().is_exact()
    }

    /// The `g3` measure of FD `i`: the minimal fraction of live tuples
    /// whose deletion would satisfy the FD (0 when satisfied or empty) —
    /// computed from the maintained group counts, no relation scan.
    pub fn g3(&self, i: usize) -> f64 {
        let total = self.trackers[i].total_rows();
        if total == 0 {
            0.0
        } else {
            self.trackers[i].g3_removals() as f64 / total as f64
        }
    }

    /// True when FD `i`'s tracker runs in memory-bounded approximate
    /// mode: [`IncrementalValidator::measures`] and the violation
    /// aggregate are sketch estimates; exact answers come from
    /// [`IncrementalValidator::exact_summary`].
    pub fn is_approx(&self, i: usize) -> bool {
        self.trackers[i].is_approx()
    }

    /// FD `i`'s tracker representation name (`packed` | `general` |
    /// `approx`), for stats surfaces and tests.
    pub fn tracker_repr(&self, i: usize) -> &'static str {
        self.trackers[i].repr_name()
    }

    /// The **exact** violation aggregate of FD `i`: when the tracker is
    /// approximate, a transient exact tracker is built from the live rows
    /// (O(live rows), bounded peak memory only by the relation itself);
    /// otherwise this is just [`IncrementalValidator::summary`].
    pub fn exact_summary(&self, live: &LiveRelation, i: usize) -> ViolationSummary {
        if !self.trackers[i].is_approx() {
            return self.summary(i);
        }
        let t = FdTracker::build(&self.fds[i], live.relation(), live.live_rows(), None);
        ViolationSummary {
            fd: self.fds[i].clone(),
            violating_groups: t.violating_groups(),
            violating_rows: t.violating_rows(),
            total_rows: t.total_rows(),
        }
    }

    /// The **exact** measures of FD `i` (see
    /// [`IncrementalValidator::exact_summary`]).
    pub fn exact_measures(&self, live: &LiveRelation, i: usize) -> Measures {
        if !self.trackers[i].is_approx() {
            return self.measures(i);
        }
        FdTracker::build(&self.fds[i], live.relation(), live.live_rows(), None).measures()
    }

    /// Current violation aggregate of FD `i`.
    pub fn summary(&self, i: usize) -> ViolationSummary {
        ViolationSummary {
            fd: self.fds[i].clone(),
            violating_groups: self.trackers[i].violating_groups(),
            violating_rows: self.trackers[i].violating_rows(),
            total_rows: self.trackers[i].total_rows(),
        }
    }

    /// Violation aggregates for every FD.
    pub fn summaries(&self) -> Vec<ViolationSummary> {
        (0..self.fds.len()).map(|i| self.summary(i)).collect()
    }

    /// A batch-shaped [`ValidationReport`] assembled from the maintained
    /// state (no relation scan).
    pub fn report(&self) -> ValidationReport {
        let statuses = self
            .fds
            .iter()
            .zip(&self.trackers)
            .map(|(fd, t)| FdStatus { fd: fd.clone(), measures: t.measures() })
            .collect();
        ValidationReport { statuses, row_count: self.rows }
    }

    /// Work counters.
    pub fn stats(&self) -> ValidatorStats {
        self.stats
    }

    /// The epoch of the live relation this validator last observed.
    pub fn epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Subscribe to the validator's drift feed.
    pub fn subscribe(&mut self) -> SubscriptionId {
        self.feed.subscribe()
    }

    /// Drain unseen drift events for a subscription.
    pub fn poll(&mut self, id: SubscriptionId) -> Vec<FdDrift> {
        self.feed.poll(id)
    }

    /// Cancel a subscription so the feed stops retaining events for it.
    pub fn unsubscribe(&mut self, id: SubscriptionId) {
        self.feed.unsubscribe(id);
    }

    /// Publish an externally produced event to the drift feed (e.g. an
    /// alert-rule transition evaluated by a durable store on top of this
    /// validator's samples).
    pub fn publish_drift(&mut self, event: FdDrift) {
        self.feed.publish(event);
    }

    /// Advance the validator past a delta that was applied to `live`.
    /// Chooses per-row maintenance or a full rebuild (oversized delta /
    /// epoch gap, e.g. after a compaction), emits drift events to the feed
    /// and returns them. Events carry seq 0; durable callers that know the
    /// delta's WAL sequence should use [`IncrementalValidator::apply_at`].
    pub fn apply(&mut self, live: &LiveRelation, applied: &AppliedDelta) -> Vec<FdDrift> {
        self.apply_at(live, applied, 0)
    }

    /// [`IncrementalValidator::apply`] with drift provenance: `seq` is the
    /// durable WAL sequence number of the applied delta and is stamped on
    /// every drift event, alongside the antecedent keys of groups this
    /// delta newly flipped into violation.
    pub fn apply_at(
        &mut self,
        live: &LiveRelation,
        applied: &AppliedDelta,
        seq: u64,
    ) -> Vec<FdDrift> {
        let timer = evofd_obs::Timer::start();
        evofd_obs::metrics::TRACKER_DELTAS_TOTAL.inc();
        evofd_obs::metrics::TRACKER_ROWS_TOUCHED_TOTAL.add(applied.len() as u64);
        self.stats.deltas += 1;
        let before: Vec<Measures> = self.trackers.iter().map(FdTracker::measures).collect();

        let contiguous = !applied.is_empty() && applied.epoch == self.last_epoch + 1;
        let oversized = applied.len() as f64
            > self.config.full_recompute_fraction * live.row_count().max(1) as f64;
        if applied.is_empty() && live.epoch() == self.last_epoch {
            return Vec::new();
        }
        if contiguous && !oversized && live.epoch() == applied.epoch {
            if evofd_obs::enabled() && self.fd_hists.len() != self.fds.len() {
                let schema = live.relation().schema();
                self.fd_hists = self
                    .fds
                    .iter()
                    .map(|fd| {
                        evofd_obs::metrics::TRACKER_FD_APPLY_SECONDS.with_label(&fd.display(schema))
                    })
                    .collect();
            }
            // Per-tracker ownership: each task gets exclusive `&mut` over
            // its trackers and shared reads of the relation and delta, so
            // the fan-out needs no locks (see the module doc).
            let rel = live.relation();
            let deleted = &applied.deleted;
            let inserted = applied.inserted.clone();
            let fd_hists = &self.fd_hists;
            mintpool::par_for_each_mut(&mut self.trackers, |i, tracker| {
                let fd_timer = evofd_obs::Timer::start();
                for &row in deleted {
                    tracker.remove_row(rel, row);
                }
                for row in inserted.clone() {
                    tracker.insert_row(rel, row);
                }
                if let Some(h) = fd_hists.get(i) {
                    fd_timer.observe(h);
                }
            });
            self.stats.incremental += 1;
            evofd_obs::metrics::TRACKER_INCREMENTAL_TOTAL.inc();
        } else {
            self.rebuild(live);
        }
        self.last_epoch = live.epoch();
        self.rows = live.row_count();

        let mut events = Vec::new();
        for (i, before_m) in before.iter().enumerate() {
            let after_m = self.trackers[i].measures();
            let groups = self.render_new_violating(live, i);
            self.drift_events(i, before_m, &after_m, live.epoch(), seq, &groups, &mut events);
        }
        self.stats.events += events.len() as u64;
        evofd_obs::metrics::TRACKER_DRIFT_EVENTS_TOTAL.add(events.len() as u64);
        for e in &events {
            self.feed.publish(e.clone());
        }
        timer.observe(&evofd_obs::metrics::TRACKER_APPLY_SECONDS);
        events
    }

    /// Rebuild every tracker from the live rows (used for oversized deltas
    /// and after compactions; also callable directly after out-of-band
    /// mutations).
    pub fn resync(&mut self, live: &LiveRelation) {
        self.rebuild(live);
        self.last_epoch = live.epoch();
        self.rows = live.row_count();
    }

    fn rebuild(&mut self, live: &LiveRelation) {
        let fds = &self.fds;
        let limit = self.config.tracker_memory_limit;
        mintpool::par_for_each_mut(&mut self.trackers, |i, tracker| {
            *tracker = FdTracker::build(&fds[i], live.relation(), live.live_rows(), limit);
        });
        self.stats.full_recomputes += 1;
        evofd_obs::metrics::TRACKER_REBUILDS_TOTAL.inc();
    }

    /// Cap on rendered group keys per drift event: enough to pinpoint the
    /// offending antecedents without bloating the durable history.
    const MAX_PROVENANCE_GROUPS: usize = 8;

    /// Drain FD `i`'s newly-violating antecedent keys and render them
    /// against the relation's dictionaries ("a|b" per key, sorted by code
    /// tuple, capped at [`Self::MAX_PROVENANCE_GROUPS`]).
    fn render_new_violating(&mut self, live: &LiveRelation, i: usize) -> Vec<String> {
        let keys = self.trackers[i].take_new_violating();
        if keys.is_empty() {
            return Vec::new();
        }
        let rel = live.relation();
        let attrs: Vec<evofd_storage::AttrId> = self.trackers[i].lhs_attrs().to_vec();
        keys.iter()
            .take(Self::MAX_PROVENANCE_GROUPS)
            .map(|key| {
                let cells: Vec<String> = attrs
                    .iter()
                    .zip(key.iter())
                    .map(|(&a, &code)| {
                        if code == evofd_storage::NULL_CODE {
                            "NULL".to_string()
                        } else {
                            rel.column(a).dict().decode(code).to_string()
                        }
                    })
                    .collect();
                cells.join("|")
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn drift_events(
        &self,
        i: usize,
        before: &Measures,
        after: &Measures,
        epoch: u64,
        seq: u64,
        groups: &[String],
        out: &mut Vec<FdDrift>,
    ) {
        let base = |kind: DriftKind| FdDrift {
            fd_index: i,
            fd: self.fds[i].clone(),
            kind,
            confidence_before: before.confidence,
            confidence_after: after.confidence,
            epoch,
            seq,
            groups: groups.to_vec(),
        };
        match (before.is_exact(), after.is_exact()) {
            (true, false) => out.push(base(DriftKind::BecameViolated)),
            (false, true) => out.push(base(DriftKind::BecameExact)),
            _ => {}
        }
        for &t in &self.config.confidence_thresholds {
            let (b, a) = (before.confidence, after.confidence);
            if b < t && a >= t {
                out.push(base(DriftKind::ConfidenceCrossed { threshold: t, upward: true }));
            } else if b >= t && a < t {
                out.push(base(DriftKind::ConfidenceCrossed { threshold: t, upward: false }));
            }
        }
    }

    /// Convenience check used by tests and callers that want certainty:
    /// recompute everything from a canonical snapshot and compare with the
    /// maintained state. Returns the batch-computed report.
    pub fn verify_against(&self, snapshot: &Relation) -> ValidationReport {
        validate(snapshot, &self.fds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Delta;
    use evofd_storage::{relation_of_strs, DistinctCache, Value};

    fn srow(a: &str, b: &str, c: &str) -> Vec<Value> {
        vec![Value::str(a), Value::str(b), Value::str(c)]
    }

    fn setup() -> (LiveRelation, IncrementalValidator) {
        let rel = relation_of_strs(
            "t",
            &["X", "Y", "Z"],
            &[&["a", "1", "p"], &["b", "2", "p"], &["c", "3", "q"]],
        )
        .unwrap();
        let fds = vec![
            Fd::parse(rel.schema(), "X -> Y").unwrap(),
            Fd::parse(rel.schema(), "Z -> Y").unwrap(), // violated from the start
        ];
        let live = LiveRelation::new(rel);
        let validator = IncrementalValidator::new(&live, fds);
        (live, validator)
    }

    fn assert_matches_full(live: &LiveRelation, v: &IncrementalValidator) {
        let snap = live.snapshot();
        let full = v.verify_against(&snap);
        for (i, status) in full.statuses.iter().enumerate() {
            assert_eq!(v.measures(i), status.measures, "FD #{i} measures diverged");
            let report = evofd_core::violations(&snap, &v.fds()[i]);
            let summary = v.summary(i);
            assert_eq!(summary.violating_groups, report.groups.len(), "FD #{i} groups");
            assert_eq!(summary.violating_rows, report.violating_rows(), "FD #{i} rows");
            assert_eq!(summary.total_rows, snap.row_count());
        }
    }

    #[test]
    fn initial_state_matches_batch() {
        let (live, v) = setup();
        assert!(v.is_exact(0));
        assert!(!v.is_exact(1));
        assert_matches_full(&live, &v);
        assert_eq!(v.report().violation_count(), 1);
    }

    #[test]
    fn insert_delete_cycle_stays_in_sync_and_emits_drift() {
        let (mut live, mut v) = setup();
        let sub = v.subscribe();

        // Insert a row conflicting with X -> Y.
        let applied = live.apply(&Delta::inserting(vec![srow("a", "9", "p")])).unwrap();
        let drift = v.apply(&live, &applied);
        assert_eq!(drift.len(), 1);
        assert!(matches!(drift[0].kind, DriftKind::BecameViolated));
        assert_eq!(drift[0].fd_index, 0);
        assert_matches_full(&live, &v);

        // Delete it again: the FD is repaired by the data.
        let row = live.find_live_row(&srow("a", "9", "p")).unwrap();
        let applied = live.apply(&Delta::deleting([row])).unwrap();
        let drift = v.apply(&live, &applied);
        assert!(matches!(drift[0].kind, DriftKind::BecameExact));
        assert_matches_full(&live, &v);

        let polled = v.poll(sub);
        assert_eq!(polled.len(), 2, "feed carried both events");
        assert_eq!(v.stats().incremental, 2);
        assert_eq!(v.stats().full_recomputes, 0);
    }

    #[test]
    fn oversized_delta_triggers_full_recompute() {
        let (mut live, mut v) = setup();
        let rows: Vec<Vec<Value>> =
            (0..50).map(|i| srow(&format!("x{i}"), &format!("{i}"), "p")).collect();
        let applied = live.apply(&Delta::inserting(rows)).unwrap();
        v.apply(&live, &applied);
        assert_eq!(v.stats().full_recomputes, 1, "50 rows into 3 is oversized");
        assert_eq!(v.stats().incremental, 0);
        assert_matches_full(&live, &v);
    }

    #[test]
    fn compaction_epoch_gap_forces_rebuild() {
        let (mut live, mut v) = setup();
        let applied = live.apply(&Delta::deleting([0])).unwrap();
        v.apply(&live, &applied);
        assert_eq!(v.stats().incremental, 1);
        // Compact out of band: codes and row ids all change.
        assert!(live.compact() > 0);
        let applied = live.apply(&Delta::inserting(vec![srow("d", "4", "q")])).unwrap();
        let _ = v.apply(&live, &applied);
        assert_eq!(v.stats().full_recomputes, 1, "epoch gap detected");
        assert_matches_full(&live, &v);
    }

    #[test]
    fn threshold_crossings_fire_both_directions() {
        let rel = relation_of_strs("t", &["X", "Y"], &[&["a", "1"]]).unwrap();
        let fd = Fd::parse(rel.schema(), "X -> Y").unwrap();
        let mut live = LiveRelation::new(rel);
        let config = ValidatorConfig {
            confidence_thresholds: vec![0.75],
            full_recompute_fraction: 10.0, // keep the incremental path
            ..ValidatorConfig::default()
        };
        let mut v = IncrementalValidator::with_config(&live, vec![fd], config);

        // Push confidence to 0.5: crosses 0.75 downward (and BecameViolated).
        let applied =
            live.apply(&Delta::inserting(vec![vec![Value::str("a"), Value::str("2")]])).unwrap();
        let drift = v.apply(&live, &applied);
        assert!(drift
            .iter()
            .any(|d| matches!(d.kind, DriftKind::ConfidenceCrossed { upward: false, .. })));
        // Adding distinct clean groups raises confidence back over 0.75:
        // 4 clean groups + the dirty pair = 5/6 ≈ 0.83.
        let rows: Vec<Vec<Value>> = (0..4)
            .map(|i| vec![Value::str(format!("c{i}")), Value::str(format!("y{i}"))])
            .collect();
        let applied = live.apply(&Delta::inserting(rows)).unwrap();
        let drift = v.apply(&live, &applied);
        assert!(drift
            .iter()
            .any(|d| matches!(d.kind, DriftKind::ConfidenceCrossed { upward: true, .. })));
    }

    #[test]
    fn report_matches_validate_shape() {
        let (live, v) = setup();
        let report = v.report();
        let full = validate(&live.snapshot(), v.fds());
        assert_eq!(report.row_count, full.row_count);
        assert_eq!(report.violation_count(), full.violation_count());
        for (a, b) in report.statuses.iter().zip(&full.statuses) {
            assert_eq!(a.measures, b.measures);
        }
    }

    #[test]
    fn zero_fd_validator_still_reports_row_count() {
        let rel = relation_of_strs("t", &["X"], &[&["a"], &["b"], &["c"]]).unwrap();
        let mut live = LiveRelation::new(rel);
        let mut v = IncrementalValidator::new(&live, Vec::new());
        assert_eq!(v.report().row_count, 3);
        let applied = live.apply(&Delta::deleting([0])).unwrap();
        v.apply(&live, &applied);
        assert_eq!(v.report().row_count, 2);
        assert!(v.report().all_satisfied(), "vacuously");
    }

    #[test]
    fn summary_materializes_real_report() {
        let (mut live, mut v) = setup();
        let applied = live.apply(&Delta::inserting(vec![srow("a", "9", "p")])).unwrap();
        v.apply(&live, &applied);
        let summary = v.summary(0);
        assert!(!summary.is_clean());
        let report = summary.materialize(&live);
        assert_eq!(report.groups.len(), summary.violating_groups);
        assert_eq!(report.violating_rows(), summary.violating_rows);
        assert!((summary.violation_ratio() - report.violation_ratio()).abs() < 1e-12);
    }

    #[test]
    fn tracker_snapshots_round_trip_through_validator() {
        let (mut live, mut v) = setup();
        let applied = live.apply(&Delta::inserting(vec![srow("a", "9", "p")])).unwrap();
        v.apply(&live, &applied);
        let applied = live.apply(&Delta::deleting([1])).unwrap();
        v.apply(&live, &applied);

        let snaps = v.export_trackers();
        let rebuilt = IncrementalValidator::from_tracker_snapshots(
            &live,
            v.fds().to_vec(),
            v.config().clone(),
            &snaps,
        )
        .unwrap();
        for i in 0..v.fds().len() {
            assert_eq!(rebuilt.measures(i), v.measures(i), "FD #{i}");
            assert_eq!(rebuilt.summary(i), v.summary(i), "FD #{i}");
        }
        assert_eq!(rebuilt.epoch(), live.epoch());
        assert_matches_full(&live, &rebuilt);

        // The rebuilt validator keeps tracking incrementally.
        let mut rebuilt = rebuilt;
        let applied = live.apply(&Delta::inserting(vec![srow("e", "5", "r")])).unwrap();
        rebuilt.apply(&live, &applied);
        assert_eq!(rebuilt.stats().incremental, 1);
        assert_matches_full(&live, &rebuilt);
    }

    #[test]
    fn from_tracker_snapshots_validates_shape() {
        let (live, v) = setup();
        let snaps = v.export_trackers();
        // Wrong snapshot count.
        let err = IncrementalValidator::from_tracker_snapshots(
            &live,
            v.fds().to_vec(),
            ValidatorConfig::default(),
            &snaps[..1],
        )
        .unwrap_err();
        assert!(matches!(err, IncrementalError::StateMismatch { .. }));
        // Row-count disagreement.
        let mut short = live.clone();
        let applied = short.apply(&Delta::deleting([0])).unwrap();
        assert_eq!(applied.deleted, vec![0]);
        let err = IncrementalValidator::from_tracker_snapshots(
            &short,
            v.fds().to_vec(),
            ValidatorConfig::default(),
            &snaps,
        )
        .unwrap_err();
        assert!(matches!(err, IncrementalError::StateMismatch { .. }));
    }

    #[test]
    fn measures_agree_with_epoch_synced_cache() {
        let (mut live, mut v) = setup();
        let mut cache = DistinctCache::new();
        cache.sync_epoch(live.epoch());
        let snap = live.snapshot();
        let m0 = Measures::compute(&snap, &v.fds()[0].clone(), &mut cache);
        assert_eq!(m0, v.measures(0));
        let applied = live.apply(&Delta::inserting(vec![srow("a", "9", "p")])).unwrap();
        v.apply(&live, &applied);
        assert!(cache.sync_epoch(live.epoch()), "cache invalidated by mutation");
        let snap = live.snapshot();
        let m1 = Measures::compute(&snap, &v.fds()[0].clone(), &mut cache);
        assert_eq!(m1, v.measures(0));
    }
}
