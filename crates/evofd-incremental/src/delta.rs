//! Batched mutations: the unit of change a [`crate::LiveRelation`] applies.

use std::ops::Range;

use evofd_storage::Value;

/// A batch of row insertions and deletions, applied atomically.
///
/// Deletions name **physical row ids** of the live relation (the ids
/// reported by [`crate::LiveRelation`]; tombstoned rows keep their ids
/// until compaction, so ids are stable between compactions). Inserts are
/// full tuples validated against the schema on application.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    /// Tuples to append.
    pub inserts: Vec<Vec<Value>>,
    /// Physical row ids to tombstone.
    pub deletes: Vec<usize>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// A pure-insert delta.
    pub fn inserting<I: IntoIterator<Item = Vec<Value>>>(rows: I) -> Delta {
        Delta { inserts: rows.into_iter().collect(), deletes: Vec::new() }
    }

    /// A pure-delete delta.
    pub fn deleting<I: IntoIterator<Item = usize>>(rows: I) -> Delta {
        Delta { inserts: Vec::new(), deletes: rows.into_iter().collect() }
    }

    /// Add one insert (builder style).
    pub fn insert(mut self, row: Vec<Value>) -> Delta {
        self.inserts.push(row);
        self
    }

    /// Add one delete (builder style).
    pub fn delete(mut self, row: usize) -> Delta {
        self.deletes.push(row);
        self
    }

    /// Number of row changes carried (inserts + deletes).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True iff the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// What a successful [`crate::LiveRelation::apply`] did — the record an
/// [`crate::IncrementalValidator`] consumes to update its state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedDelta {
    /// Physical ids of the appended rows (contiguous at the tail).
    pub inserted: Range<usize>,
    /// Physical ids tombstoned by this delta.
    pub deleted: Vec<usize>,
    /// The live relation's epoch after this delta.
    pub epoch: u64,
}

impl AppliedDelta {
    /// Number of row changes applied.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// True iff nothing changed.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let d = Delta::new().insert(vec![Value::Int(1)]).insert(vec![Value::Int(2)]).delete(0);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(Delta::inserting(vec![vec![Value::Int(1)]]).len(), 1);
        assert_eq!(Delta::deleting([4, 5]).deletes, vec![4, 5]);
        assert!(Delta::new().is_empty());
    }

    #[test]
    fn applied_delta_len() {
        let a = AppliedDelta { inserted: 3..5, deleted: vec![0], epoch: 1 };
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        let b = AppliedDelta { inserted: 0..0, deleted: vec![], epoch: 2 };
        assert!(b.is_empty());
    }
}
