//! # evofd-incremental
//!
//! A **delta-maintained FD engine** for live, mutating relations — the
//! streaming counterpart of the batch pipeline in `evofd-core`.
//!
//! The paper (Mazuran et al., EDBT 2016) frames FD evolution as a reaction
//! to data drifting away from its declared constraints, but its method —
//! like the rest of this reproduction before this crate — recomputes every
//! `COUNT(DISTINCT …)` from scratch per check. Under write traffic that is
//! O(n) per mutation. Following the incremental-maintenance line of work
//! (e.g. EAIFD), this crate maintains the paper's three counts `|π_X|`,
//! `|π_XY|`, `|π_Y|` — and with them confidence, goodness, ε_CB and the
//! violating-group aggregate — in **O(changed rows)** per batch:
//!
//! * [`LiveRelation`] — an append/tombstone wrapper over
//!   [`evofd_storage::Relation`] applying atomic [`Delta`] batches.
//!   Appends re-use dictionary codes; deletes tombstone in place, so row
//!   ids and codes stay stable between compactions. Every mutation bumps
//!   an **epoch** that [`evofd_storage::DistinctCache::sync_epoch`]
//!   consumes to avoid serving stale counts.
//! * [`IncrementalValidator`] — per-FD group-count trackers updated for
//!   only the touched rows, with a configurable fall-back to full
//!   recompute when a delta exceeds a fraction of the relation (or an
//!   epoch gap reveals a compaction). Its [`Measures`] and
//!   [`ViolationSummary`] numbers are *exactly* what a from-scratch batch
//!   computation returns — property-tested over random delta sequences.
//! * [`ChangeFeed`] / [`FdDrift`] — a poll-based subscription stream: FDs
//!   newly violated, repaired by the data, or crossing confidence
//!   thresholds. This is the signal that drives a designer loop
//!   ([`evofd_core::AdvisorSession`]) from a stream instead of a snapshot
//!   (see `examples/streaming_evolution.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use evofd_core::Fd;
//! use evofd_incremental::{Delta, IncrementalValidator, LiveRelation};
//! use evofd_storage::{relation_of_strs, Value};
//!
//! let rel = relation_of_strs("places", &["Zip", "City"], &[
//!     &["10211", "NY"],
//!     &["60601", "Chicago"],
//! ]).unwrap();
//! let fd = Fd::parse(rel.schema(), "Zip -> City").unwrap();
//!
//! let mut live = LiveRelation::new(rel);
//! let mut validator = IncrementalValidator::new(&live, vec![fd]);
//! let feed = validator.subscribe();
//!
//! // A batch of writes: one insert that contradicts Zip -> City.
//! let delta = Delta::inserting(vec![vec![Value::str("10211"), Value::str("Boston")]]);
//! let applied = live.apply(&delta).unwrap();
//! validator.apply(&live, &applied);
//!
//! let drift = validator.poll(feed);
//! assert_eq!(drift.len(), 1, "Zip -> City drifted");
//! assert!(!validator.is_exact(0));
//! assert_eq!(validator.summary(0).violating_rows, 2);
//! ```

#![warn(missing_docs)]

pub mod advisor;
pub mod delta;
pub mod error;
pub mod feed;
pub mod index;
pub mod live;
mod tracker;
pub mod validator;

pub use advisor::{AdvisorStats, DecisionAction, DecisionRecord, LiveAdvisor, LiveFdState};
pub use delta::{AppliedDelta, Delta};
pub use error::{IncrementalError, Result};
pub use feed::{ChangeFeed, DriftKind, FdDrift, SubscriptionId};
pub use index::ColumnIndex;
pub use live::{LiveRelation, DEFAULT_COMPACT_THRESHOLD};
pub use tracker::{GroupCounts, TrackerSnapshot};
pub use validator::{IncrementalValidator, ValidatorConfig, ValidatorStats, ViolationSummary};

// Re-exported for downstream convenience (the validator's vocabulary).
pub use evofd_core::{Fd, Measures};
