//! Per-FD incremental state: group-count maps that answer the paper's
//! three distinct-projection counts — `|π_X|`, `|π_XY|`, `|π_Y|` — and the
//! violating-group aggregate in O(1) per touched row.
//!
//! Keys are tuples of dictionary codes, which [`crate::LiveRelation`]
//! keeps stable between compactions (appends re-use codes, deletes only
//! tombstone). NULL cells carry the storage sentinel code, so NULL rows
//! group together exactly as `evofd_storage::count_distinct` groups them.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use evofd_core::{Fd, Measures};
use evofd_storage::{AttrId, Relation};

/// One antecedent group: how many live tuples carry this X-projection and
/// how they distribute over Y-projections.
#[derive(Debug, Clone, Default)]
struct LhsGroup {
    total: u32,
    rhs: HashMap<Box<[u32]>, u32>,
}

/// Incrementally maintained measure state for one FD.
#[derive(Debug, Clone)]
pub(crate) struct FdTracker {
    lhs: Vec<AttrId>,
    rhs: Vec<AttrId>,
    groups: HashMap<Box<[u32]>, LhsGroup>,
    rhs_counts: HashMap<Box<[u32]>, u32>,
    /// `|π_XY|` = total distinct (X,Y) pairs across groups.
    pair_count: usize,
    violating_groups: usize,
    violating_rows: usize,
    total_rows: usize,
    /// Antecedent keys that flipped clean → violating since the last
    /// [`FdTracker::take_new_violating`] call. Only touched on the rare
    /// transition edges, so maintenance stays off the per-row hot path.
    new_violating: HashSet<Box<[u32]>>,
}

fn key(rel: &Relation, attrs: &[AttrId], row: usize) -> Box<[u32]> {
    attrs.iter().map(|&a| rel.column(a).code_at(row)).collect()
}

impl FdTracker {
    /// Empty state for an FD (no rows seen).
    pub(crate) fn new(fd: &Fd) -> FdTracker {
        FdTracker {
            lhs: fd.lhs().iter().collect(),
            rhs: fd.rhs().iter().collect(),
            groups: HashMap::new(),
            rhs_counts: HashMap::new(),
            pair_count: 0,
            violating_groups: 0,
            violating_rows: 0,
            total_rows: 0,
            new_violating: HashSet::new(),
        }
    }

    /// Build from scratch over an explicit row set.
    pub(crate) fn build<I: IntoIterator<Item = usize>>(
        fd: &Fd,
        rel: &Relation,
        rows: I,
    ) -> FdTracker {
        let mut t = FdTracker::new(fd);
        for row in rows {
            t.insert_row(rel, row);
        }
        // A from-scratch build has no "before" state to diff against:
        // every violating group would read as newly violating.
        t.new_violating.clear();
        t
    }

    /// Account one live row.
    pub(crate) fn insert_row(&mut self, rel: &Relation, row: usize) {
        let lkey = key(rel, &self.lhs, row);
        let rkey = key(rel, &self.rhs, row);
        *self.rhs_counts.entry(rkey.clone()).or_insert(0) += 1;
        let group = self.groups.entry(lkey).or_default();
        let was_violating = group.rhs.len() >= 2;
        if was_violating {
            self.violating_groups -= 1;
            self.violating_rows -= group.total as usize;
        }
        match group.rhs.entry(rkey) {
            Entry::Occupied(mut e) => *e.get_mut() += 1,
            Entry::Vacant(v) => {
                v.insert(1);
                self.pair_count += 1;
            }
        }
        group.total += 1;
        if group.rhs.len() >= 2 {
            self.violating_groups += 1;
            self.violating_rows += group.total as usize;
            if !was_violating {
                // Transition edge only: re-deriving the key here keeps the
                // clean-row fast path free of extra allocations.
                self.new_violating.insert(key(rel, &self.lhs, row));
            }
        }
        self.total_rows += 1;
    }

    /// Un-account one row (its codes must still be readable, i.e. the row
    /// is tombstoned, not compacted away).
    pub(crate) fn remove_row(&mut self, rel: &Relation, row: usize) {
        let lkey = key(rel, &self.lhs, row);
        let rkey = key(rel, &self.rhs, row);
        match self.rhs_counts.entry(rkey.clone()) {
            Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(_) => unreachable!("removing a row the tracker never saw"),
        }
        let group = self.groups.get_mut(&lkey).expect("group exists for a tracked row");
        let was_violating = group.rhs.len() >= 2;
        if was_violating {
            self.violating_groups -= 1;
            self.violating_rows -= group.total as usize;
        }
        match group.rhs.entry(rkey) {
            Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                    self.pair_count -= 1;
                }
            }
            Entry::Vacant(_) => unreachable!("pair exists for a tracked row"),
        }
        group.total -= 1;
        if group.total == 0 {
            self.groups.remove(&lkey);
            self.new_violating.remove(&lkey);
        } else if group.rhs.len() >= 2 {
            self.violating_groups += 1;
            self.violating_rows += group.total as usize;
        } else if was_violating {
            self.new_violating.remove(&lkey);
        }
        self.total_rows -= 1;
    }

    /// The FD's measures over the tracked rows — exactly what
    /// [`Measures::compute`] returns on a canonical snapshot.
    pub(crate) fn measures(&self) -> Measures {
        let distinct_lhs = self.groups.len();
        let distinct_lhs_rhs = self.pair_count;
        let distinct_rhs = self.rhs_counts.len();
        let confidence =
            if distinct_lhs_rhs == 0 { 1.0 } else { distinct_lhs as f64 / distinct_lhs_rhs as f64 };
        Measures {
            distinct_lhs,
            distinct_lhs_rhs,
            distinct_rhs,
            confidence,
            goodness: distinct_lhs as i64 - distinct_rhs as i64,
        }
    }

    /// Number of X-groups currently associated with ≥ 2 Y-projections.
    pub(crate) fn violating_groups(&self) -> usize {
        self.violating_groups
    }

    /// Number of live tuples inside violating groups.
    pub(crate) fn violating_rows(&self) -> usize {
        self.violating_rows
    }

    /// Number of live tuples tracked.
    pub(crate) fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Minimal number of tuples whose deletion satisfies the FD (the `g3`
    /// numerator): per X-group, everything but the plurality Y-projection
    /// must go. O(groups) over the maintained counts — no relation scan.
    pub(crate) fn g3_removals(&self) -> usize {
        self.groups
            .values()
            .map(|g| g.total as usize - g.rhs.values().copied().max().unwrap_or(0) as usize)
            .sum()
    }

    /// Drain the antecedent keys that flipped clean → violating since the
    /// last call, in canonical sorted order (drift provenance). Rendered
    /// against the relation's dictionaries by the caller.
    pub(crate) fn take_new_violating(&mut self) -> Vec<Box<[u32]>> {
        let mut keys: Vec<Box<[u32]>> = self.new_violating.drain().collect();
        keys.sort_unstable();
        keys
    }

    /// The attribute ids of the FD's antecedent, in tracker key order.
    pub(crate) fn lhs_attrs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// Export the group-count state in a canonical (key-sorted) order —
    /// the serializable core of the tracker. Everything else (`rhs_counts`,
    /// `pair_count`, the violation aggregate, `total_rows`) is derivable
    /// from the groups and is rebuilt on import.
    pub(crate) fn export(&self) -> TrackerSnapshot {
        let mut groups: Vec<GroupCounts> = self
            .groups
            .iter()
            .map(|(lkey, g)| {
                let mut rhs: Vec<(Vec<u32>, u32)> =
                    g.rhs.iter().map(|(rkey, &n)| (rkey.to_vec(), n)).collect();
                rhs.sort_unstable();
                GroupCounts { lhs_key: lkey.to_vec(), rhs }
            })
            .collect();
        groups.sort_unstable_by(|a, b| a.lhs_key.cmp(&b.lhs_key));
        TrackerSnapshot { groups }
    }

    /// Rebuild a tracker from exported group counts. The derived
    /// aggregates are recomputed, so a snapshot only carries the minimal
    /// state. Zero counts are rejected (they can never be exported).
    pub(crate) fn import(fd: &Fd, snapshot: &TrackerSnapshot) -> Option<FdTracker> {
        let mut t = FdTracker::new(fd);
        for g in &snapshot.groups {
            let mut group = LhsGroup::default();
            for (rkey, n) in &g.rhs {
                if *n == 0 {
                    return None;
                }
                let rkey: Box<[u32]> = rkey.clone().into_boxed_slice();
                *t.rhs_counts.entry(rkey.clone()).or_insert(0) += n;
                if group.rhs.insert(rkey, *n).is_some() {
                    return None; // duplicate RHS key within one group
                }
                t.pair_count += 1;
                group.total += n;
            }
            if group.total == 0 {
                return None;
            }
            if group.rhs.len() >= 2 {
                t.violating_groups += 1;
                t.violating_rows += group.total as usize;
            }
            t.total_rows += group.total as usize;
            if t.groups.insert(g.lhs_key.clone().into_boxed_slice(), group).is_some() {
                return None; // duplicate LHS key
            }
        }
        Some(t)
    }
}

/// Serializable per-FD tracker state: the `X-group → (Y-projection →
/// count)` map keyed by dictionary-code tuples, exported in a canonical
/// sorted order so snapshots of equal states are byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerSnapshot {
    /// One entry per distinct X-projection with live rows.
    pub groups: Vec<GroupCounts>,
}

/// One antecedent group of a [`TrackerSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupCounts {
    /// The X-projection's dictionary codes.
    pub lhs_key: Vec<u32>,
    /// Distinct Y-projections in this group with their live-row counts,
    /// sorted by key.
    pub rhs: Vec<(Vec<u32>, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_core::violations;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["X", "Y"],
            &[&["a", "1"], &["a", "2"], &["a", "1"], &["b", "3"], &["b", "3"], &["c", "4"]],
        )
        .unwrap()
    }

    fn check_against_full(tracker: &FdTracker, rel: &Relation, fd: &Fd) {
        let full = Measures::compute(rel, fd, &mut evofd_storage::DistinctCache::new());
        assert_eq!(tracker.measures(), full);
        let report = violations(rel, fd);
        assert_eq!(tracker.violating_groups(), report.groups.len());
        assert_eq!(tracker.violating_rows(), report.violating_rows());
        assert_eq!(tracker.total_rows(), rel.row_count());
    }

    #[test]
    fn build_matches_batch_computation() {
        let r = rel();
        for text in ["X -> Y", "Y -> X", "X, Y -> X"] {
            let fd = Fd::parse(r.schema(), text).unwrap();
            let t = FdTracker::build(&fd, &r, 0..r.row_count());
            check_against_full(&t, &r, &fd);
        }
    }

    #[test]
    fn insert_then_remove_round_trips() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let mut t = FdTracker::build(&fd, &r, 0..r.row_count());
        // Remove the violating row (X=a, Y=2): group becomes clean.
        t.remove_row(&r, 1);
        let reduced = r.gather(&[0, 2, 3, 4, 5]);
        check_against_full(&t, &reduced, &fd);
        // Put it back: identical to a fresh build.
        t.insert_row(&r, 1);
        check_against_full(&t, &r, &fd);
    }

    #[test]
    fn empty_tracker_is_vacuously_exact() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let t = FdTracker::new(&fd);
        let m = t.measures();
        assert_eq!(m.confidence, 1.0);
        assert!(m.is_exact());
        assert_eq!(m.goodness, 0);
        assert_eq!(t.violating_rows(), 0);
    }

    #[test]
    fn export_import_round_trips() {
        let r = rel();
        for text in ["X -> Y", "Y -> X", "X, Y -> X"] {
            let fd = Fd::parse(r.schema(), text).unwrap();
            let t = FdTracker::build(&fd, &r, 0..r.row_count());
            let snap = t.export();
            let rebuilt = FdTracker::import(&fd, &snap).expect("well-formed snapshot");
            check_against_full(&rebuilt, &r, &fd);
            assert_eq!(rebuilt.export(), snap, "canonical order is stable");
        }
    }

    #[test]
    fn import_rejects_malformed_snapshots() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let good = FdTracker::build(&fd, &r, 0..r.row_count()).export();
        // Zero count.
        let mut bad = good.clone();
        bad.groups[0].rhs[0].1 = 0;
        assert!(FdTracker::import(&fd, &bad).is_none());
        // Duplicate LHS key.
        let mut bad = good.clone();
        let dup = bad.groups[0].clone();
        bad.groups.push(dup);
        assert!(FdTracker::import(&fd, &bad).is_none());
        // Duplicate RHS key within a group.
        let mut bad = good.clone();
        let dup = bad.groups[0].rhs[0].clone();
        bad.groups[0].rhs.push(dup);
        assert!(FdTracker::import(&fd, &bad).is_none());
        // Empty group (no RHS entries).
        let mut bad = good;
        bad.groups[0].rhs.clear();
        assert!(FdTracker::import(&fd, &bad).is_none());
    }

    #[test]
    fn removing_every_row_empties_state() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let mut t = FdTracker::build(&fd, &r, 0..r.row_count());
        for row in 0..r.row_count() {
            t.remove_row(&r, row);
        }
        assert_eq!(t.total_rows(), 0);
        assert_eq!(t.measures().distinct_lhs, 0);
        assert_eq!(t.violating_groups(), 0);
    }
}
