//! Per-FD incremental state: group-count maps that answer the paper's
//! three distinct-projection counts — `|π_X|`, `|π_XY|`, `|π_Y|` — and the
//! violating-group aggregate in O(1) per touched row.
//!
//! Keys are tuples of dictionary codes, which [`crate::LiveRelation`]
//! keeps stable between compactions (appends re-use codes, deletes only
//! tombstone). NULL cells carry the storage sentinel code, so NULL rows
//! group together exactly as `evofd_storage::count_distinct` groups them.
//!
//! ## Representations
//!
//! The tracker reuses the [`evofd_core::fastkey`] machinery that took the
//! repair index from 3× to 20×+ and picks the cheapest faithful state per
//! FD, falling back losslessly when the data stops qualifying:
//!
//! * **Packed** — antecedent and consequent each at most four attributes,
//!   every key column NULL-free with a sub-2^16 dictionary: keys fold
//!   into single `u64` words, map entries shrink to cache-line size. The
//!   eligibility check is one OR + shift per row; the first wide code or
//!   NULL converts the whole state to General by unpacking every key —
//!   O(state), no relation rescan, byte-identical observables.
//! * **General** — inline/boxed [`Key`] tuples, still on the fast hasher
//!   and tiered groups.
//! * **Approx** — under a configured memory limit a tracker degrades to
//!   three fixed-size occupancy sketches (linear counting with per-bucket
//!   row counters, so deletes are exact). Measures become estimates, the
//!   violating aggregate a noise-gated lower bound, and drift provenance
//!   is unavailable; exact answers come from an on-demand transient
//!   rebuild (see `IncrementalValidator::exact_summary`). Sketch state is
//!   an order-independent function of the live row multiset, so replicas
//!   and recovery converge to identical state under the same limit.
//!
//! In every exact state the canonical [`TrackerSnapshot`] export is
//! byte-for-byte what the pre-packing tracker produced.

use std::hash::Hasher as _;

use evofd_core::fastkey::{key, try_packed_key, unpack_key, FastMap, GroupRhs, Key};
use evofd_core::{CodeHasher, Fd, Measures};
use evofd_storage::{AttrId, Relation};

/// Widest attribute set (antecedent or consequent) that can fold into a
/// single packed `u64` word at 16 bits per code.
const PACK_MAX_ATTRS: usize = 4;

/// Inserts between memory-limit checks (power of two; the check costs a
/// few arithmetic ops over map capacities, this just keeps it off the
/// per-row path entirely).
const DEGRADE_CHECK_MASK: usize = 0x3FF;

/// Sketch hash domain separators.
const SALT_LHS: u8 = 1;
const SALT_PAIR: u8 = 2;
const SALT_RHS: u8 = 3;

/// Hash-set with the fast code hasher.
type FastSet<K> = std::collections::HashSet<K, std::hash::BuildHasherDefault<CodeHasher>>;

/// One antecedent group: how many live tuples carry this X-projection and
/// how they distribute over Y-projections (tiered: see [`GroupRhs`]).
#[derive(Debug, Clone)]
struct LhsGroup<K> {
    total: u32,
    rhs: GroupRhs<K>,
}

/// Exact count state in one key representation (`u64` packed words or
/// generic [`Key`] tuples). All aggregate maintenance is representation-
/// agnostic; only key construction differs.
#[derive(Debug, Clone)]
struct CountState<K> {
    groups: FastMap<K, LhsGroup<K>>,
    rhs_counts: FastMap<K, u32>,
    /// `|π_XY|` = total distinct (X,Y) pairs across groups.
    pair_count: usize,
    violating_groups: usize,
    violating_rows: usize,
    /// Antecedent keys that flipped clean → violating since the last
    /// [`FdTracker::take_new_violating`] call. Only touched on the rare
    /// transition edges, so maintenance stays off the per-row hot path.
    new_violating: FastSet<K>,
}

impl<K> Default for CountState<K> {
    fn default() -> Self {
        CountState {
            groups: FastMap::default(),
            rhs_counts: FastMap::default(),
            pair_count: 0,
            violating_groups: 0,
            violating_rows: 0,
            new_violating: FastSet::default(),
        }
    }
}

impl<K: std::hash::Hash + Eq + Clone> CountState<K> {
    fn insert(&mut self, lkey: K, rkey: &K) {
        // Clone the RHS key only when a vacant slot actually needs to own
        // it — the occupied path (almost every row) stays allocation-free.
        if let Some(n) = self.rhs_counts.get_mut(rkey) {
            *n += 1;
        } else {
            self.rhs_counts.insert(rkey.clone(), 1);
        }
        match self.groups.entry(lkey) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(LhsGroup { total: 1, rhs: GroupRhs::new(rkey.clone()) });
                self.pair_count += 1;
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let was_violating = e.get().rhs.distinct() >= 2;
                if e.get_mut().rhs.insert(rkey) {
                    self.pair_count += 1;
                }
                e.get_mut().total += 1;
                if e.get().rhs.distinct() >= 2 {
                    if was_violating {
                        self.violating_rows += 1;
                    } else {
                        self.violating_groups += 1;
                        self.violating_rows += e.get().total as usize;
                        // Transition edge only: the entry already owns the
                        // key, so reuse it instead of re-deriving it from
                        // the row (and keep the clean fast path clone-free).
                        let lkey = e.key().clone();
                        self.new_violating.insert(lkey);
                    }
                }
            }
        }
    }

    fn remove(&mut self, lkey: &K, rkey: &K) {
        match self.rhs_counts.get_mut(rkey) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.rhs_counts.remove(rkey);
                }
            }
            None => unreachable!("removing a row the tracker never saw"),
        }
        let g = self.groups.get_mut(lkey).expect("group exists for a tracked row");
        let was_violating = g.rhs.distinct() >= 2;
        if was_violating {
            self.violating_groups -= 1;
            self.violating_rows -= g.total as usize;
        }
        if g.rhs.remove(rkey) {
            self.pair_count -= 1;
        }
        g.total -= 1;
        if g.total == 0 {
            self.groups.remove(lkey);
            self.new_violating.remove(lkey);
        } else if g.rhs.distinct() >= 2 {
            self.violating_groups += 1;
            self.violating_rows += g.total as usize;
        } else if was_violating {
            self.new_violating.remove(lkey);
        }
    }

    fn measures(&self) -> Measures {
        let distinct_lhs = self.groups.len();
        let distinct_lhs_rhs = self.pair_count;
        let distinct_rhs = self.rhs_counts.len();
        let confidence =
            if distinct_lhs_rhs == 0 { 1.0 } else { distinct_lhs as f64 / distinct_lhs_rhs as f64 };
        Measures {
            distinct_lhs,
            distinct_lhs_rhs,
            distinct_rhs,
            confidence,
            goodness: distinct_lhs as i64 - distinct_rhs as i64,
        }
    }

    fn g3_removals(&self) -> usize {
        self.groups.values().map(|g| g.total as usize - g.rhs.max_count() as usize).sum()
    }

    /// Estimated resident bytes: map capacities times entry sizes plus the
    /// spilled Few/Many storage approximated from the pair surplus (an
    /// O(1) read — the limit check runs every [`DEGRADE_CHECK_MASK`]+1
    /// inserts and must not scan the groups it is trying to bound).
    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let group_entry = size_of::<K>() + size_of::<LhsGroup<K>>() + 8;
        let rhs_entry = size_of::<K>() + 4 + 8;
        let spilled = self.pair_count.saturating_sub(self.groups.len()) * (rhs_entry + 16);
        self.groups.capacity() * group_entry + self.rhs_counts.capacity() * rhs_entry + spilled
    }
}

/// A fixed-size linear-counting sketch with per-bucket **row counters**:
/// inserts increment and deletes decrement the key's bucket, so occupancy
/// (buckets with ≥1 live row) is an exact, order-independent function of
/// the live multiset — deletions never corrupt it. The distinct-count
/// estimate is classic linear counting, `-m·ln(empty/m)`.
#[derive(Debug, Clone)]
struct Sketch {
    buckets: Box<[u32]>,
    occupied: usize,
}

impl Sketch {
    fn new(m: usize) -> Sketch {
        debug_assert!(m.is_power_of_two());
        Sketch { buckets: vec![0u32; m].into_boxed_slice(), occupied: 0 }
    }

    #[inline]
    fn add(&mut self, h: u64, n: u32) {
        let b = &mut self.buckets[(h as usize) & (self.buckets.len() - 1)];
        if *b == 0 {
            self.occupied += 1;
        }
        *b += n;
    }

    #[inline]
    fn remove(&mut self, h: u64) {
        let b = &mut self.buckets[(h as usize) & (self.buckets.len() - 1)];
        *b -= 1;
        if *b == 0 {
            self.occupied -= 1;
        }
    }

    fn distinct_estimate(&self) -> usize {
        let m = self.buckets.len();
        if self.occupied == 0 {
            return 0;
        }
        if self.occupied == m {
            // Saturated: linear counting is blind past full occupancy;
            // report its asymptotic ceiling.
            return ((m as f64) * (m as f64).ln()).round() as usize;
        }
        let mf = m as f64;
        (-mf * (((m - self.occupied) as f64) / mf).ln()).round() as usize
    }
}

/// Hash a code tuple into a sketch bucket address, domain-separated by
/// `salt` so the three sketches disagree on collisions.
fn hash_codes<I: IntoIterator<Item = u32>>(salt: u8, codes: I) -> u64 {
    let mut h = CodeHasher::default();
    h.write_u8(salt);
    for c in codes {
        h.write_u32(c);
    }
    h.finish()
}

/// Bucket count per sketch for a byte budget split across the tracker's
/// three sketches, rounded down to a power of two.
fn sketch_buckets(limit: usize) -> usize {
    let per_sketch = (limit / 3).max(1024) / 4;
    let up = per_sketch.next_power_of_two();
    let m = if up > per_sketch { up / 2 } else { up };
    m.clamp(256, 1 << 22)
}

/// Memory-bounded state: three occupancy sketches estimating `|π_X|`,
/// `|π_XY|` and `|π_Y|`.
#[derive(Debug, Clone)]
struct ApproxState {
    lhs: Sketch,
    pair: Sketch,
    rhs: Sketch,
}

/// The three distinct-count estimates, with the pair count clamped to the
/// group count plus the noise-gated violation surplus.
struct ApproxEstimates {
    lhs: usize,
    pairs: usize,
    rhs: usize,
    /// `max(0, est |π_XY| - est |π_X|)` after the noise gate: the
    /// estimated number of violating pairs (0 means "no violation the
    /// sketches can distinguish from their own error").
    extra: usize,
}

impl ApproxState {
    fn new(m: usize) -> ApproxState {
        ApproxState { lhs: Sketch::new(m), pair: Sketch::new(m), rhs: Sketch::new(m) }
    }

    fn add_row(&mut self, rel: &Relation, lhs: &[AttrId], rhs: &[AttrId], row: usize) {
        let code = |&a: &AttrId| rel.column(a).code_at(row);
        self.lhs.add(hash_codes(SALT_LHS, lhs.iter().map(code)), 1);
        self.pair.add(hash_codes(SALT_PAIR, lhs.iter().chain(rhs).map(code)), 1);
        self.rhs.add(hash_codes(SALT_RHS, rhs.iter().map(code)), 1);
    }

    fn remove_row(&mut self, rel: &Relation, lhs: &[AttrId], rhs: &[AttrId], row: usize) {
        let code = |&a: &AttrId| rel.column(a).code_at(row);
        self.lhs.remove(hash_codes(SALT_LHS, lhs.iter().map(code)));
        self.pair.remove(hash_codes(SALT_PAIR, lhs.iter().chain(rhs).map(code)));
        self.rhs.remove(hash_codes(SALT_RHS, rhs.iter().map(code)));
    }

    fn estimates(&self) -> ApproxEstimates {
        let lhs = self.lhs.distinct_estimate();
        let rhs = self.rhs.distinct_estimate();
        let raw_pairs = self.pair.distinct_estimate();
        // For an exact FD the two sketches estimate the SAME true count
        // with independent errors, so their difference is pure noise.
        // Gate it at ~4σ of the difference — linear counting at load
        // t = n/m has var(n̂) ≈ m(e^t − t − 1) — so clean FDs read as
        // exactly clean instead of flickering, at the cost of missing
        // violations smaller than the sketch's own resolution (the
        // documented trade; exact answers via the on-demand fallback).
        let surplus = raw_pairs.saturating_sub(lhs);
        let m = self.lhs.buckets.len() as f64;
        let load = lhs as f64 / m;
        let var = m * (load.exp() - load - 1.0).max(0.0);
        let gate = 4.0 * (2.0 * var).sqrt() + 8.0;
        let extra = if (surplus as f64) <= gate { 0 } else { surplus };
        ApproxEstimates { lhs, pairs: lhs + extra, rhs, extra }
    }
}

/// One tracker's state representation.
#[derive(Debug, Clone)]
enum State {
    Packed(CountState<u64>),
    General(CountState<Key>),
    Approx(ApproxState),
}

/// Incrementally maintained measure state for one FD.
#[derive(Debug, Clone)]
pub(crate) struct FdTracker {
    lhs: Vec<AttrId>,
    rhs: Vec<AttrId>,
    total_rows: usize,
    /// Byte budget above which the exact state degrades to sketches.
    memory_limit: Option<usize>,
    state: State,
}

impl FdTracker {
    /// Empty state for an FD (no rows seen), optimistically packed when
    /// both sides are narrow enough; the first non-packable row falls
    /// back.
    pub(crate) fn with_limit(fd: &Fd, memory_limit: Option<usize>) -> FdTracker {
        let lhs: Vec<AttrId> = fd.lhs().iter().collect();
        let rhs: Vec<AttrId> = fd.rhs().iter().collect();
        let state = if lhs.len() <= PACK_MAX_ATTRS && rhs.len() <= PACK_MAX_ATTRS {
            State::Packed(CountState::default())
        } else {
            State::General(CountState::default())
        };
        FdTracker { lhs, rhs, total_rows: 0, memory_limit, state }
    }

    /// Build from scratch over an explicit row set.
    pub(crate) fn build<I: IntoIterator<Item = usize>>(
        fd: &Fd,
        rel: &Relation,
        rows: I,
        memory_limit: Option<usize>,
    ) -> FdTracker {
        let mut t = FdTracker::with_limit(fd, memory_limit);
        // If a key column already holds NULLs or a wide dictionary, start
        // General instead of inserting packed and converting mid-build.
        if matches!(t.state, State::Packed(_)) {
            let packable = t.lhs.iter().chain(&t.rhs).all(|&a| {
                let col = rel.column(a);
                col.null_count() == 0 && col.dict().len() < (1 << 16)
            });
            if !packable {
                t.state = State::General(CountState::default());
            }
        }
        for row in rows {
            t.insert_row(rel, row);
        }
        t.maybe_degrade();
        // A from-scratch build has no "before" state to diff against:
        // every violating group would read as newly violating.
        t.clear_new_violating();
        evofd_obs::metrics::TRACKER_BUILDS_TOTAL.inc();
        t
    }

    /// Account one live row.
    pub(crate) fn insert_row(&mut self, rel: &Relation, row: usize) {
        match &mut self.state {
            State::Packed(s) => {
                match (try_packed_key(rel, &self.lhs, row), try_packed_key(rel, &self.rhs, row)) {
                    (Some(lkey), Some(rkey)) => s.insert(lkey, &rkey),
                    _ => {
                        // A wide code or NULL arrived mid-stream: unpack
                        // the whole state once, then insert generically.
                        self.unpack_state();
                        let State::General(s) = &mut self.state else { unreachable!() };
                        s.insert(key(rel, &self.lhs, row), &key(rel, &self.rhs, row));
                    }
                }
            }
            State::General(s) => s.insert(key(rel, &self.lhs, row), &key(rel, &self.rhs, row)),
            State::Approx(a) => a.add_row(rel, &self.lhs, &self.rhs, row),
        }
        self.total_rows += 1;
        if self.memory_limit.is_some() && self.total_rows & DEGRADE_CHECK_MASK == 0 {
            self.maybe_degrade();
        }
    }

    /// Un-account one row (its codes must still be readable, i.e. the row
    /// is tombstoned, not compacted away).
    pub(crate) fn remove_row(&mut self, rel: &Relation, row: usize) {
        match &mut self.state {
            State::Packed(s) => {
                // Every row a packed tracker holds was packable when it
                // was inserted, and codes are stable until compaction.
                let lkey = try_packed_key(rel, &self.lhs, row)
                    .expect("packed tracker only holds packable rows");
                let rkey = try_packed_key(rel, &self.rhs, row)
                    .expect("packed tracker only holds packable rows");
                s.remove(&lkey, &rkey);
            }
            State::General(s) => s.remove(&key(rel, &self.lhs, row), &key(rel, &self.rhs, row)),
            State::Approx(a) => a.remove_row(rel, &self.lhs, &self.rhs, row),
        }
        self.total_rows -= 1;
    }

    /// The FD's measures over the tracked rows — exactly what
    /// [`Measures::compute`] returns on a canonical snapshot, except in
    /// approximate mode where the distinct counts are sketch estimates.
    pub(crate) fn measures(&self) -> Measures {
        match &self.state {
            State::Packed(s) => s.measures(),
            State::General(s) => s.measures(),
            State::Approx(a) => {
                let e = a.estimates();
                let confidence = if e.pairs == 0 { 1.0 } else { e.lhs as f64 / e.pairs as f64 };
                Measures {
                    distinct_lhs: e.lhs,
                    distinct_lhs_rhs: e.pairs,
                    distinct_rhs: e.rhs,
                    confidence,
                    goodness: e.lhs as i64 - e.rhs as i64,
                }
            }
        }
    }

    /// Number of X-groups currently associated with ≥ 2 Y-projections (in
    /// approximate mode: the noise-gated estimate of violating pairs).
    pub(crate) fn violating_groups(&self) -> usize {
        match &self.state {
            State::Packed(s) => s.violating_groups,
            State::General(s) => s.violating_groups,
            State::Approx(a) => a.estimates().extra,
        }
    }

    /// Number of live tuples inside violating groups (estimated from the
    /// average group size in approximate mode).
    pub(crate) fn violating_rows(&self) -> usize {
        match &self.state {
            State::Packed(s) => s.violating_rows,
            State::General(s) => s.violating_rows,
            State::Approx(a) => {
                let e = a.estimates();
                if e.extra == 0 || e.lhs == 0 {
                    return 0;
                }
                // A violating group holds at least two rows; scale the
                // surplus by the mean group size and clamp to the total.
                let mean = self.total_rows / e.lhs.max(1);
                (e.extra * mean.max(2)).min(self.total_rows)
            }
        }
    }

    /// Number of live tuples tracked (exact in every mode).
    pub(crate) fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Minimal number of tuples whose deletion satisfies the FD (the `g3`
    /// numerator): per X-group, everything but the plurality Y-projection
    /// must go. O(groups) over the maintained counts — no relation scan.
    /// In approximate mode: a lower bound (each violating pair costs at
    /// least one removal).
    pub(crate) fn g3_removals(&self) -> usize {
        match &self.state {
            State::Packed(s) => s.g3_removals(),
            State::General(s) => s.g3_removals(),
            State::Approx(a) => a.estimates().extra,
        }
    }

    /// True when this tracker runs in memory-bounded approximate mode.
    pub(crate) fn is_approx(&self) -> bool {
        matches!(self.state, State::Approx(_))
    }

    /// The representation's display name (obs/tests).
    pub(crate) fn repr_name(&self) -> &'static str {
        match self.state {
            State::Packed(_) => "packed",
            State::General(_) => "general",
            State::Approx(_) => "approx",
        }
    }

    /// Install a (new) memory bound. Lowering it may degrade immediately;
    /// raising or clearing it never un-degrades — exact state went away —
    /// until the next rebuild.
    pub(crate) fn set_memory_limit(&mut self, limit: Option<usize>) {
        self.memory_limit = limit;
        self.maybe_degrade();
    }

    /// Drain the antecedent keys that flipped clean → violating since the
    /// last call, in canonical sorted order (drift provenance). Rendered
    /// against the relation's dictionaries by the caller. Empty in
    /// approximate mode (sketches keep no keys).
    pub(crate) fn take_new_violating(&mut self) -> Vec<Box<[u32]>> {
        let mut keys: Vec<Box<[u32]>> = match &mut self.state {
            State::Packed(s) => {
                let n = self.lhs.len();
                s.new_violating.drain().map(|v| unpack_key(v, n).into_boxed_slice()).collect()
            }
            State::General(s) => s.new_violating.drain().map(|k| k.codes().into()).collect(),
            State::Approx(_) => Vec::new(),
        };
        keys.sort_unstable();
        keys
    }

    fn clear_new_violating(&mut self) {
        match &mut self.state {
            State::Packed(s) => s.new_violating.clear(),
            State::General(s) => s.new_violating.clear(),
            State::Approx(_) => {}
        }
    }

    /// The attribute ids of the FD's antecedent, in tracker key order.
    pub(crate) fn lhs_attrs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// Lossless packed → general conversion: unpack every key back into
    /// its codes (the attribute counts are known, packed codes are always
    /// sub-2^16). O(state size), never rescans the relation, preserves
    /// every aggregate and the group tiers.
    fn unpack_state(&mut self) {
        let State::Packed(s) =
            std::mem::replace(&mut self.state, State::General(CountState::default()))
        else {
            unreachable!("unpack_state called on a non-packed tracker")
        };
        let (nl, nr) = (self.lhs.len(), self.rhs.len());
        let conv = |v: u64, n: usize| Key::from_codes(&unpack_key(v, n));
        let convert_rhs = |rhs: GroupRhs<u64>| match rhs {
            GroupRhs::One { rkey, count } => GroupRhs::One { rkey: conv(rkey, nr), count },
            GroupRhs::Few(few) => {
                GroupRhs::Few(few.into_iter().map(|(k, n)| (conv(k, nr), n)).collect())
            }
            GroupRhs::Many(m) => {
                GroupRhs::Many(Box::new(m.into_iter().map(|(k, n)| (conv(k, nr), n)).collect()))
            }
        };
        let out = CountState::<Key> {
            pair_count: s.pair_count,
            violating_groups: s.violating_groups,
            violating_rows: s.violating_rows,
            groups: s
                .groups
                .into_iter()
                .map(|(l, g)| (conv(l, nl), LhsGroup { total: g.total, rhs: convert_rhs(g.rhs) }))
                .collect(),
            rhs_counts: s.rhs_counts.into_iter().map(|(r, n)| (conv(r, nr), n)).collect(),
            new_violating: s.new_violating.into_iter().map(|l| conv(l, nl)).collect(),
        };
        self.state = State::General(out);
        evofd_obs::metrics::TRACKER_PACK_FALLBACKS_TOTAL.inc();
    }

    /// Degrade to sketches when the exact state exceeds the memory limit.
    /// The sketches are populated from the maintained counts — every live
    /// row contributes exactly one increment per sketch, so the result is
    /// identical to having run in approximate mode from the start.
    fn maybe_degrade(&mut self) {
        let Some(limit) = self.memory_limit else { return };
        let over = match &self.state {
            State::Packed(s) => s.approx_bytes() > limit,
            State::General(s) => s.approx_bytes() > limit,
            State::Approx(_) => false,
        };
        if !over {
            return;
        }
        self.degrade_now();
    }

    /// Unconditionally convert the exact state to sketches (also used to
    /// reconstruct a tracker persisted in approximate mode, so resumed
    /// state matches the original instead of silently turning exact).
    pub(crate) fn degrade_now(&mut self) {
        let m = sketch_buckets(self.memory_limit.unwrap_or(usize::MAX));
        let (nl, nr) = (self.lhs.len(), self.rhs.len());
        let a = match &self.state {
            State::Packed(s) => degrade_state(s, m, |l| unpack_key(*l, nl), |r| unpack_key(*r, nr)),
            State::General(s) => {
                degrade_state(s, m, |l| l.codes().to_vec(), |r| r.codes().to_vec())
            }
            State::Approx(_) => return,
        };
        self.state = State::Approx(a);
        evofd_obs::metrics::TRACKER_APPROX_DEGRADES_TOTAL.inc();
    }

    /// Export the group-count state in a canonical (key-sorted) order —
    /// the serializable core of the tracker. Everything else (`rhs_counts`,
    /// `pair_count`, the violation aggregate, `total_rows`) is derivable
    /// from the groups and is rebuilt on import. Packed state unpacks to
    /// the identical bytes the generic path exports. Approximate trackers
    /// have no group state; they export empty groups with the `approx`
    /// marker and are rebuilt from live rows on import.
    pub(crate) fn export(&self) -> TrackerSnapshot {
        let mut groups: Vec<GroupCounts> = match &self.state {
            State::Packed(s) => {
                let (nl, nr) = (self.lhs.len(), self.rhs.len());
                s.groups
                    .iter()
                    .map(|(lkey, g)| {
                        let mut rhs: Vec<(Vec<u32>, u32)> =
                            g.rhs.iter().map(|(rkey, n)| (unpack_key(*rkey, nr), n)).collect();
                        rhs.sort_unstable();
                        GroupCounts { lhs_key: unpack_key(*lkey, nl), rhs }
                    })
                    .collect()
            }
            State::General(s) => s
                .groups
                .iter()
                .map(|(lkey, g)| {
                    let mut rhs: Vec<(Vec<u32>, u32)> =
                        g.rhs.iter().map(|(rkey, n)| (rkey.codes().to_vec(), n)).collect();
                    rhs.sort_unstable();
                    GroupCounts { lhs_key: lkey.codes().to_vec(), rhs }
                })
                .collect(),
            State::Approx(_) => return TrackerSnapshot { groups: Vec::new(), approx: true },
        };
        groups.sort_unstable_by(|a, b| a.lhs_key.cmp(&b.lhs_key));
        TrackerSnapshot { groups, approx: false }
    }

    /// Rebuild a tracker from exported group counts. The derived
    /// aggregates are recomputed, so a snapshot only carries the minimal
    /// state. Zero counts are rejected (they can never be exported), as
    /// are approx-marked snapshots — those carry no state and must be
    /// rebuilt from live rows by the caller.
    pub(crate) fn import(
        fd: &Fd,
        snapshot: &TrackerSnapshot,
        memory_limit: Option<usize>,
    ) -> Option<FdTracker> {
        if snapshot.approx {
            return None;
        }
        let mut t = FdTracker::with_limit(fd, memory_limit);
        let packable = matches!(t.state, State::Packed(_))
            && snapshot.groups.iter().all(|g| {
                g.lhs_key.iter().all(|&c| c < 1 << 16)
                    && g.rhs.iter().all(|(k, _)| k.iter().all(|&c| c < 1 << 16))
            });
        let total = if packable {
            let pack = |codes: &[u32]| codes.iter().fold(0u64, |v, &c| (v << 16) | c as u64);
            let (state, total) = import_state(snapshot, pack, pack)?;
            t.state = State::Packed(state);
            total
        } else {
            let (state, total) = import_state(snapshot, Key::from_codes, Key::from_codes)?;
            t.state = State::General(state);
            total
        };
        t.total_rows = total;
        t.maybe_degrade();
        Some(t)
    }
}

/// Populate sketches from an exact state: per group `g.total` rows into
/// the X sketch, per (group, projection) its count into the pair sketch,
/// per Y-projection its count into the Y sketch — exactly the increments
/// the live rows would have produced one by one.
fn degrade_state<K>(
    s: &CountState<K>,
    m: usize,
    lcodes: impl Fn(&K) -> Vec<u32>,
    rcodes: impl Fn(&K) -> Vec<u32>,
) -> ApproxState {
    let mut a = ApproxState::new(m);
    for (lkey, g) in &s.groups {
        let lc = lcodes(lkey);
        a.lhs.add(hash_codes(SALT_LHS, lc.iter().copied()), g.total);
        for (rkey, n) in g.rhs.iter() {
            let rc = rcodes(rkey);
            a.pair.add(hash_codes(SALT_PAIR, lc.iter().copied().chain(rc.iter().copied())), n);
        }
    }
    for (rkey, n) in &s.rhs_counts {
        a.rhs.add(hash_codes(SALT_RHS, rcodes(rkey).iter().copied()), *n);
    }
    a
}

/// Shared import loop: validate the snapshot (no zero counts, no
/// duplicate or empty groups) while assembling a [`CountState`] in the
/// chosen key representation. Returns the state and its total row count.
fn import_state<K: std::hash::Hash + Eq + Clone>(
    snapshot: &TrackerSnapshot,
    mk_lkey: impl Fn(&[u32]) -> K,
    mk_rkey: impl Fn(&[u32]) -> K,
) -> Option<(CountState<K>, usize)> {
    let mut s = CountState::<K>::default();
    let mut total_rows = 0usize;
    for g in &snapshot.groups {
        if g.rhs.is_empty() {
            return None;
        }
        let lkey = mk_lkey(&g.lhs_key);
        let mut total: u32 = 0;
        let mut rhs: Option<GroupRhs<K>> = None;
        for (rk, n) in &g.rhs {
            if *n == 0 {
                return None;
            }
            let rkey = mk_rkey(rk);
            if let Some(c) = s.rhs_counts.get_mut(&rkey) {
                *c += n;
            } else {
                s.rhs_counts.insert(rkey.clone(), *n);
            }
            let new_pair = match &mut rhs {
                None => {
                    rhs = Some(GroupRhs::with_count(rkey, *n));
                    true
                }
                Some(r) => r.insert_n(&rkey, *n),
            };
            if !new_pair {
                return None; // duplicate RHS key within one group
            }
            s.pair_count += 1;
            total += n;
        }
        let rhs = rhs.expect("non-empty group");
        if rhs.distinct() >= 2 {
            s.violating_groups += 1;
            s.violating_rows += total as usize;
        }
        total_rows += total as usize;
        if s.groups.insert(lkey, LhsGroup { total, rhs }).is_some() {
            return None; // duplicate LHS key
        }
    }
    Some((s, total_rows))
}

/// Serializable per-FD tracker state: the `X-group → (Y-projection →
/// count)` map keyed by dictionary-code tuples, exported in a canonical
/// sorted order so snapshots of equal states are byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerSnapshot {
    /// One entry per distinct X-projection with live rows. Empty when
    /// `approx` is set.
    pub groups: Vec<GroupCounts>,
    /// True when the tracker ran in memory-bounded approximate mode:
    /// sketches are not persisted; the tracker is rebuilt from live rows
    /// (and re-degraded) on import.
    pub approx: bool,
}

/// One antecedent group of a [`TrackerSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupCounts {
    /// The X-projection's dictionary codes.
    pub lhs_key: Vec<u32>,
    /// Distinct Y-projections in this group with their live-row counts,
    /// sorted by key.
    pub rhs: Vec<(Vec<u32>, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_core::violations;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["X", "Y"],
            &[&["a", "1"], &["a", "2"], &["a", "1"], &["b", "3"], &["b", "3"], &["c", "4"]],
        )
        .unwrap()
    }

    fn check_against_full(tracker: &FdTracker, rel: &Relation, fd: &Fd) {
        let full = Measures::compute(rel, fd, &mut evofd_storage::DistinctCache::new());
        assert_eq!(tracker.measures(), full);
        let report = violations(rel, fd);
        assert_eq!(tracker.violating_groups(), report.groups.len());
        assert_eq!(tracker.violating_rows(), report.violating_rows());
        assert_eq!(tracker.total_rows(), rel.row_count());
    }

    #[test]
    fn build_matches_batch_computation() {
        let r = rel();
        for text in ["X -> Y", "Y -> X", "X, Y -> X"] {
            let fd = Fd::parse(r.schema(), text).unwrap();
            let t = FdTracker::build(&fd, &r, 0..r.row_count(), None);
            assert_eq!(t.repr_name(), "packed", "small dictionaries pack");
            check_against_full(&t, &r, &fd);
        }
    }

    #[test]
    fn insert_then_remove_round_trips() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let mut t = FdTracker::build(&fd, &r, 0..r.row_count(), None);
        // Remove the violating row (X=a, Y=2): group becomes clean.
        t.remove_row(&r, 1);
        let reduced = r.gather(&[0, 2, 3, 4, 5]);
        check_against_full(&t, &reduced, &fd);
        // Put it back: identical to a fresh build.
        t.insert_row(&r, 1);
        check_against_full(&t, &r, &fd);
    }

    #[test]
    fn empty_tracker_is_vacuously_exact() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let t = FdTracker::with_limit(&fd, None);
        let m = t.measures();
        assert_eq!(m.confidence, 1.0);
        assert!(m.is_exact());
        assert_eq!(m.goodness, 0);
        assert_eq!(t.violating_rows(), 0);
    }

    #[test]
    fn export_import_round_trips() {
        let r = rel();
        for text in ["X -> Y", "Y -> X", "X, Y -> X"] {
            let fd = Fd::parse(r.schema(), text).unwrap();
            let t = FdTracker::build(&fd, &r, 0..r.row_count(), None);
            let snap = t.export();
            let rebuilt = FdTracker::import(&fd, &snap, None).expect("well-formed snapshot");
            check_against_full(&rebuilt, &r, &fd);
            assert_eq!(rebuilt.export(), snap, "canonical order is stable");
        }
    }

    #[test]
    fn import_rejects_malformed_snapshots() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let good = FdTracker::build(&fd, &r, 0..r.row_count(), None).export();
        // Zero count.
        let mut bad = good.clone();
        bad.groups[0].rhs[0].1 = 0;
        assert!(FdTracker::import(&fd, &bad, None).is_none());
        // Duplicate LHS key.
        let mut bad = good.clone();
        let dup = bad.groups[0].clone();
        bad.groups.push(dup);
        assert!(FdTracker::import(&fd, &bad, None).is_none());
        // Duplicate RHS key within a group.
        let mut bad = good.clone();
        let dup = bad.groups[0].rhs[0].clone();
        bad.groups[0].rhs.push(dup);
        assert!(FdTracker::import(&fd, &bad, None).is_none());
        // Empty group (no RHS entries).
        let mut bad = good;
        bad.groups[0].rhs.clear();
        assert!(FdTracker::import(&fd, &bad, None).is_none());
    }

    #[test]
    fn removing_every_row_empties_state() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let mut t = FdTracker::build(&fd, &r, 0..r.row_count(), None);
        for row in 0..r.row_count() {
            t.remove_row(&r, row);
        }
        assert_eq!(t.total_rows(), 0);
        assert_eq!(t.measures().distinct_lhs, 0);
        assert_eq!(t.violating_groups(), 0);
    }

    #[test]
    fn null_mid_stream_unpacks_losslessly() {
        use evofd_storage::{DataType, Field, Schema, Value};
        let schema =
            Schema::new("t", vec![Field::new("X", DataType::Str), Field::new("Y", DataType::Str)])
                .unwrap()
                .into_shared();
        let mut r = Relation::from_rows(
            schema,
            vec![vec![Value::str("a"), Value::str("1")], vec![Value::str("b"), Value::str("2")]],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let mut t = FdTracker::build(&fd, &r, 0..2, None);
        assert_eq!(t.repr_name(), "packed");
        let before = t.export();

        // A NULL row arrives: the tracker must fall back, not corrupt.
        r.append_rows([vec![Value::Null, Value::str("3")]]).unwrap();
        t.insert_row(&r, 2);
        assert_eq!(t.repr_name(), "general", "first NULL forces the fallback");
        check_against_full(&t, &r, &fd);

        // Removing it again restores the exact pre-NULL observables (the
        // representation stays general until a rebuild).
        t.remove_row(&r, 2);
        assert_eq!(t.export(), before, "fallback was lossless");
    }

    #[test]
    fn wide_fds_use_the_general_representation() {
        let r = relation_of_strs(
            "t",
            &["A", "B", "C", "D", "E", "Y"],
            &[&["a", "b", "c", "d", "e", "1"], &["a", "b", "c", "d", "f", "2"]],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "A, B, C, D, E -> Y").unwrap();
        let t = FdTracker::build(&fd, &r, 0..2, None);
        assert_eq!(t.repr_name(), "general", "five LHS attributes cannot pack");
        check_against_full(&t, &r, &fd);
    }

    #[test]
    fn memory_limit_degrades_to_exact_free_sketches() {
        let rows: Vec<Vec<String>> =
            (0..5000).map(|i| vec![format!("x{i}"), format!("y{i}")]).collect();
        let row_refs: Vec<Vec<&str>> =
            rows.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
        let row_slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
        let r = relation_of_strs("t", &["X", "Y"], &row_slices).unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let t = FdTracker::build(&fd, &r, 0..r.row_count(), Some(64 * 1024));
        assert!(t.is_approx(), "5000 groups cannot fit a 64 KiB bound");
        assert_eq!(t.total_rows(), 5000, "row count stays exact");
        // The FD is exact; the noise gate must keep it reading clean.
        assert_eq!(t.violating_groups(), 0);
        assert!(t.measures().is_exact());
        // The estimate is in the right ballpark at moderate sketch load.
        let est = t.measures().distinct_lhs as f64;
        assert!((est - 5000.0).abs() / 5000.0 < 0.1, "estimate {est} vs 5000");
        // Approx snapshots carry only the marker.
        let snap = t.export();
        assert!(snap.approx && snap.groups.is_empty());
        assert!(FdTracker::import(&fd, &snap, Some(64 * 1024)).is_none());
    }

    #[test]
    fn degraded_state_equals_approx_from_the_start() {
        // Degrading a built tracker and building under a tiny limit must
        // land in identical sketch state: both are pure functions of the
        // live multiset.
        let rows: Vec<Vec<String>> =
            (0..3000).map(|i| vec![format!("x{}", i % 2900), format!("y{i}")]).collect();
        let row_refs: Vec<Vec<&str>> =
            rows.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
        let row_slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
        let r = relation_of_strs("t", &["X", "Y"], &row_slices).unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let limit = Some(8 * 1024);
        let built = FdTracker::build(&fd, &r, 0..r.row_count(), limit);
        let mut exact = FdTracker::build(&fd, &r, 0..r.row_count(), None);
        exact.set_memory_limit(limit);
        exact.degrade_now();
        assert!(built.is_approx() && exact.is_approx());
        assert_eq!(built.measures(), exact.measures());
        assert_eq!(built.violating_groups(), exact.violating_groups());
        assert_eq!(built.violating_rows(), exact.violating_rows());
        assert_eq!(built.g3_removals(), exact.g3_removals());
    }
}
