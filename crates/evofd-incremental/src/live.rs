//! [`LiveRelation`]: a mutable relation built from an immutable
//! [`Relation`] plus an append/tombstone delta log.
//!
//! Physical layout: appended rows go at the tail of the underlying
//! relation (re-using dictionary codes via
//! [`Relation::append_rows`]); deleted rows are tombstoned in place.
//! Between compactions every surviving row keeps its physical id **and**
//! its dictionary codes, which is what lets the incremental trackers in
//! [`crate::validator`] update only the touched rows. Compaction (when the
//! tombstone fraction passes a threshold) rewrites the relation
//! canonically and bumps the epoch, signalling every dependent cache and
//! tracker to rebuild.

use evofd_storage::{Relation, Schema, Value};

use crate::delta::{AppliedDelta, Delta};
use crate::error::{IncrementalError, Result};

/// Default tombstone fraction above which [`LiveRelation::maybe_compact`]
/// rewrites the relation.
pub const DEFAULT_COMPACT_THRESHOLD: f64 = 0.3;

/// A relation that accepts batched [`Delta`]s while staying queryable.
#[derive(Debug, Clone)]
pub struct LiveRelation {
    rel: Relation,
    live: Vec<bool>,
    dead: usize,
    epoch: u64,
    compact_threshold: f64,
}

impl LiveRelation {
    /// Wrap an existing relation (all rows live, epoch 0).
    pub fn new(rel: Relation) -> LiveRelation {
        let live = vec![true; rel.row_count()];
        LiveRelation { rel, live, dead: 0, epoch: 0, compact_threshold: DEFAULT_COMPACT_THRESHOLD }
    }

    /// Override the compaction threshold (tombstone fraction in `(0, 1]`).
    pub fn with_compact_threshold(mut self, threshold: f64) -> LiveRelation {
        self.set_compact_threshold(threshold);
        self
    }

    /// Set the compaction threshold in place (tombstone fraction in
    /// `(0, 1]`) — the non-consuming sibling of
    /// [`LiveRelation::with_compact_threshold`], for CLI/session wiring.
    pub fn set_compact_threshold(&mut self, threshold: f64) {
        self.compact_threshold = threshold.clamp(f64::EPSILON, 1.0);
    }

    /// The configured compaction threshold.
    pub fn compact_threshold(&self) -> f64 {
        self.compact_threshold
    }

    /// Reassemble a live relation from its physical parts — the relation
    /// image (tombstoned rows still present, dictionaries intact), the
    /// liveness mask and the epoch. This is the crash-recovery entry point
    /// (`evofd-persist` snapshots): because the physical layout is restored
    /// exactly, dictionary codes recorded elsewhere (WAL tails, tracker
    /// keys) remain valid. The mask must cover every physical row.
    pub fn from_parts(rel: Relation, live: Vec<bool>, epoch: u64) -> Result<LiveRelation> {
        if live.len() != rel.row_count() {
            return Err(IncrementalError::StateMismatch {
                message: format!(
                    "liveness mask covers {} rows but the relation has {}",
                    live.len(),
                    rel.row_count()
                ),
            });
        }
        let dead = live.iter().filter(|&&l| !l).count();
        Ok(LiveRelation { rel, live, dead, epoch, compact_threshold: DEFAULT_COMPACT_THRESHOLD })
    }

    /// The liveness mask over physical rows (true = live).
    pub fn live_mask(&self) -> &[bool] {
        &self.live
    }

    /// The underlying **physical** relation: appended rows at the tail,
    /// tombstoned rows still present. Use [`LiveRelation::is_live`] to
    /// interpret row ids, or [`LiveRelation::snapshot`] for a canonical
    /// tombstone-free relation.
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.rel.schema()
    }

    /// Number of **live** tuples.
    pub fn row_count(&self) -> usize {
        self.rel.row_count() - self.dead
    }

    /// Number of physical rows (live + tombstoned).
    pub fn physical_rows(&self) -> usize {
        self.rel.row_count()
    }

    /// True iff no live tuples remain.
    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// True iff physical row `row` exists and is not tombstoned.
    pub fn is_live(&self, row: usize) -> bool {
        self.live.get(row).copied().unwrap_or(false)
    }

    /// Iterate the physical ids of live rows, ascending.
    pub fn live_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.live.iter().enumerate().filter_map(|(i, &l)| l.then_some(i))
    }

    /// Fraction of physical rows that are tombstones (0 for empty).
    pub fn dead_fraction(&self) -> f64 {
        if self.rel.row_count() == 0 {
            0.0
        } else {
            self.dead as f64 / self.rel.row_count() as f64
        }
    }

    /// The mutation epoch: bumped by every non-empty delta and every
    /// compaction. [`evofd_storage::DistinctCache::sync_epoch`] consumes
    /// this to avoid serving stale counts.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// First live row whose tuple equals `values`, if any (linear scan —
    /// the convenience lookup behind value-addressed deletes).
    pub fn find_live_row(&self, values: &[Value]) -> Option<usize> {
        self.live_rows().find(|&r| self.rel.row(r) == values)
    }

    /// Apply a delta atomically: either every insert and delete lands, or
    /// the relation is unchanged and an error describes why. Deletes are
    /// validated first (they must name distinct, live, existing physical
    /// rows — rows inserted by this same delta cannot be deleted by it),
    /// then inserts are validated and appended, then tombstones are set.
    ///
    /// Returns the applied record the incremental validator consumes.
    /// The epoch advances iff the delta was non-empty.
    pub fn apply(&mut self, delta: &Delta) -> Result<AppliedDelta> {
        let physical = self.rel.row_count();
        // 1. Validate deletes.
        let mut seen = std::collections::HashSet::with_capacity(delta.deletes.len());
        for &row in &delta.deletes {
            if row >= physical {
                return Err(IncrementalError::RowOutOfRange { row, rows: physical });
            }
            if !self.live[row] {
                return Err(IncrementalError::DeadRow { row });
            }
            if !seen.insert(row) {
                return Err(IncrementalError::DuplicateDelete { row });
            }
        }
        // 2. Validate + append inserts (atomic inside storage).
        let appended = self.rel.append_rows(delta.inserts.iter().cloned())?;
        self.live.resize(physical + appended, true);
        // 3. Tombstone deletes (infallible after validation).
        for &row in &delta.deletes {
            self.live[row] = false;
        }
        self.dead += delta.deletes.len();
        if !delta.is_empty() {
            self.epoch += 1;
        }
        Ok(AppliedDelta {
            inserted: physical..physical + appended,
            deleted: delta.deletes.clone(),
            epoch: self.epoch,
        })
    }

    /// A canonical, tombstone-free [`Relation`] of the current contents
    /// (dictionaries rebuilt). O(live rows).
    pub fn snapshot(&self) -> Relation {
        if self.dead == 0 {
            return self.rel.clone();
        }
        let keep: Vec<usize> = self.live_rows().collect();
        self.rel.gather(&keep)
    }

    /// Rewrite the physical relation without tombstones, invalidating all
    /// physical row ids and dictionary codes. Bumps the epoch. Returns the
    /// number of tombstones reclaimed.
    pub fn compact(&mut self) -> usize {
        let reclaimed = self.dead;
        if reclaimed == 0 {
            return 0;
        }
        self.rel = self.snapshot();
        self.live = vec![true; self.rel.row_count()];
        self.dead = 0;
        self.epoch += 1;
        reclaimed
    }

    /// Compact iff the tombstone fraction exceeds the configured
    /// threshold. Returns the number of tombstones reclaimed (0 if no
    /// compaction ran).
    pub fn maybe_compact(&mut self) -> usize {
        if self.dead_fraction() > self.compact_threshold {
            self.compact()
        } else {
            0
        }
    }

    /// Consume the wrapper and return a canonical relation of the live
    /// contents. Cheap when nothing is tombstoned.
    pub fn into_relation(mut self) -> Relation {
        if self.dead == 0 {
            self.rel
        } else {
            self.compact();
            self.rel
        }
    }
}

impl From<Relation> for LiveRelation {
    fn from(rel: Relation) -> LiveRelation {
        LiveRelation::new(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    fn base() -> LiveRelation {
        LiveRelation::new(
            relation_of_strs("t", &["x", "y"], &[&["a", "1"], &["b", "2"], &["c", "3"]]).unwrap(),
        )
    }

    fn srow(a: &str, b: &str) -> Vec<Value> {
        vec![Value::str(a), Value::str(b)]
    }

    #[test]
    fn insert_appends_and_bumps_epoch() {
        let mut lr = base();
        let applied = lr.apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        assert_eq!(applied.inserted, 3..4);
        assert_eq!(applied.epoch, 1);
        assert_eq!(lr.row_count(), 4);
        assert_eq!(lr.physical_rows(), 4);
        assert!(lr.is_live(3));
        assert_eq!(lr.relation().row(3), srow("d", "4"));
    }

    #[test]
    fn delete_tombstones_without_moving_rows() {
        let mut lr = base();
        let applied = lr.apply(&Delta::deleting([1])).unwrap();
        assert_eq!(applied.deleted, vec![1]);
        assert_eq!(lr.row_count(), 2);
        assert_eq!(lr.physical_rows(), 3, "tombstoned, not removed");
        assert!(!lr.is_live(1));
        assert!(lr.is_live(0) && lr.is_live(2));
        assert_eq!(lr.live_rows().collect::<Vec<_>>(), vec![0, 2]);
        let snap = lr.snapshot();
        assert_eq!(snap.row_count(), 2);
        assert_eq!(snap.row(1), srow("c", "3"));
    }

    #[test]
    fn mixed_delta_is_atomic_on_bad_insert() {
        let mut lr = base();
        let bad = Delta {
            inserts: vec![vec![Value::str("only-one-value")]], // arity 1 != 2
            deletes: vec![0],
        };
        let err = lr.apply(&bad).unwrap_err();
        assert!(matches!(err, IncrementalError::Storage(_)));
        assert_eq!(lr.row_count(), 3, "nothing applied");
        assert!(lr.is_live(0), "delete was not applied either");
        assert_eq!(lr.epoch(), 0);
    }

    #[test]
    fn delete_validation() {
        let mut lr = base();
        assert!(matches!(
            lr.apply(&Delta::deleting([9])),
            Err(IncrementalError::RowOutOfRange { row: 9, rows: 3 })
        ));
        lr.apply(&Delta::deleting([1])).unwrap();
        assert!(matches!(
            lr.apply(&Delta::deleting([1])),
            Err(IncrementalError::DeadRow { row: 1 })
        ));
        assert!(matches!(
            lr.apply(&Delta::deleting([0, 0])),
            Err(IncrementalError::DuplicateDelete { row: 0 })
        ));
        // Deleting a row being inserted by the same delta is out of range.
        let d = Delta { inserts: vec![srow("d", "4")], deletes: vec![3] };
        assert!(matches!(lr.apply(&d), Err(IncrementalError::RowOutOfRange { .. })));
    }

    #[test]
    fn codes_stable_until_compaction() {
        let mut lr = base();
        let code_c = lr.relation().column(evofd_storage::AttrId(0)).code_at(2);
        lr.apply(&Delta::deleting([0])).unwrap();
        lr.apply(&Delta::inserting(vec![srow("c", "9")])).unwrap();
        // "c" re-used its dictionary code, and row 2 never moved.
        assert_eq!(lr.relation().column(evofd_storage::AttrId(0)).code_at(2), code_c);
        assert_eq!(lr.relation().column(evofd_storage::AttrId(0)).code_at(3), code_c);
    }

    #[test]
    fn compaction_reclaims_and_bumps_epoch() {
        let mut lr = base().with_compact_threshold(0.5);
        lr.apply(&Delta::deleting([0])).unwrap();
        assert_eq!(lr.maybe_compact(), 0, "1/3 dead is under the 0.5 threshold");
        lr.apply(&Delta::deleting([1])).unwrap();
        let epoch_before = lr.epoch();
        assert_eq!(lr.maybe_compact(), 2);
        assert_eq!(lr.physical_rows(), 1);
        assert_eq!(lr.row_count(), 1);
        assert_eq!(lr.epoch(), epoch_before + 1);
        assert!((lr.dead_fraction() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let mut lr = base();
        let applied = lr.apply(&Delta::new()).unwrap();
        assert!(applied.is_empty());
        assert_eq!(lr.epoch(), 0, "no-op deltas do not invalidate caches");
    }

    #[test]
    fn find_live_row_skips_tombstones() {
        let mut lr = base();
        assert_eq!(lr.find_live_row(&srow("b", "2")), Some(1));
        lr.apply(&Delta::deleting([1])).unwrap();
        assert_eq!(lr.find_live_row(&srow("b", "2")), None);
        assert_eq!(lr.find_live_row(&srow("c", "3")), Some(2));
    }

    #[test]
    fn from_parts_restores_physical_state() {
        let mut lr = base();
        lr.apply(&Delta::deleting([1])).unwrap();
        lr.apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        let rebuilt =
            LiveRelation::from_parts(lr.relation().clone(), lr.live_mask().to_vec(), lr.epoch())
                .unwrap();
        assert_eq!(rebuilt.row_count(), lr.row_count());
        assert_eq!(rebuilt.physical_rows(), lr.physical_rows());
        assert_eq!(rebuilt.epoch(), lr.epoch());
        assert_eq!(rebuilt.live_mask(), lr.live_mask());
        assert_eq!(rebuilt.live_rows().collect::<Vec<_>>(), lr.live_rows().collect::<Vec<_>>());
        // Mask length mismatch is rejected.
        let err = LiveRelation::from_parts(lr.relation().clone(), vec![true], 0).unwrap_err();
        assert!(matches!(err, IncrementalError::StateMismatch { .. }));
    }

    #[test]
    fn set_compact_threshold_in_place() {
        let mut lr = base();
        lr.set_compact_threshold(0.9);
        assert!((lr.compact_threshold() - 0.9).abs() < 1e-12);
        lr.set_compact_threshold(0.0);
        assert!(lr.compact_threshold() > 0.0, "clamped away from zero");
    }

    #[test]
    fn into_relation_compacts_when_needed() {
        let mut lr = base();
        lr.apply(&Delta::deleting([2])).unwrap();
        let rel = lr.into_relation();
        assert_eq!(rel.row_count(), 2);
        let lr2 = base();
        assert_eq!(lr2.into_relation().row_count(), 3);
    }
}
