//! Error types for the incremental engine.

use std::fmt;

use evofd_storage::StorageError;

/// Errors produced by delta application and incremental maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrementalError {
    /// A delete referenced a physical row id beyond the relation.
    RowOutOfRange {
        /// The offending row id.
        row: usize,
        /// Number of physical rows at the time of the delta.
        rows: usize,
    },
    /// A delete referenced a row that is already tombstoned.
    DeadRow {
        /// The offending row id.
        row: usize,
    },
    /// A delete referenced the same row twice within one delta.
    DuplicateDelete {
        /// The offending row id.
        row: usize,
    },
    /// The underlying storage rejected the delta (arity/type/NOT NULL).
    Storage(StorageError),
    /// Reassembled state (crash recovery, snapshot import) is internally
    /// inconsistent.
    StateMismatch {
        /// What did not line up.
        message: String,
    },
}

impl fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncrementalError::RowOutOfRange { row, rows } => {
                write!(f, "delete of row {row} out of range for {rows} physical rows")
            }
            IncrementalError::DeadRow { row } => {
                write!(f, "delete of row {row} which is already tombstoned")
            }
            IncrementalError::DuplicateDelete { row } => {
                write!(f, "row {row} deleted twice in one delta")
            }
            IncrementalError::Storage(e) => write!(f, "storage error: {e}"),
            IncrementalError::StateMismatch { message } => {
                write!(f, "inconsistent recovered state: {message}")
            }
        }
    }
}

impl std::error::Error for IncrementalError {}

impl From<StorageError> for IncrementalError {
    fn from(e: StorageError) -> Self {
        IncrementalError::Storage(e)
    }
}

/// Result alias for incremental operations.
pub type Result<T> = std::result::Result<T, IncrementalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(IncrementalError::RowOutOfRange { row: 9, rows: 3 }.to_string().contains("row 9"));
        assert!(IncrementalError::DeadRow { row: 2 }.to_string().contains("tombstoned"));
        let wrapped: IncrementalError = StorageError::UnknownTable { name: "t".into() }.into();
        assert!(wrapped.to_string().contains("unknown table"));
    }
}
