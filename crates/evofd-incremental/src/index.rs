//! [`ColumnIndex`]: a sorted secondary index over one column of a live
//! relation, maintained in **O(changed rows)** on the delta path.
//!
//! The index maps each distinct column value to the ascending list of
//! physical row ids holding it — the order a filtering sequential scan
//! visits them, so an index probe yields byte-identical results to the
//! scan it replaces. Keys are kept in a `BTreeMap`, i.e. value-sorted,
//! which gives `EXPLAIN` a deterministic rendering and leaves room for
//! range probes later.
//!
//! Lifecycle mirrors the validator's trackers:
//!
//! * built in one O(rows) pass over the live rows ([`ColumnIndex::build`]
//!   / [`ColumnIndex::build_live`]);
//! * advanced past each applied delta in O(changed rows)
//!   ([`ColumnIndex::apply`]) — appended rows are pushed (physical ids
//!   grow monotonically, so ascending order is preserved for free),
//!   tombstoned rows are binary-search-removed from their value's list;
//! * an epoch gap (compaction renumbers physical ids and codes) falls
//!   back to a full rebuild, exactly like
//!   [`crate::IncrementalValidator`]'s resync rule.
//!
//! NULLs are stored under [`Value::Null`] so the row lists partition the
//! relation, but equality probes never match them (SQL `col = x` is
//! UNKNOWN on NULL) — planners must skip the NULL key, which
//! [`ColumnIndex::probe`] does by construction.

use std::collections::BTreeMap;

use evofd_storage::{AttrId, Relation, Value};

use crate::delta::AppliedDelta;
use crate::live::LiveRelation;

/// A sorted secondary index over one column: distinct value → ascending
/// physical row ids.
#[derive(Debug, Clone)]
pub struct ColumnIndex {
    attr: AttrId,
    /// Live-relation epoch the index is synced to (0 for plain builds).
    epoch: u64,
    map: BTreeMap<Value, Vec<u32>>,
    /// Full rebuilds performed (initial build + epoch-gap fallbacks).
    rebuilds: u64,
    /// Deltas absorbed incrementally.
    incremental: u64,
}

impl ColumnIndex {
    /// Build over every row of a plain relation (no tombstones).
    pub fn build(rel: &Relation, attr: AttrId) -> ColumnIndex {
        let mut idx =
            ColumnIndex { attr, epoch: 0, map: BTreeMap::new(), rebuilds: 0, incremental: 0 };
        idx.rebuild_rows(rel, 0, (0..rel.row_count()).collect());
        idx
    }

    /// Build over the live rows of a [`LiveRelation`], synced to its
    /// current epoch.
    pub fn build_live(live: &LiveRelation, attr: AttrId) -> ColumnIndex {
        let mut idx = ColumnIndex {
            attr,
            epoch: live.epoch(),
            map: BTreeMap::new(),
            rebuilds: 0,
            incremental: 0,
        };
        idx.rebuild_rows(live.relation(), live.epoch(), live.live_rows().collect());
        idx
    }

    fn rebuild_rows(&mut self, rel: &Relation, epoch: u64, rows: Vec<usize>) {
        // Group by dictionary code first so each distinct value decodes
        // exactly once, then move the lists under their decoded keys.
        let col = rel.column(self.attr);
        let mut by_code: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for row in rows {
            by_code.entry(col.code_at(row)).or_default().push(row as u32);
        }
        self.map.clear();
        for (code, ids) in by_code {
            self.map.insert(decode(rel, self.attr, code), ids);
        }
        self.epoch = epoch;
        self.rebuilds += 1;
        evofd_obs::metrics::INDEX_REBUILDS_TOTAL.inc();
    }

    /// Advance past a delta that `live` already absorbed. Contiguous
    /// deltas are maintained in O(changed rows); an epoch gap (missed
    /// delta or compaction — physical ids and codes renumbered) falls
    /// back to a full rebuild.
    pub fn apply(&mut self, live: &LiveRelation, applied: &AppliedDelta) {
        if applied.is_empty() && live.epoch() == self.epoch {
            return;
        }
        let contiguous =
            !applied.is_empty() && applied.epoch == self.epoch + 1 && live.epoch() == applied.epoch;
        if !contiguous {
            self.rebuild_rows(live.relation(), live.epoch(), live.live_rows().collect());
            return;
        }
        let rel = live.relation();
        for &row in &applied.deleted {
            let v = rel.column(self.attr).value_at(row);
            if let Some(ids) = self.map.get_mut(&v) {
                if let Ok(at) = ids.binary_search(&(row as u32)) {
                    ids.remove(at);
                }
                if ids.is_empty() {
                    self.map.remove(&v);
                }
            }
        }
        // Appended physical ids are the largest in the relation, so a
        // plain push keeps every list ascending.
        self.extend_rows(rel, applied.inserted.clone());
        self.epoch = applied.epoch;
        self.incremental += 1;
        evofd_obs::metrics::INDEX_INCREMENTAL_TOTAL.inc();
    }

    /// Index rows newly appended to a plain relation (the SQL engine's
    /// O(inserted) INSERT path). `rows` must lie at the current tail.
    pub fn extend_appended(&mut self, rel: &Relation, rows: std::ops::Range<usize>) {
        self.extend_rows(rel, rows);
        self.incremental += 1;
        evofd_obs::metrics::INDEX_INCREMENTAL_TOTAL.inc();
    }

    fn extend_rows(&mut self, rel: &Relation, rows: std::ops::Range<usize>) {
        let col = rel.column(self.attr);
        for row in rows {
            let v = col.value_at(row);
            self.map.entry(v).or_default().push(row as u32);
        }
    }

    /// Rebuild from scratch over a plain relation (DELETE/UPDATE rewrote
    /// and renumbered the rows).
    pub fn rebuild(&mut self, rel: &Relation) {
        self.rebuild_rows(rel, 0, (0..rel.row_count()).collect());
    }

    /// The indexed column.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// The live-relation epoch the index is synced to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The ascending physical row ids holding `value`. Probing NULL
    /// returns no rows: `col = NULL` is UNKNOWN on every row.
    pub fn probe(&self, value: &Value) -> &[u32] {
        if value.is_null() {
            return &[];
        }
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys (NULL counts as one when present).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total rows indexed.
    pub fn indexed_rows(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Size of the largest per-value row list — 1 means the column is
    /// currently unique (ignoring NULLs it still bounds probe cost).
    pub fn max_group(&self) -> usize {
        self.map.values().map(Vec::len).max().unwrap_or(0)
    }

    /// `(rebuilds, incremental)` work counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.rebuilds, self.incremental)
    }

    /// The sorted keys (for EXPLAIN and diagnostics).
    pub fn keys(&self) -> impl Iterator<Item = &Value> {
        self.map.keys()
    }
}

fn decode(rel: &Relation, attr: AttrId, code: u32) -> Value {
    if code == evofd_storage::NULL_CODE {
        Value::Null
    } else {
        rel.column(attr).dict().decode(code).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Delta;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["k", "v"],
            &[&["a", "1"], &["b", "2"], &["a", "3"], &["c", "4"], &["b", "5"]],
        )
        .unwrap()
    }

    fn attr(rel: &Relation, name: &str) -> AttrId {
        rel.schema().resolve(name).unwrap()
    }

    /// The oracle: an index freshly built over the same live rows.
    fn assert_matches_rebuild(idx: &ColumnIndex, live: &LiveRelation) {
        let fresh = ColumnIndex::build_live(live, idx.attr());
        assert_eq!(idx.map, fresh.map, "index diverged from a fresh build");
    }

    #[test]
    fn build_groups_rows_by_value_ascending() {
        let r = rel();
        let idx = ColumnIndex::build(&r, attr(&r, "k"));
        assert_eq!(idx.probe(&Value::str("a")), &[0, 2]);
        assert_eq!(idx.probe(&Value::str("b")), &[1, 4]);
        assert_eq!(idx.probe(&Value::str("c")), &[3]);
        assert_eq!(idx.probe(&Value::str("zzz")), &[] as &[u32]);
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.indexed_rows(), 5);
        assert_eq!(idx.max_group(), 2);
    }

    #[test]
    fn null_rows_are_indexed_but_never_probed() {
        let mut r = rel();
        r.append_rows(vec![vec![Value::Null, Value::str("6")]]).unwrap();
        let idx = ColumnIndex::build(&r, attr(&r, "k"));
        assert_eq!(idx.indexed_rows(), 6, "NULL row partitioned in");
        assert_eq!(idx.probe(&Value::Null), &[] as &[u32], "NULL probe matches nothing");
    }

    #[test]
    fn apply_maintains_inserts_and_deletes_incrementally() {
        let mut live = LiveRelation::new(rel());
        let a = attr(live.relation(), "k");
        let mut idx = ColumnIndex::build_live(&live, a);

        let applied =
            live.apply(&Delta::inserting(vec![vec![Value::str("a"), Value::str("6")]])).unwrap();
        idx.apply(&live, &applied);
        assert_eq!(idx.probe(&Value::str("a")), &[0, 2, 5]);
        assert_matches_rebuild(&idx, &live);

        let applied = live.apply(&Delta::deleting([2])).unwrap();
        idx.apply(&live, &applied);
        assert_eq!(idx.probe(&Value::str("a")), &[0, 5]);
        assert_matches_rebuild(&idx, &live);

        // Delete the last `c`: its key disappears entirely.
        let applied = live.apply(&Delta::deleting([3])).unwrap();
        idx.apply(&live, &applied);
        assert_eq!(idx.distinct_keys(), 2);
        assert_matches_rebuild(&idx, &live);
        let (rebuilds, incremental) = idx.stats();
        assert_eq!((rebuilds, incremental), (1, 3), "all deltas absorbed in O(changed)");
    }

    #[test]
    fn epoch_gap_and_compaction_force_rebuild() {
        let mut live = LiveRelation::new(rel());
        let a = attr(live.relation(), "k");
        let mut idx = ColumnIndex::build_live(&live, a);

        // A delta the index never saw: the next apply sees an epoch gap.
        live.apply(&Delta::deleting([0])).unwrap();
        let applied = live.apply(&Delta::deleting([1])).unwrap();
        idx.apply(&live, &applied);
        assert_matches_rebuild(&idx, &live);
        assert_eq!(idx.stats().0, 2, "gap fell back to rebuild");

        // Compaction renumbers physical ids; resync via rebuild.
        assert!(live.compact() > 0);
        let applied =
            live.apply(&Delta::inserting(vec![vec![Value::str("d"), Value::str("7")]])).unwrap();
        idx.apply(&live, &applied);
        assert_matches_rebuild(&idx, &live);
    }

    #[test]
    fn extend_appended_and_rebuild_for_plain_relations() {
        let mut r = rel();
        let a = attr(&r, "k");
        let mut idx = ColumnIndex::build(&r, a);
        let start = r.row_count();
        r.append_rows(vec![vec![Value::str("c"), Value::str("6")]]).unwrap();
        idx.extend_appended(&r, start..r.row_count());
        assert_eq!(idx.probe(&Value::str("c")), &[3, 5]);

        let keep: Vec<bool> = (0..r.row_count()).map(|i| i != 3).collect();
        let filtered = r.filter(&keep);
        idx.rebuild(&filtered);
        assert_eq!(idx.probe(&Value::str("c")), &[4], "renumbered after filter");
        assert_eq!(idx.indexed_rows(), filtered.row_count());
    }
}
