//! [`ChangeFeed`]: a poll-based subscription stream of [`FdDrift`] events.
//!
//! The paper's workflow starts when a designer *notices* an FD no longer
//! matches reality. With a [`crate::LiveRelation`] under write traffic,
//! "noticing" becomes an event stream: every delta that flips an FD's
//! exactness, or moves its confidence across a configured threshold,
//! produces an [`FdDrift`]. Consumers ([`crate::AdvisorSession`]-driving
//! loops, the CLI `watch` command, dashboards) subscribe and poll; events
//! are retained until every subscriber has seen them.

use std::fmt;

use evofd_core::Fd;

/// What kind of drift a delta caused for one FD.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftKind {
    /// The FD was exact and now has violations.
    BecameViolated,
    /// The FD had violations and is now exact (the data "repaired" it).
    BecameExact,
    /// Confidence crossed a configured threshold.
    ConfidenceCrossed {
        /// The threshold crossed.
        threshold: f64,
        /// True if confidence rose across the threshold, false if it fell.
        upward: bool,
    },
    /// A declarative alert rule fired (its condition held for the
    /// configured number of consecutive sampled epochs).
    AlertFired {
        /// Canonical text of the rule that fired.
        rule: String,
    },
    /// A previously firing alert rule resolved (its condition cleared).
    AlertResolved {
        /// Canonical text of the rule that resolved.
        rule: String,
    },
}

/// One drift event: an FD whose health changed at a given epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct FdDrift {
    /// Index of the FD in the validator's FD list.
    pub fd_index: usize,
    /// The FD itself.
    pub fd: Fd,
    /// What happened.
    pub kind: DriftKind,
    /// Confidence before the delta.
    pub confidence_before: f64,
    /// Confidence after the delta.
    pub confidence_after: f64,
    /// The live relation's epoch after the delta that caused this event.
    pub epoch: u64,
    /// Provenance: the durable WAL sequence number of the delta that
    /// caused this event (0 when the producer has no journal, e.g. a
    /// purely in-memory `watch` session).
    pub seq: u64,
    /// Provenance: rendered antecedent keys of groups that *newly*
    /// violate after this delta (sorted, capped; empty on full-rebuild
    /// paths where the before/after group diff is unavailable).
    pub groups: Vec<String>,
}

impl fmt::Display for FdDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DriftKind::BecameViolated => write!(
                f,
                "epoch {}: FD #{} {} became VIOLATED (confidence {:.3} -> {:.3})",
                self.epoch, self.fd_index, self.fd, self.confidence_before, self.confidence_after
            ),
            DriftKind::BecameExact => write!(
                f,
                "epoch {}: FD #{} {} repaired by the data (confidence {:.3} -> 1)",
                self.epoch, self.fd_index, self.fd, self.confidence_before
            ),
            DriftKind::ConfidenceCrossed { threshold, upward } => write!(
                f,
                "epoch {}: FD #{} {} confidence crossed {} {} ({:.3} -> {:.3})",
                self.epoch,
                self.fd_index,
                self.fd,
                threshold,
                if *upward { "upward" } else { "downward" },
                self.confidence_before,
                self.confidence_after
            ),
            DriftKind::AlertFired { rule } => write!(
                f,
                "epoch {}: ALERT fired on FD #{} {}: {rule} (confidence {:.3})",
                self.epoch, self.fd_index, self.fd, self.confidence_after
            ),
            DriftKind::AlertResolved { rule } => write!(
                f,
                "epoch {}: alert resolved on FD #{} {}: {rule} (confidence {:.3})",
                self.epoch, self.fd_index, self.fd, self.confidence_after
            ),
        }
    }
}

/// Identifier of one subscription on a [`ChangeFeed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(usize);

/// A buffered multi-subscriber event stream.
///
/// Events are appended by the producer ([`crate::IncrementalValidator`])
/// and retained until every subscriber's cursor has passed them, then
/// garbage-collected. A feed with no subscribers keeps nothing.
#[derive(Debug, Default)]
pub struct ChangeFeed {
    /// Events not yet consumed by every subscriber.
    buffer: Vec<FdDrift>,
    /// Index (in all-time event space) of `buffer[0]`.
    base: usize,
    /// Per-subscription cursors in all-time event space; `None` = cancelled.
    cursors: Vec<Option<usize>>,
    /// All-time number of events ever published.
    published: usize,
}

impl ChangeFeed {
    /// An empty feed.
    pub fn new() -> ChangeFeed {
        ChangeFeed::default()
    }

    /// Register a subscriber; it will observe every event published after
    /// this call.
    pub fn subscribe(&mut self) -> SubscriptionId {
        self.cursors.push(Some(self.published));
        SubscriptionId(self.cursors.len() - 1)
    }

    /// Cancel a subscription (its backlog is released).
    pub fn unsubscribe(&mut self, id: SubscriptionId) {
        if let Some(slot) = self.cursors.get_mut(id.0) {
            *slot = None;
        }
        self.gc();
    }

    /// Publish one event (producer side).
    pub fn publish(&mut self, event: FdDrift) {
        self.published += 1;
        if self.cursors.iter().any(Option::is_some) {
            self.buffer.push(event);
        } else {
            // No subscribers: drop immediately, but keep the count moving
            // so later subscribers do not replay ancient events.
            self.base = self.published;
        }
    }

    /// Drain every unseen event for a subscription (oldest first).
    pub fn poll(&mut self, id: SubscriptionId) -> Vec<FdDrift> {
        let Some(Some(cursor)) = self.cursors.get(id.0).copied() else {
            return Vec::new();
        };
        let start = cursor.max(self.base) - self.base;
        let events: Vec<FdDrift> = self.buffer[start..].to_vec();
        self.cursors[id.0] = Some(self.published);
        self.gc();
        events
    }

    /// Number of events currently buffered (for any subscriber).
    pub fn backlog(&self) -> usize {
        self.buffer.len()
    }

    /// All-time number of events published.
    pub fn published(&self) -> usize {
        self.published
    }

    fn gc(&mut self) {
        let min_cursor = self.cursors.iter().filter_map(|c| *c).min().unwrap_or(self.published);
        if min_cursor > self.base {
            self.buffer.drain(..min_cursor - self.base);
            self.base = min_cursor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::{AttrId, AttrSet};

    fn event(i: usize) -> FdDrift {
        FdDrift {
            fd_index: i,
            fd: Fd::new(AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1))).unwrap(),
            kind: DriftKind::BecameViolated,
            confidence_before: 1.0,
            confidence_after: 0.5,
            epoch: i as u64,
            seq: i as u64,
            groups: Vec::new(),
        }
    }

    #[test]
    fn subscribers_see_only_later_events() {
        let mut feed = ChangeFeed::new();
        feed.publish(event(0));
        let sub = feed.subscribe();
        feed.publish(event(1));
        feed.publish(event(2));
        let got = feed.poll(sub);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].fd_index, 1);
        assert!(feed.poll(sub).is_empty(), "poll drains");
    }

    #[test]
    fn multiple_subscribers_with_gc() {
        let mut feed = ChangeFeed::new();
        let a = feed.subscribe();
        let b = feed.subscribe();
        feed.publish(event(0));
        feed.publish(event(1));
        assert_eq!(feed.backlog(), 2);
        assert_eq!(feed.poll(a).len(), 2);
        assert_eq!(feed.backlog(), 2, "b has not seen them yet");
        assert_eq!(feed.poll(b).len(), 2);
        assert_eq!(feed.backlog(), 0, "everyone caught up: gc");
        feed.unsubscribe(b);
        feed.publish(event(2));
        assert_eq!(feed.poll(b).len(), 0, "cancelled subscriptions see nothing");
        assert_eq!(feed.poll(a).len(), 1);
    }

    #[test]
    fn no_subscribers_buffers_nothing() {
        let mut feed = ChangeFeed::new();
        feed.publish(event(0));
        assert_eq!(feed.backlog(), 0);
        assert_eq!(feed.published(), 1);
        let late = feed.subscribe();
        assert!(feed.poll(late).is_empty(), "late subscriber does not replay");
    }

    #[test]
    fn drift_display_mentions_fd_and_epoch() {
        let text = event(3).to_string();
        assert!(text.contains("epoch 3"), "{text}");
        assert!(text.contains("VIOLATED"), "{text}");
        let crossed = FdDrift {
            kind: DriftKind::ConfidenceCrossed { threshold: 0.9, upward: false },
            ..event(1)
        };
        assert!(crossed.to_string().contains("crossed 0.9 downward"));
        let repaired = FdDrift { kind: DriftKind::BecameExact, ..event(2) };
        assert!(repaired.to_string().contains("repaired"));
    }
}
