//! Property test: the tracker's fast representations are **observationally
//! identical** to each other and to the batch oracle on random delta
//! streams.
//!
//! Three validators replay the same stream of random inserts (including
//! NULLs) and deletes over a two-column relation with FDs `c0 -> c1` and
//! `c1 -> c0`:
//!
//! * **A** — built over the NULL-free-or-not base as-is; packed whenever
//!   the data qualifies, falling back mid-stream on the first NULL;
//! * **B** — built over the same base plus one trailing all-NULL row
//!   (immediately deleted again), which pins the tracker to the *general*
//!   representation for the whole stream while tracking the identical
//!   live multiset;
//! * **C** — built over A's relation under a tiny memory limit, so it
//!   degrades to the sketched *approximate* representation.
//!
//! After every delta: A's measures and violation aggregates must equal a
//! from-scratch batch computation (`Measures::compute` / `violations`) on
//! a canonical snapshot; A and B must agree on measures, drift events and
//! the byte-level canonical [`TrackerSnapshot`] export; C's exact
//! fallback (`exact_measures` / `exact_summary`) must equal the same
//! batch oracle, and its row count stays exact.
//!
//! A deterministic companion test drives the *other* pack-invalidation
//! edge — the key dictionary outgrowing 2^16 codes mid-stream — which is
//! too expensive to hit with random values.

use std::collections::HashSet;

use evofd_core::{violations, Fd, Measures};
use evofd_incremental::{Delta, IncrementalValidator, LiveRelation, ValidatorConfig};
use evofd_storage::{relation_of_strs, DistinctCache, Relation, Value};
use proptest::collection::vec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct DeltaSpec {
    inserts: Vec<Vec<Option<i64>>>,
    /// Random picks resolved against the currently-alive row list at
    /// replay time (`pick % alive.len()`), deduplicated.
    delete_picks: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Scenario {
    base: Vec<Vec<Option<i64>>>,
    deltas: Vec<DeltaSpec>,
}

/// A cell: small domain so groups collide and violations actually occur;
/// occasionally NULL so packed trackers fall back mid-stream.
fn lit() -> impl Strategy<Value = Option<i64>> {
    (0u8..16).prop_map(|x| if x < 14 { Some(i64::from(x % 5)) } else { None })
}

fn row() -> impl Strategy<Value = Vec<Option<i64>>> {
    vec(lit(), 2)
}

fn delta_spec() -> impl Strategy<Value = DeltaSpec> {
    (vec(row(), 0..4), vec(0usize..1024, 0..4))
        .prop_map(|(inserts, delete_picks)| DeltaSpec { inserts, delete_picks })
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (vec(row(), 0..20), vec(delta_spec(), 1..12))
        .prop_map(|(base, deltas)| Scenario { base, deltas })
}

fn cell(v: &Option<i64>) -> Value {
    match v {
        Some(n) => Value::str(format!("v{n}")),
        None => Value::Null,
    }
}

fn build_rel(rows: &[Vec<Option<i64>>]) -> Relation {
    let mut rel = relation_of_strs("t", &["c0", "c1"], &[]).unwrap();
    rel.append_rows(rows.iter().map(|r| r.iter().map(cell).collect::<Vec<_>>())).unwrap();
    rel
}

/// Drift comparison key: everything except `epoch`/`seq`, which lag one
/// delta between A and B (B spent an epoch deleting its pin row).
fn drift_key(d: &evofd_incremental::FdDrift) -> String {
    format!(
        "{} {:?} {} {} {:?}",
        d.fd_index, d.kind, d.confidence_before, d.confidence_after, d.groups
    )
}

fn run_scenario(sc: &Scenario) -> Result<(), TestCaseError> {
    let rel_a = build_rel(&sc.base);
    let mut base_b = sc.base.clone();
    base_b.push(vec![None, None]);
    let rel_b = build_rel(&base_b);
    let pin_row = sc.base.len();

    let fds: Vec<Fd> =
        ["c0 -> c1", "c1 -> c0"].iter().map(|t| Fd::parse(rel_a.schema(), t).unwrap()).collect();
    let config =
        ValidatorConfig { full_recompute_fraction: f64::INFINITY, ..ValidatorConfig::default() };
    let approx_config = ValidatorConfig { tracker_memory_limit: Some(1), ..config.clone() };

    let mut live_a = LiveRelation::new(rel_a);
    let mut live_b = LiveRelation::new(rel_b);
    let mut va = IncrementalValidator::with_config(&live_a, fds.clone(), config.clone());
    let mut vc = IncrementalValidator::with_config(&live_a, fds.clone(), approx_config);
    let mut vb = IncrementalValidator::with_config(&live_b, fds.clone(), config);

    // Delete B's pin row: from here on B tracks the same live multiset as
    // A, but its trackers saw a NULL at build time and stay general.
    let applied = live_b.apply(&Delta { inserts: vec![], deletes: vec![pin_row] }).unwrap();
    vb.apply(&live_b, &applied);
    for i in 0..fds.len() {
        prop_assert_eq!(vb.tracker_repr(i), "general");
    }

    let mut alive: Vec<usize> = (0..sc.base.len()).collect();
    for spec in &sc.deltas {
        let mut deleted = HashSet::new();
        let mut deletes = Vec::new();
        for &pick in &spec.delete_picks {
            if alive.is_empty() {
                break;
            }
            let r = alive[pick % alive.len()];
            if deleted.insert(r) {
                deletes.push(r);
            }
        }
        let inserts: Vec<Vec<Value>> =
            spec.inserts.iter().map(|r| r.iter().map(cell).collect()).collect();
        let delta_a = Delta { inserts: inserts.clone(), deletes: deletes.clone() };
        // A-row r maps to B-row r + 1 past the pin row's physical slot.
        let delta_b = Delta {
            inserts,
            deletes: deletes.iter().map(|&r| if r < pin_row { r } else { r + 1 }).collect(),
        };

        let applied_a = live_a.apply(&delta_a).unwrap();
        let drift_a = va.apply(&live_a, &applied_a);
        vc.apply(&live_a, &applied_a);
        let applied_b = live_b.apply(&delta_b).unwrap();
        let drift_b = vb.apply(&live_b, &applied_b);

        alive.retain(|r| !deleted.contains(r));
        alive.extend(applied_a.inserted.clone());

        // Representation-independence: identical drift, measures, bytes.
        let keys_a: Vec<String> = drift_a.iter().map(drift_key).collect();
        let keys_b: Vec<String> = drift_b.iter().map(drift_key).collect();
        prop_assert_eq!(keys_a, keys_b, "drift diverged between packed and general");
        prop_assert_eq!(va.export_trackers(), vb.export_trackers());

        // Batch oracle on a canonical snapshot.
        let snap = live_a.snapshot();
        let mut cache = DistinctCache::new();
        for (i, fd) in fds.iter().enumerate() {
            let m = Measures::compute(&snap, fd, &mut cache);
            prop_assert_eq!(va.measures(i), m);
            prop_assert_eq!(vb.measures(i), m);
            let report = violations(&snap, fd);
            let s = va.summary(i);
            prop_assert_eq!(s.violating_groups, report.groups.len());
            prop_assert_eq!(s.violating_rows, report.violating_rows());
            prop_assert_eq!(s.total_rows, alive.len());

            // The bounded tracker's exact fallback answers from live rows.
            prop_assert_eq!(vc.exact_measures(&live_a, i), m);
            let es = vc.exact_summary(&live_a, i);
            prop_assert_eq!(es.violating_groups, report.groups.len());
            prop_assert_eq!(es.violating_rows, report.violating_rows());
            prop_assert_eq!(vc.summary(i).total_rows, alive.len());
            if vc.is_approx(i) {
                let snap_c = &vc.export_trackers()[i];
                prop_assert!(snap_c.approx && snap_c.groups.is_empty());
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn representations_agree_on_random_delta_streams(sc in scenario()) {
        run_scenario(&sc)?;
    }
}

/// The dictionary-growth invalidation edge: a tracker that packed at
/// build time must fall back losslessly when delta traffic pushes a key
/// column's dictionary past 2^16 codes mid-stream.
#[test]
fn dictionary_growth_invalidates_packing_mid_stream() {
    let n0 = 60_000usize;
    let rows: Vec<Vec<String>> =
        (0..n0).map(|i| vec![format!("k{i}"), format!("v{}", i % 50)]).collect();
    let row_refs: Vec<Vec<&str>> =
        rows.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
    let row_slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
    let rel = relation_of_strs("t", &["c0", "c1"], &row_slices).unwrap();
    let fds = vec![Fd::parse(rel.schema(), "c0 -> c1").unwrap()];
    let config =
        ValidatorConfig { full_recompute_fraction: f64::INFINITY, ..ValidatorConfig::default() };

    let mut live = LiveRelation::new(rel);
    let mut v = IncrementalValidator::with_config(&live, fds.clone(), config);
    assert_eq!(v.tracker_repr(0), "packed", "60k codes still fit 16 bits");

    // 6k fresh keys push c0's dictionary past 65 536 codes mid-delta.
    let inserts: Vec<Vec<Value>> =
        (0..6_000).map(|i| vec![Value::str(format!("fresh{i}")), Value::str("v0")]).collect();
    let applied = live.apply(&Delta { inserts, deletes: vec![] }).unwrap();
    v.apply(&live, &applied);
    assert_eq!(v.tracker_repr(0), "general", "wide code forced the fallback");

    // Lossless: byte-identical to a validator built from scratch on the
    // post-growth relation (which starts general), and exact vs batch.
    let fresh = IncrementalValidator::new(&live, fds.clone());
    assert_eq!(fresh.tracker_repr(0), "general");
    assert_eq!(v.export_trackers(), fresh.export_trackers());
    let snap = live.snapshot();
    let m = Measures::compute(&snap, &fds[0], &mut DistinctCache::new());
    assert_eq!(v.measures(0), m);
}
