//! Rendering the registry: Prometheus text exposition, JSON, and the
//! flat tabular view backing `SHOW STATS`.

use crate::bucket_upper_bound;
use crate::metrics::{collect, FamilySnapshot, HistogramSnapshot, Sample, SampleValue};
use std::fmt::Write as _;

/// Exposition prefix for every metric name.
const PREFIX: &str = "evofd_";

fn label_frag(key: Option<&str>, sample: &Sample) -> String {
    match (key, &sample.label) {
        (Some(k), Some(v)) => format!("{{{k}=\"{}\"}}", escape_label(v)),
        _ => String::new(),
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn merge_label(key: &str, value: &str, extra: &str) -> String {
    format!("{{{key}=\"{}\",{extra}}}", escape_label(value))
}

/// Render every family in [`collect`] order as Prometheus text
/// exposition (version 0.0.4). Histograms use cumulative `_bucket{le=…}`
/// series in seconds plus `_sum` / `_count`; `HELP`/`TYPE` lines are
/// always emitted, so an empty family is still discoverable by scrapers.
pub fn render_prometheus() -> String {
    render_prometheus_from(&collect())
}

/// [`render_prometheus`] over an explicit family list — the registry
/// walk and the text encoding separated, so tests can pin goldens for
/// hand-built (empty, odd-labeled) families without touching the global
/// statics.
pub fn render_prometheus_from(families: &[FamilySnapshot]) -> String {
    let mut out = String::new();
    for family in families {
        render_family_prom(&mut out, family);
    }
    out
}

fn render_family_prom(out: &mut String, family: &FamilySnapshot) {
    let name = family.name;
    let kind = match family.samples.first().map(|s| &s.value) {
        Some(SampleValue::Histogram(_)) => "histogram",
        Some(SampleValue::Gauge(_)) => "gauge",
        Some(SampleValue::Counter(_)) => "counter",
        // Empty labeled family: infer the type from the name suffix.
        None if name.ends_with("_total") => "counter",
        None if name.ends_with("_seconds") => "histogram",
        None => "gauge",
    };
    let _ = writeln!(out, "# HELP {PREFIX}{name} {}", family.help);
    let _ = writeln!(out, "# TYPE {PREFIX}{name} {kind}");
    for sample in &family.samples {
        let frag = label_frag(family.label_key, sample);
        match &sample.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(out, "{PREFIX}{name}{frag} {v}");
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(out, "{PREFIX}{name}{frag} {v}");
            }
            SampleValue::Histogram(h) => {
                render_histogram_prom(out, name, family.label_key, sample, h)
            }
        }
    }
}

fn render_histogram_prom(
    out: &mut String,
    name: &str,
    key: Option<&str>,
    sample: &Sample,
    h: &HistogramSnapshot,
) {
    // Collapse the 65 native buckets to only those actually populated
    // (plus +Inf), cumulatively, with `le` bounds converted to seconds.
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        let le = bucket_upper_bound(i) as f64 / 1e9;
        let frag = match (key, &sample.label) {
            (Some(k), Some(v)) => merge_label(k, v, &format!("le=\"{le:e}\"")),
            _ => format!("{{le=\"{le:e}\"}}"),
        };
        let _ = writeln!(out, "{PREFIX}{name}_bucket{frag} {cumulative}");
    }
    let inf_frag = match (key, &sample.label) {
        (Some(k), Some(v)) => merge_label(k, v, "le=\"+Inf\""),
        _ => "{le=\"+Inf\"}".to_string(),
    };
    let _ = writeln!(out, "{PREFIX}{name}_bucket{inf_frag} {}", h.count);
    let plain = label_frag(key, sample);
    let _ = writeln!(out, "{PREFIX}{name}_sum{plain} {:e}", h.sum as f64 / 1e9);
    let _ = writeln!(out, "{PREFIX}{name}_count{plain} {}", h.count);
}

fn json_escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Render every family as a JSON object keyed by metric name. Labeled
/// families become objects keyed by label value; histograms become
/// `{count, sum_ns, p50_ns, p95_ns, p99_ns}` objects.
pub fn render_json() -> String {
    let mut out = String::from("{");
    let families = collect();
    for (i, family) in families.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n  \"{}\": ", family.name);
        if family.label_key.is_some() {
            out.push('{');
            for (j, sample) in family.samples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let label = sample.label.as_deref().unwrap_or("");
                let _ = write!(out, "\"{}\": {}", json_escape(label), json_value(&sample.value));
            }
            out.push('}');
        } else if let Some(sample) = family.samples.first() {
            out.push_str(&json_value(&sample.value));
        } else {
            out.push_str("null");
        }
    }
    out.push_str("\n}\n");
    out
}

fn json_value(v: &SampleValue) -> String {
    match v {
        SampleValue::Counter(c) => c.to_string(),
        SampleValue::Gauge(g) => g.to_string(),
        SampleValue::Histogram(h) => format!(
            "{{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
            h.count, h.sum, h.p50, h.p95, h.p99
        ),
    }
}

/// One row of the flat `SHOW STATS` view.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatSample {
    /// Metric name, with `.count` / `.sum_ms` / `.p50_ms` … suffixes for
    /// histogram components.
    pub metric: String,
    /// Rendered label (`key=value`), empty for unlabeled metrics.
    pub labels: String,
    /// The value; histogram time components are milliseconds.
    pub value: f64,
}

/// Flatten the registry to `SHOW STATS` rows. With `label_filter`, only
/// labeled samples whose label value equals the filter are returned —
/// `SHOW STATS FOR t` passes the table name. Without a filter,
/// zero-valued unlabeled metrics are kept so the whole catalog is
/// visible; empty labeled families simply contribute no rows.
pub fn flatten(label_filter: Option<&str>) -> Vec<FlatSample> {
    let mut rows = Vec::new();
    for family in collect() {
        for sample in &family.samples {
            if let Some(filter) = label_filter {
                if sample.label.as_deref() != Some(filter) {
                    continue;
                }
            }
            let labels = match (family.label_key, &sample.label) {
                (Some(k), Some(v)) => format!("{k}={v}"),
                _ => String::new(),
            };
            match &sample.value {
                SampleValue::Counter(v) => rows.push(FlatSample {
                    metric: family.name.to_string(),
                    labels,
                    value: *v as f64,
                }),
                SampleValue::Gauge(v) => rows.push(FlatSample {
                    metric: family.name.to_string(),
                    labels,
                    value: *v as f64,
                }),
                SampleValue::Histogram(h) => {
                    let parts: [(&str, f64); 5] = [
                        ("count", h.count as f64),
                        ("sum_ms", h.sum as f64 / 1e6),
                        ("p50_ms", h.p50 as f64 / 1e6),
                        ("p95_ms", h.p95 as f64 / 1e6),
                        ("p99_ms", h.p99 as f64 / 1e6),
                    ];
                    for (suffix, value) in parts {
                        rows.push(FlatSample {
                            metric: format!("{}.{suffix}", family.name),
                            labels: labels.clone(),
                            value,
                        });
                    }
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use std::sync::Mutex;

    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let _g = flag_lock();
        crate::enable();
        metrics::WAL_APPENDS_TOTAL.inc();
        metrics::WAL_APPEND_SECONDS.with_label("no-sync").record(1_000);
        metrics::REPL_LAG_FRAMES.with_label("f1").set(3);
        crate::disable();

        let text = render_prometheus();
        // Every non-comment line is `name{labels} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP evofd_") || line.starts_with("# TYPE evofd_"),
                    "bad comment: {line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("value separator");
            assert!(series.starts_with(PREFIX), "unprefixed series: {line}");
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
        // Families named in the acceptance criteria are present.
        for needle in [
            "# TYPE evofd_wal_appends_total counter",
            "# TYPE evofd_tracker_apply_seconds histogram",
            "# TYPE evofd_repl_lag_frames gauge",
            "# TYPE evofd_advisor_deltas_total counter",
            "evofd_repl_lag_frames{follower=\"f1\"} 3",
        ] {
            assert!(text.contains(needle), "missing {needle:?}");
        }
        // The labeled histogram emits cumulative buckets + sum + count.
        assert!(text.contains("evofd_wal_append_seconds_bucket{policy=\"no-sync\",le=\"+Inf\"}"));
        assert!(text.contains("evofd_wal_append_seconds_count{policy=\"no-sync\"}"));
        assert!(text.contains("evofd_wal_append_seconds_sum{policy=\"no-sync\"}"));
    }

    #[test]
    fn label_values_escape_exposition_metacharacters() {
        // A label value carrying every character the exposition format
        // reserves: backslash first (so later escapes are unambiguous),
        // then double quote, then a literal newline.
        let family = FamilySnapshot {
            name: "escape_test_total",
            help: "escape test",
            label_key: Some("table"),
            samples: vec![Sample {
                label: Some("a\\b\"c\nd".to_string()),
                value: SampleValue::Counter(7),
            }],
        };
        let text = render_prometheus_from(&[family]);
        assert_eq!(
            text,
            "# HELP evofd_escape_test_total escape test\n\
             # TYPE evofd_escape_test_total counter\n\
             evofd_escape_test_total{table=\"a\\\\b\\\"c\\nd\"} 7\n"
        );
        // No raw newline survives inside a series line.
        assert!(text.lines().all(|l| l.starts_with('#') || l.rsplit_once(' ').is_some()));
    }

    #[test]
    fn empty_registry_renders_to_the_empty_golden() {
        assert_eq!(render_prometheus_from(&[]), "");
    }

    #[test]
    fn empty_families_and_histograms_render_finite_values() {
        use crate::HISTOGRAM_BUCKETS;
        // An empty labeled family still emits HELP/TYPE (discoverable),
        // with the type inferred from the name suffix.
        let empty_counter = FamilySnapshot {
            name: "nothing_total",
            help: "empty counter family",
            label_key: Some("table"),
            samples: Vec::new(),
        };
        // A histogram with zero observations: quantiles must come out 0,
        // never NaN, and the sum must be an ordinary float literal.
        let empty_hist = FamilySnapshot {
            name: "quiet_seconds",
            help: "empty histogram",
            label_key: None,
            samples: vec![Sample {
                label: None,
                value: SampleValue::Histogram(Box::new(HistogramSnapshot {
                    buckets: [0; HISTOGRAM_BUCKETS],
                    sum: 0,
                    count: 0,
                    p50: 0,
                    p95: 0,
                    p99: 0,
                })),
            }],
        };
        let text = render_prometheus_from(&[empty_counter, empty_hist]);
        assert_eq!(
            text,
            "# HELP evofd_nothing_total empty counter family\n\
             # TYPE evofd_nothing_total counter\n\
             # HELP evofd_quiet_seconds empty histogram\n\
             # TYPE evofd_quiet_seconds histogram\n\
             evofd_quiet_seconds_bucket{le=\"+Inf\"} 0\n\
             evofd_quiet_seconds_sum 0e0\n\
             evofd_quiet_seconds_count 0\n"
        );
        assert!(!text.contains("NaN"), "no NaN leaks into the exposition");
    }

    #[test]
    fn json_render_parses_shape() {
        let _g = flag_lock();
        let text = render_json();
        assert!(text.trim_start().starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"tracker_deltas_total\": "));
        assert!(text.contains("\"pool_width\": "));
    }

    #[test]
    fn flatten_filters_by_label() {
        let _g = flag_lock();
        crate::enable();
        metrics::STORE_APPLIES_TOTAL.with_label("flatten_t").add(4);
        metrics::STORE_APPLIES_TOTAL.with_label("flatten_other").add(9);
        crate::disable();

        let all = flatten(None);
        assert!(all.iter().any(|r| r.metric == "tracker_deltas_total"));
        assert!(all.iter().any(|r| r.metric == "tracker_apply_seconds.p95_ms"));

        let filtered = flatten(Some("flatten_t"));
        assert!(!filtered.is_empty());
        assert!(filtered.iter().all(|r| r.labels.ends_with("=flatten_t")));
        assert!(filtered.iter().any(|r| r.metric == "store_applies_total" && r.value == 4.0));
    }
}
