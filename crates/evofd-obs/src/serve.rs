//! A hand-rolled HTTP/1.1 endpoint serving the observability surfaces
//! over a real socket — `std::net::TcpListener` only, no HTTP crate
//! (same no-crates.io constraint as the rest of the workspace).
//!
//! ## Routes
//!
//! * `GET /metrics` — the Prometheus text exposition of the full
//!   registry ([`crate::render_prometheus`]).
//! * `GET /metrics.json` — the same registry as JSON
//!   ([`crate::render_json`]).
//! * `GET /health` — engine health as JSON, supplied by the embedding
//!   process through a [`MonitorSource`] (per-table recovery, positions,
//!   alert state — the obs crate itself knows nothing about tables).
//! * `GET /history?table=t[&fd=…][&since=n]` — a durable FD-health time
//!   series as JSON, also via the [`MonitorSource`].
//!
//! The server is deliberately minimal: GET only, one request per
//! connection (`Connection: close`), a short read timeout, and a
//! handler thread per accepted connection so a stalled scraper cannot
//! block the next one (the listener plumbing is shared with the SQL
//! server — see [`crate::net`]). [`MetricsServer::shutdown`] stops the
//! accept loop deterministically (tests bind port 0 and shut down
//! cleanly).
//!
//! Requests are read until the `\r\n\r\n` header terminator with a
//! bounded buffer — a request split across TCP segments (or trickled
//! byte-by-byte) is reassembled, `ErrorKind::Interrupted` is retried,
//! and a peer that stalls past the read timeout gets an explicit
//! `408 Request Timeout` instead of a silently closed connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::net::{spawn_listener, TcpServer};

/// A parsed `/history` query string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistoryQuery {
    /// `table=` parameter (required by the default route contract).
    pub table: Option<String>,
    /// `fd=` parameter: restrict the series to one FD (canonical text).
    pub fd: Option<String>,
    /// `since=` parameter: only frames with `epoch >= since`.
    pub since_epoch: Option<u64>,
}

/// What the embedding process serves under `/health` and `/history`.
/// The obs crate cannot depend on the storage engine, so the engine
/// implements this trait and hands it to [`serve`]; the default
/// implementations let a bare metrics endpoint run with no engine at
/// all.
pub trait MonitorSource: Send + Sync {
    /// The `/health` response body (JSON).
    fn health_json(&self) -> String {
        "{\"status\":\"ok\",\"tables\":[]}\n".to_string()
    }

    /// The `/history` response body (JSON) for one query, or an error
    /// message rendered as HTTP 400.
    fn history_json(&self, query: &HistoryQuery) -> Result<String, String> {
        let _ = query;
        Err("no history source attached to this endpoint".to_string())
    }
}

/// A [`MonitorSource`] with nothing behind it — `/metrics` still works.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSource;

impl MonitorSource for NoSource {}

/// A running metrics endpoint; dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct MetricsServer {
    inner: TcpServer,
}

impl MetricsServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stop accepting and join the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

/// Upper bound on one request's header bytes — far above any real scrape
/// request, a guard against a peer streaming garbage forever.
const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// Socket read/write timeout, overridable for tests that exercise the
/// 408 path without waiting the default five seconds.
static IO_TIMEOUT_MS: AtomicU64 = AtomicU64::new(5_000);

/// Override the per-connection socket timeout (milliseconds). Intended
/// for tests; the default is 5000.
#[doc(hidden)]
pub fn set_http_io_timeout_ms(ms: u64) {
    IO_TIMEOUT_MS.store(ms.max(1), Ordering::SeqCst);
}

/// Bind `addr` (e.g. `127.0.0.1:9187`, port 0 for tests) and serve the
/// observability routes until [`MetricsServer::shutdown`].
pub fn serve(addr: &str, source: Arc<dyn MonitorSource>) -> std::io::Result<MetricsServer> {
    let inner = spawn_listener(addr, "evofd-metrics", move |stream| {
        handle_connection(stream, &*source);
    })?;
    Ok(MetricsServer { inner })
}

/// How reading one request head ended.
enum RequestRead {
    /// The bytes up to (excluding) the `\r\n\r\n` terminator.
    Head(Vec<u8>),
    /// The peer stalled past the read timeout mid-request.
    TimedOut,
    /// The header grew past [`MAX_REQUEST_BYTES`] without terminating.
    TooLarge,
    /// The peer closed (or errored) before finishing a request.
    Closed,
}

/// Find the end of the request head: the offset of the first
/// `\r\n\r\n` (or lenient bare `\n\n`) terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n"))
}

/// Read one HTTP request head from the stream, reassembling across
/// arbitrarily fragmented TCP segments. Retries `ErrorKind::Interrupted`;
/// maps timeout-shaped errors (`WouldBlock`/`TimedOut` — platform
/// dependent) to [`RequestRead::TimedOut`].
fn read_request_head(stream: &mut TcpStream) -> RequestRead {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_head_end(&buf) {
            buf.truncate(end);
            return RequestRead::Head(buf);
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return RequestRead::TooLarge;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return RequestRead::Closed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return RequestRead::TimedOut
            }
            Err(_) => return RequestRead::Closed,
        }
    }
}

fn handle_connection(mut stream: TcpStream, source: &dyn MonitorSource) {
    let timeout = Duration::from_millis(IO_TIMEOUT_MS.load(Ordering::SeqCst));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let outcome = read_request_head(&mut stream);
    let (status, content_type, body) = match &outcome {
        RequestRead::Head(head) => {
            // The request line is the first line of the head; this server
            // needs none of the headers that follow it.
            let head = String::from_utf8_lossy(head);
            let request_line = head.lines().next().unwrap_or("").to_string();
            respond(&request_line, source)
        }
        RequestRead::TimedOut => (
            "408 Request Timeout",
            "text/plain; charset=utf-8",
            "request header not completed in time\n".to_string(),
        ),
        RequestRead::TooLarge => (
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            format!("request head exceeds {MAX_REQUEST_BYTES} bytes\n"),
        ),
        RequestRead::Closed => return,
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    if matches!(outcome, RequestRead::TooLarge | RequestRead::TimedOut) {
        // The peer may still be mid-send; closing now, with unread bytes
        // in our receive buffer, would RST the error response out of its
        // buffer before it reads it. Send FIN and drain until the peer
        // closes (bounded by the socket read timeout).
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut sink = [0u8; 1024];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Route one request line to `(status, content-type, body)`.
fn respond(request_line: &str, source: &dyn MonitorSource) -> (&'static str, &'static str, String) {
    const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
    const JSON: &str = "application/json; charset=utf-8";
    const TEXT: &str = "text/plain; charset=utf-8";
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return ("405 Method Not Allowed", TEXT, "only GET is served\n".to_string());
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => ("200 OK", PROM, crate::render_prometheus()),
        "/metrics.json" => ("200 OK", JSON, crate::render_json()),
        "/health" => ("200 OK", JSON, source.health_json()),
        "/history" => match source.history_json(&parse_history_query(query)) {
            Ok(body) => ("200 OK", JSON, body),
            Err(message) => ("400 Bad Request", TEXT, format!("{message}\n")),
        },
        _ => ("404 Not Found", TEXT, "routes: /metrics /metrics.json /health /history\n".into()),
    }
}

/// Parse `table=…&fd=…&since=…` with percent- and `+`-decoding (FD text
/// carries spaces and `->`).
fn parse_history_query(query: &str) -> HistoryQuery {
    let mut out = HistoryQuery::default();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        let value = percent_decode(value);
        match key {
            "table" => out.table = Some(value),
            "fd" => out.fd = Some(value),
            "since" => out.since_epoch = value.parse().ok(),
            _ => {}
        }
    }
    out
}

fn percent_decode(v: &str) -> String {
    let bytes = v.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Escape a string for embedding in a JSON value — shared by the
/// [`MonitorSource`] implementations that hand-build their bodies.
pub fn json_escape_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_and_404_over_tcp() {
        let server = serve("127.0.0.1:0", Arc::new(NoSource)).unwrap();
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("# TYPE evofd_wal_appends_total counter"), "{body}");

        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        let (head, body) = get(server.addr(), "/history?table=t");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert!(body.contains("no history source"), "{body}");
    }

    #[test]
    fn fragmented_request_trickled_byte_by_byte_still_gets_200() {
        let server = serve("127.0.0.1:0", Arc::new(NoSource)).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Deliver the request one byte per write with a flush between
        // each — the worst possible TCP segmentation.
        for byte in b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n" {
            stream.write_all(&[*byte]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("evofd_"), "{response}");
    }

    #[test]
    fn request_split_mid_request_line_is_reassembled() {
        let server = serve("127.0.0.1:0", Arc::new(NoSource)).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Two segments splitting inside the request line AND inside the
        // header terminator.
        stream.write_all(b"GET /hea").unwrap();
        stream.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        stream.write_all(b"lth HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"status\":\"ok\""), "{response}");
    }

    #[test]
    fn stalled_request_gets_408_not_silent_close() {
        set_http_io_timeout_ms(150);
        let server = serve("127.0.0.1:0", Arc::new(NoSource)).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // An unterminated request head: the peer just stops.
        stream.write_all(b"GET /metrics HTTP/1.1\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        set_http_io_timeout_ms(5_000);
        assert!(response.starts_with("HTTP/1.1 408"), "{response}");
    }

    #[test]
    fn oversized_request_head_gets_431() {
        let server = serve("127.0.0.1:0", Arc::new(NoSource)).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.1\r\n").unwrap();
        let junk = vec![b'x'; MAX_REQUEST_BYTES + 1024];
        // The server may respond and stop reading before the full payload
        // is sent, so the tail of this write can fail — that's fine.
        let _ = stream.write_all(&junk);
        let mut response = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => response.extend_from_slice(&chunk[..n]),
            }
        }
        let response = String::from_utf8_lossy(&response);
        assert!(response.starts_with("HTTP/1.1 431"), "{response}");
    }

    #[test]
    fn head_end_finder_handles_both_terminators() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\n"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn shutdown_stops_the_accept_loop() {
        let mut server = serve("127.0.0.1:0", Arc::new(NoSource)).unwrap();
        let addr = server.addr();
        server.shutdown();
        server.shutdown(); // idempotent
                           // The port may linger in the OS backlog briefly, but the loop is
                           // gone: a fresh bind of the same address eventually succeeds.
        drop(server);
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
    }

    #[test]
    fn history_query_decodes_percent_and_plus() {
        let q = parse_history_query("table=t&fd=Zip%20-%3E%20City&since=42");
        assert_eq!(
            q,
            HistoryQuery {
                table: Some("t".into()),
                fd: Some("Zip -> City".into()),
                since_epoch: Some(42),
            }
        );
        let q = parse_history_query("fd=a+-%3E+b&junk&other=1");
        assert_eq!(q.fd.as_deref(), Some("a -> b"));
        assert_eq!(q.table, None);
        // A truncated escape survives literally instead of panicking.
        assert_eq!(parse_history_query("fd=100%2").fd.as_deref(), Some("100%2"));
    }

    #[test]
    fn json_escape_covers_control_characters() {
        assert_eq!(json_escape_str("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn custom_source_serves_history() {
        struct Fixed;
        impl MonitorSource for Fixed {
            fn history_json(&self, query: &HistoryQuery) -> Result<String, String> {
                Ok(format!("{{\"table\":\"{}\"}}\n", query.table.as_deref().unwrap_or("?")))
            }
        }
        let server = serve("127.0.0.1:0", Arc::new(Fixed)).unwrap();
        let (head, body) = get(server.addr(), "/history?table=places");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "{\"table\":\"places\"}\n");
    }
}
