//! A hand-rolled HTTP/1.1 endpoint serving the observability surfaces
//! over a real socket — `std::net::TcpListener` only, no HTTP crate
//! (same no-crates.io constraint as the rest of the workspace).
//!
//! ## Routes
//!
//! * `GET /metrics` — the Prometheus text exposition of the full
//!   registry ([`crate::render_prometheus`]).
//! * `GET /metrics.json` — the same registry as JSON
//!   ([`crate::render_json`]).
//! * `GET /health` — engine health as JSON, supplied by the embedding
//!   process through a [`MonitorSource`] (per-table recovery, positions,
//!   alert state — the obs crate itself knows nothing about tables).
//! * `GET /history?table=t[&fd=…][&since=n]` — a durable FD-health time
//!   series as JSON, also via the [`MonitorSource`].
//!
//! The server is deliberately minimal: GET only, one request per
//! connection (`Connection: close`), a short read timeout, and a
//! handler thread per accepted connection so a stalled scraper cannot
//! block the next one. [`MetricsServer::shutdown`] stops the accept
//! loop deterministically (tests bind port 0 and shut down cleanly).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A parsed `/history` query string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistoryQuery {
    /// `table=` parameter (required by the default route contract).
    pub table: Option<String>,
    /// `fd=` parameter: restrict the series to one FD (canonical text).
    pub fd: Option<String>,
    /// `since=` parameter: only frames with `epoch >= since`.
    pub since_epoch: Option<u64>,
}

/// What the embedding process serves under `/health` and `/history`.
/// The obs crate cannot depend on the storage engine, so the engine
/// implements this trait and hands it to [`serve`]; the default
/// implementations let a bare metrics endpoint run with no engine at
/// all.
pub trait MonitorSource: Send + Sync {
    /// The `/health` response body (JSON).
    fn health_json(&self) -> String {
        "{\"status\":\"ok\",\"tables\":[]}\n".to_string()
    }

    /// The `/history` response body (JSON) for one query, or an error
    /// message rendered as HTTP 400.
    fn history_json(&self, query: &HistoryQuery) -> Result<String, String> {
        let _ = query;
        Err("no history source attached to this endpoint".to_string())
    }
}

/// A [`MonitorSource`] with nothing behind it — `/metrics` still works.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSource;

impl MonitorSource for NoSource {}

/// A running metrics endpoint; dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9187`, port 0 for tests) and serve the
/// observability routes until [`MetricsServer::shutdown`].
pub fn serve(addr: &str, source: Arc<dyn MonitorSource>) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handle =
        std::thread::Builder::new().name("evofd-metrics".to_string()).spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let source = Arc::clone(&source);
                // One short-lived thread per connection: requests are tiny
                // and rare (scrapes), and a stalled peer must not block the
                // accept loop.
                let _ = std::thread::Builder::new()
                    .name("evofd-metrics-conn".to_string())
                    .spawn(move || handle_connection(stream, &*source));
            }
        })?;
    Ok(MetricsServer { addr, stop, handle: Some(handle) })
}

fn handle_connection(stream: TcpStream, source: &dyn MonitorSource) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers; this server needs none of them.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut stream = reader.into_inner();
    let (status, content_type, body) = respond(&request_line, source);
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Route one request line to `(status, content-type, body)`.
fn respond(request_line: &str, source: &dyn MonitorSource) -> (&'static str, &'static str, String) {
    const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
    const JSON: &str = "application/json; charset=utf-8";
    const TEXT: &str = "text/plain; charset=utf-8";
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return ("405 Method Not Allowed", TEXT, "only GET is served\n".to_string());
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => ("200 OK", PROM, crate::render_prometheus()),
        "/metrics.json" => ("200 OK", JSON, crate::render_json()),
        "/health" => ("200 OK", JSON, source.health_json()),
        "/history" => match source.history_json(&parse_history_query(query)) {
            Ok(body) => ("200 OK", JSON, body),
            Err(message) => ("400 Bad Request", TEXT, format!("{message}\n")),
        },
        _ => ("404 Not Found", TEXT, "routes: /metrics /metrics.json /health /history\n".into()),
    }
}

/// Parse `table=…&fd=…&since=…` with percent- and `+`-decoding (FD text
/// carries spaces and `->`).
fn parse_history_query(query: &str) -> HistoryQuery {
    let mut out = HistoryQuery::default();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        let value = percent_decode(value);
        match key {
            "table" => out.table = Some(value),
            "fd" => out.fd = Some(value),
            "since" => out.since_epoch = value.parse().ok(),
            _ => {}
        }
    }
    out
}

fn percent_decode(v: &str) -> String {
    let bytes = v.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Escape a string for embedding in a JSON value — shared by the
/// [`MonitorSource`] implementations that hand-build their bodies.
pub fn json_escape_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_and_404_over_tcp() {
        let server = serve("127.0.0.1:0", Arc::new(NoSource)).unwrap();
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("# TYPE evofd_wal_appends_total counter"), "{body}");

        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        let (head, body) = get(server.addr(), "/history?table=t");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert!(body.contains("no history source"), "{body}");
    }

    #[test]
    fn shutdown_stops_the_accept_loop() {
        let mut server = serve("127.0.0.1:0", Arc::new(NoSource)).unwrap();
        let addr = server.addr();
        server.shutdown();
        server.shutdown(); // idempotent
                           // The port may linger in the OS backlog briefly, but the loop is
                           // gone: a fresh bind of the same address eventually succeeds.
        drop(server);
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
    }

    #[test]
    fn history_query_decodes_percent_and_plus() {
        let q = parse_history_query("table=t&fd=Zip%20-%3E%20City&since=42");
        assert_eq!(
            q,
            HistoryQuery {
                table: Some("t".into()),
                fd: Some("Zip -> City".into()),
                since_epoch: Some(42),
            }
        );
        let q = parse_history_query("fd=a+-%3E+b&junk&other=1");
        assert_eq!(q.fd.as_deref(), Some("a -> b"));
        assert_eq!(q.table, None);
        // A truncated escape survives literally instead of panicking.
        assert_eq!(parse_history_query("fd=100%2").fd.as_deref(), Some("100%2"));
    }

    #[test]
    fn json_escape_covers_control_characters() {
        assert_eq!(json_escape_str("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn custom_source_serves_history() {
        struct Fixed;
        impl MonitorSource for Fixed {
            fn history_json(&self, query: &HistoryQuery) -> Result<String, String> {
                Ok(format!("{{\"table\":\"{}\"}}\n", query.table.as_deref().unwrap_or("?")))
            }
        }
        let server = serve("127.0.0.1:0", Arc::new(Fixed)).unwrap();
        let (head, body) = get(server.addr(), "/history?table=places");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "{\"table\":\"places\"}\n");
    }
}
