//! The static metric registry: every family the engine exports.
//!
//! Families are plain statics so hot paths record through a relaxed
//! atomic (or a cached `Arc` handle for labeled families) with no
//! registry lookup. [`collect`] walks the catalog and snapshots every
//! family for rendering; the `mintpool` worker-pool counters are bridged
//! in at collection time from the pool's own native atomics.

use crate::{Counter, CounterVec, GaugeVec, Histogram, HistogramVec, HISTOGRAM_BUCKETS};

// ------------------------------------------------------------------
// evofd-incremental: tracker / validator hot path.
// ------------------------------------------------------------------

/// Deltas applied through the incremental validator.
pub static TRACKER_DELTAS_TOTAL: Counter = Counter::new();
/// Deltas maintained incrementally (no rebuild).
pub static TRACKER_INCREMENTAL_TOTAL: Counter = Counter::new();
/// Deltas that fell back to a full tracker rebuild.
pub static TRACKER_REBUILDS_TOTAL: Counter = Counter::new();
/// Rows touched (inserts + deletes) across applied deltas.
pub static TRACKER_ROWS_TOUCHED_TOTAL: Counter = Counter::new();
/// Confidence drift events published on the change feed.
pub static TRACKER_DRIFT_EVENTS_TOTAL: Counter = Counter::new();
/// End-to-end validator delta-apply time.
pub static TRACKER_APPLY_SECONDS: Histogram = Histogram::new();
/// Per-FD tracker maintenance time, labeled by FD display string.
pub static TRACKER_FD_APPLY_SECONDS: HistogramVec = HistogramVec::new();
/// Per-FD trackers built from scratch (initial builds + rebuilds).
pub static TRACKER_BUILDS_TOTAL: Counter = Counter::new();
/// Packed trackers converted to the general representation mid-stream
/// (a key column grew a wide dictionary or gained its first NULL).
pub static TRACKER_PACK_FALLBACKS_TOTAL: Counter = Counter::new();
/// Exact trackers degraded to memory-bounded approximate sketches.
pub static TRACKER_APPROX_DEGRADES_TOTAL: Counter = Counter::new();

// ------------------------------------------------------------------
// evofd-incremental / evofd-core: live advisor + repair index.
// ------------------------------------------------------------------

/// Deltas applied through the live advisor.
pub static ADVISOR_DELTAS_TOTAL: Counter = Counter::new();
/// Advisor deltas maintained incrementally (per-FD state machine).
pub static ADVISOR_INCREMENTAL_TOTAL: Counter = Counter::new();
/// Advisor full resyncs, labeled by cause
/// (`epoch-gap` | `oversized` | `compaction` | `explicit`).
pub static ADVISOR_RESYNCS_TOTAL: CounterVec = CounterVec::new();
/// Repair indexes built when an FD first turns violated.
pub static ADVISOR_INDEXES_BUILT_TOTAL: Counter = Counter::new();
/// Accepted-repair replacements: evolved FD swapped into the tracked set.
pub static ADVISOR_ACCEPTED_REPLACEMENTS_TOTAL: Counter = Counter::new();
/// Accepted repairs re-opened because the evolved FD drifted violated.
pub static ADVISOR_REOPENED_TOTAL: Counter = Counter::new();
/// Repair-index full (re)builds.
pub static REPAIR_INDEX_BUILDS_TOTAL: Counter = Counter::new();
/// Repair-index incremental updates.
pub static REPAIR_INDEX_UPDATES_TOTAL: Counter = Counter::new();
/// Repair-index full (re)build time.
pub static REPAIR_INDEX_BUILD_SECONDS: Histogram = Histogram::new();
/// Repair-index incremental update time.
pub static REPAIR_INDEX_UPDATE_SECONDS: Histogram = Histogram::new();
/// Dirty-branch node invalidations (lattice nodes rebuilt or pruned).
pub static REPAIR_INDEX_INVALIDATIONS_TOTAL: Counter = Counter::new();
/// Lattice truncations (candidate budget exhausted mid-restructure).
pub static REPAIR_INDEX_TRUNCATIONS_TOTAL: Counter = Counter::new();

// ------------------------------------------------------------------
// evofd-incremental: secondary indexes (SQL read path).
// ------------------------------------------------------------------

/// Secondary-index full (re)builds — initial builds, compactions and
/// epoch-gap fallbacks.
pub static INDEX_REBUILDS_TOTAL: Counter = Counter::new();
/// Secondary-index deltas absorbed in O(changed rows).
pub static INDEX_INCREMENTAL_TOTAL: Counter = Counter::new();

// ------------------------------------------------------------------
// evofd-sql: planner / read path.
// ------------------------------------------------------------------

/// Statements answered by a full sequential scan.
pub static PLANNER_SEQ_SCANS_TOTAL: Counter = Counter::new();
/// Statements answered through a secondary-index equality probe.
pub static PLANNER_INDEX_PROBES_TOTAL: Counter = Counter::new();
/// FD-aware plan rewrites applied, labeled by kind
/// (`group-collapse` | `distinct-reduce` | `unique-probe`).
pub static PLANNER_FD_REWRITES_TOTAL: CounterVec = CounterVec::new();

// ------------------------------------------------------------------
// evofd-persist: WAL, store, snapshots, recovery.
// ------------------------------------------------------------------

/// WAL records appended.
pub static WAL_APPENDS_TOTAL: Counter = Counter::new();
/// WAL frame write time, labeled by sync policy.
pub static WAL_APPEND_SECONDS: HistogramVec = HistogramVec::new();
/// WAL fsync time, labeled by sync policy.
pub static WAL_FSYNC_SECONDS: HistogramVec = HistogramVec::new();
/// Bytes written to WALs.
pub static WAL_BYTES_WRITTEN_TOTAL: Counter = Counter::new();
/// Durable delta applies, labeled by table.
pub static STORE_APPLIES_TOTAL: CounterVec = CounterVec::new();
/// Durable delta apply time (journal + live + validator + advisor),
/// labeled by table.
pub static STORE_APPLY_SECONDS: HistogramVec = HistogramVec::new();
/// Compactions triggered, labeled by kind (`tombstone` | `wal-threshold`).
pub static STORE_COMPACTIONS_TOTAL: CounterVec = CounterVec::new();
/// Columnar snapshot encode time.
pub static SNAPSHOT_ENCODE_SECONDS: Histogram = Histogram::new();
/// Columnar snapshot load time.
pub static SNAPSHOT_LOAD_SECONDS: Histogram = Histogram::new();
/// WAL records replayed during recovery.
pub static RECOVERY_REPLAYED_TOTAL: Counter = Counter::new();
/// Per-table recovery (open) time.
pub static RECOVERY_SECONDS: Histogram = Histogram::new();

// ------------------------------------------------------------------
// evofd-persist: durable FD-health history + alert rules.
// ------------------------------------------------------------------

/// Frames appended to durable HISTORY files.
pub static HISTORY_FRAMES_TOTAL: Counter = Counter::new();
/// Bytes appended to durable HISTORY files.
pub static HISTORY_BYTES_TOTAL: Counter = Counter::new();
/// Alert rules fired, labeled by table.
pub static ALERTS_FIRED_TOTAL: CounterVec = CounterVec::new();
/// Alert rules resolved (condition cleared), labeled by table.
pub static ALERTS_RESOLVED_TOTAL: CounterVec = CounterVec::new();

// ------------------------------------------------------------------
// Replication.
// ------------------------------------------------------------------

/// Frames shipped by leaders.
pub static REPL_FRAMES_SHIPPED_TOTAL: Counter = Counter::new();
/// Frames applied by followers.
pub static REPL_FRAMES_APPLIED_TOTAL: Counter = Counter::new();
/// Frames skipped by followers (already durable).
pub static REPL_FRAMES_SKIPPED_TOTAL: Counter = Counter::new();
/// Snapshot bootstraps installed by followers.
pub static REPL_BOOTSTRAPS_TOTAL: Counter = Counter::new();
/// Frames rejected, labeled by cause (`frame` | `epoch` | `decision`).
pub static REPL_REJECTS_TOTAL: CounterVec = CounterVec::new();
/// Follower lag in frames, labeled by follower name.
pub static REPL_LAG_FRAMES: GaugeVec = GaugeVec::new();

// ------------------------------------------------------------------
// SQL front end.
// ------------------------------------------------------------------

/// Statements executed, labeled by verb.
pub static SQL_STATEMENTS_TOTAL: CounterVec = CounterVec::new();

/// A snapshot of one histogram's state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, index = bit width of the nanosecond value.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of observed nanoseconds.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
    /// Estimated p50 in nanoseconds.
    pub p50: u64,
    /// Estimated p95 in nanoseconds.
    pub p95: u64,
    /// Estimated p99 in nanoseconds.
    pub p99: u64,
}

impl HistogramSnapshot {
    fn of(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: h.buckets(),
            sum: h.sum(),
            count: h.count(),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
        }
    }
}

/// One sample within a family: an optional label value plus the value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Label value (`None` for unlabeled families).
    pub label: Option<String>,
    /// The sampled value.
    pub value: SampleValue,
}

/// The value of one sample.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Monotone counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state (boxed: a snapshot carries all bucket counts).
    Histogram(Box<HistogramSnapshot>),
}

/// A snapshot of one metric family.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Metric name (without the `evofd_` exposition prefix).
    pub name: &'static str,
    /// One-line help string.
    pub help: &'static str,
    /// Label key shared by all samples (`None` for unlabeled families).
    pub label_key: Option<&'static str>,
    /// The family's samples. Unlabeled counter/gauge families always
    /// contain exactly one sample; labeled families may be empty.
    pub samples: Vec<Sample>,
}

fn counter(name: &'static str, help: &'static str, c: &Counter) -> FamilySnapshot {
    FamilySnapshot {
        name,
        help,
        label_key: None,
        samples: vec![Sample { label: None, value: SampleValue::Counter(c.get()) }],
    }
}

fn gauge_sample(name: &'static str, help: &'static str, v: i64) -> FamilySnapshot {
    FamilySnapshot {
        name,
        help,
        label_key: None,
        samples: vec![Sample { label: None, value: SampleValue::Gauge(v) }],
    }
}

fn counter_sample(name: &'static str, help: &'static str, v: u64) -> FamilySnapshot {
    FamilySnapshot {
        name,
        help,
        label_key: None,
        samples: vec![Sample { label: None, value: SampleValue::Counter(v) }],
    }
}

fn histogram(name: &'static str, help: &'static str, h: &Histogram) -> FamilySnapshot {
    FamilySnapshot {
        name,
        help,
        label_key: None,
        samples: vec![Sample {
            label: None,
            value: SampleValue::Histogram(Box::new(HistogramSnapshot::of(h))),
        }],
    }
}

fn counter_vec(
    name: &'static str,
    help: &'static str,
    key: &'static str,
    v: &CounterVec,
) -> FamilySnapshot {
    FamilySnapshot {
        name,
        help,
        label_key: Some(key),
        samples: v
            .children()
            .into_iter()
            .map(|(l, c)| Sample { label: Some(l), value: SampleValue::Counter(c.get()) })
            .collect(),
    }
}

fn gauge_vec(
    name: &'static str,
    help: &'static str,
    key: &'static str,
    v: &GaugeVec,
) -> FamilySnapshot {
    FamilySnapshot {
        name,
        help,
        label_key: Some(key),
        samples: v
            .children()
            .into_iter()
            .map(|(l, g)| Sample { label: Some(l), value: SampleValue::Gauge(g.get()) })
            .collect(),
    }
}

fn histogram_vec(
    name: &'static str,
    help: &'static str,
    key: &'static str,
    v: &HistogramVec,
) -> FamilySnapshot {
    FamilySnapshot {
        name,
        help,
        label_key: Some(key),
        samples: v
            .children()
            .into_iter()
            .map(|(l, h)| Sample {
                label: Some(l),
                value: SampleValue::Histogram(Box::new(HistogramSnapshot::of(&h))),
            })
            .collect(),
    }
}

/// Snapshot every family in the catalog, in stable order. The worker
/// pool's counters are read live from `mintpool`.
pub fn collect() -> Vec<FamilySnapshot> {
    let pool = mintpool::pool_stats();
    vec![
        // Tracker / validator.
        counter(
            "tracker_deltas_total",
            "Deltas applied through the incremental validator",
            &TRACKER_DELTAS_TOTAL,
        ),
        counter(
            "tracker_incremental_total",
            "Deltas maintained incrementally without a rebuild",
            &TRACKER_INCREMENTAL_TOTAL,
        ),
        counter(
            "tracker_rebuilds_total",
            "Deltas that fell back to a full tracker rebuild",
            &TRACKER_REBUILDS_TOTAL,
        ),
        counter(
            "tracker_rows_touched_total",
            "Rows touched (inserts plus deletes) across applied deltas",
            &TRACKER_ROWS_TOUCHED_TOTAL,
        ),
        counter(
            "tracker_drift_events_total",
            "Confidence drift events published on the change feed",
            &TRACKER_DRIFT_EVENTS_TOTAL,
        ),
        histogram(
            "tracker_apply_seconds",
            "End-to-end validator delta-apply time",
            &TRACKER_APPLY_SECONDS,
        ),
        histogram_vec(
            "tracker_fd_apply_seconds",
            "Per-FD tracker maintenance time",
            "fd",
            &TRACKER_FD_APPLY_SECONDS,
        ),
        counter(
            "tracker_builds_total",
            "Per-FD trackers built from scratch (initial builds plus rebuilds)",
            &TRACKER_BUILDS_TOTAL,
        ),
        counter(
            "tracker_pack_fallbacks_total",
            "Packed trackers converted to the general representation mid-stream",
            &TRACKER_PACK_FALLBACKS_TOTAL,
        ),
        counter(
            "tracker_approx_degrades_total",
            "Exact trackers degraded to memory-bounded approximate sketches",
            &TRACKER_APPROX_DEGRADES_TOTAL,
        ),
        // Advisor / repair index.
        counter(
            "advisor_deltas_total",
            "Deltas applied through the live advisor",
            &ADVISOR_DELTAS_TOTAL,
        ),
        counter(
            "advisor_incremental_total",
            "Advisor deltas maintained incrementally",
            &ADVISOR_INCREMENTAL_TOTAL,
        ),
        counter_vec(
            "advisor_resyncs_total",
            "Advisor full resyncs by cause",
            "cause",
            &ADVISOR_RESYNCS_TOTAL,
        ),
        counter(
            "advisor_indexes_built_total",
            "Repair indexes built when an FD first turns violated",
            &ADVISOR_INDEXES_BUILT_TOTAL,
        ),
        counter(
            "advisor_accepted_replacements_total",
            "Accepted repairs that replaced the original FD in the tracked set",
            &ADVISOR_ACCEPTED_REPLACEMENTS_TOTAL,
        ),
        counter(
            "advisor_reopened_total",
            "Accepted repairs re-opened after the evolved FD drifted violated",
            &ADVISOR_REOPENED_TOTAL,
        ),
        counter(
            "repair_index_builds_total",
            "Repair-index full rebuilds",
            &REPAIR_INDEX_BUILDS_TOTAL,
        ),
        counter(
            "repair_index_updates_total",
            "Repair-index incremental updates",
            &REPAIR_INDEX_UPDATES_TOTAL,
        ),
        histogram(
            "repair_index_build_seconds",
            "Repair-index full rebuild time",
            &REPAIR_INDEX_BUILD_SECONDS,
        ),
        histogram(
            "repair_index_update_seconds",
            "Repair-index incremental update time",
            &REPAIR_INDEX_UPDATE_SECONDS,
        ),
        counter(
            "repair_index_invalidations_total",
            "Dirty-branch lattice node invalidations",
            &REPAIR_INDEX_INVALIDATIONS_TOTAL,
        ),
        counter(
            "repair_index_truncations_total",
            "Lattice truncations under the candidate budget",
            &REPAIR_INDEX_TRUNCATIONS_TOTAL,
        ),
        // Secondary indexes / planner.
        counter(
            "index_rebuilds_total",
            "Secondary-index full rebuilds (builds, compactions, epoch gaps)",
            &INDEX_REBUILDS_TOTAL,
        ),
        counter(
            "index_incremental_total",
            "Secondary-index deltas absorbed in O(changed rows)",
            &INDEX_INCREMENTAL_TOTAL,
        ),
        counter(
            "planner_seq_scans_total",
            "Statements answered by a full sequential scan",
            &PLANNER_SEQ_SCANS_TOTAL,
        ),
        counter(
            "planner_index_probes_total",
            "Statements answered through a secondary-index equality probe",
            &PLANNER_INDEX_PROBES_TOTAL,
        ),
        counter_vec(
            "planner_fd_rewrites_total",
            "FD-aware plan rewrites applied by kind",
            "kind",
            &PLANNER_FD_REWRITES_TOTAL,
        ),
        // WAL / store / snapshots / recovery.
        counter("wal_appends_total", "WAL records appended", &WAL_APPENDS_TOTAL),
        histogram_vec(
            "wal_append_seconds",
            "WAL frame write time by sync policy",
            "policy",
            &WAL_APPEND_SECONDS,
        ),
        histogram_vec(
            "wal_fsync_seconds",
            "WAL fsync time by sync policy",
            "policy",
            &WAL_FSYNC_SECONDS,
        ),
        counter("wal_bytes_written_total", "Bytes written to WALs", &WAL_BYTES_WRITTEN_TOTAL),
        counter_vec(
            "store_applies_total",
            "Durable delta applies by table",
            "table",
            &STORE_APPLIES_TOTAL,
        ),
        histogram_vec(
            "store_apply_seconds",
            "Durable delta apply time by table",
            "table",
            &STORE_APPLY_SECONDS,
        ),
        counter_vec(
            "store_compactions_total",
            "Compactions triggered by kind",
            "kind",
            &STORE_COMPACTIONS_TOTAL,
        ),
        histogram(
            "snapshot_encode_seconds",
            "Columnar snapshot encode time",
            &SNAPSHOT_ENCODE_SECONDS,
        ),
        histogram("snapshot_load_seconds", "Columnar snapshot load time", &SNAPSHOT_LOAD_SECONDS),
        counter(
            "recovery_replayed_total",
            "WAL records replayed during recovery",
            &RECOVERY_REPLAYED_TOTAL,
        ),
        histogram("recovery_seconds", "Per-table recovery time on open", &RECOVERY_SECONDS),
        // Durable history + alerts.
        counter(
            "history_frames_total",
            "Frames appended to durable HISTORY files",
            &HISTORY_FRAMES_TOTAL,
        ),
        counter(
            "history_bytes_total",
            "Bytes appended to durable HISTORY files",
            &HISTORY_BYTES_TOTAL,
        ),
        counter_vec(
            "alerts_fired_total",
            "Alert rules fired by table",
            "table",
            &ALERTS_FIRED_TOTAL,
        ),
        counter_vec(
            "alerts_resolved_total",
            "Alert rules resolved by table",
            "table",
            &ALERTS_RESOLVED_TOTAL,
        ),
        // Replication.
        counter(
            "repl_frames_shipped_total",
            "Frames shipped by leaders",
            &REPL_FRAMES_SHIPPED_TOTAL,
        ),
        counter(
            "repl_frames_applied_total",
            "Frames applied by followers",
            &REPL_FRAMES_APPLIED_TOTAL,
        ),
        counter(
            "repl_frames_skipped_total",
            "Frames skipped by followers as already durable",
            &REPL_FRAMES_SKIPPED_TOTAL,
        ),
        counter(
            "repl_bootstraps_total",
            "Snapshot bootstraps installed by followers",
            &REPL_BOOTSTRAPS_TOTAL,
        ),
        counter_vec(
            "repl_rejects_total",
            "Replication frames rejected by cause",
            "cause",
            &REPL_REJECTS_TOTAL,
        ),
        gauge_vec("repl_lag_frames", "Follower lag in frames", "follower", &REPL_LAG_FRAMES),
        // SQL front end.
        counter_vec(
            "sql_statements_total",
            "Statements executed by verb",
            "verb",
            &SQL_STATEMENTS_TOTAL,
        ),
        // Worker pool (bridged from mintpool's native atomics).
        gauge_sample("pool_width", "Worker-pool width (threads)", pool.width as i64),
        gauge_sample("pool_spawned", "Worker threads currently spawned", pool.spawned as i64),
        gauge_sample("pool_queue_depth", "Jobs pending across pool queues", pool.queued as i64),
        counter_sample("pool_tasks_total", "Jobs pushed into the pool", pool.tasks),
        counter_sample(
            "pool_steals_total",
            "Jobs taken from another queue than the pusher's",
            pool.steals,
        ),
        counter_sample(
            "pool_injected_total",
            "Jobs injected from non-worker threads",
            pool.injected,
        ),
    ]
}
