//! # evofd-obs — engine-wide observability for the live FD engine
//!
//! Lock-light, zero-cost-when-disabled metrics plus a lightweight
//! structured tracing facade, hand-rolled because the build environment
//! has no crates.io access (same vendoring style as `mintpool`).
//!
//! ## Metrics core
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomics;
//! * [`Histogram`] — log-bucketed latencies (bucket = bit width of the
//!   nanosecond value) with p50/p95/p99 estimation;
//! * [`CounterVec`] / [`GaugeVec`] / [`HistogramVec`] — labeled families
//!   (one label key per family), a mutex only on handle lookup, never on
//!   the recording path once a handle is cached;
//! * [`metrics`] — the static registry: every family the engine exports,
//!   walkable by [`render_prometheus`] / [`render_json`] / [`flatten`].
//!
//! Recording is gated on a process-wide [`enabled`] flag: one relaxed
//! atomic load and a predicted branch when off, so instrumented hot paths
//! cost nothing measurable until somebody turns observability on.
//!
//! ## Tracing facade
//!
//! [`span`] opens a wall-clock span; dropping the guard records the
//! duration into a bounded ring-buffer event log ([`recent_events`]) and,
//! when the duration crosses the [`set_slow_threshold_ms`] threshold,
//! logs the slow operation to stderr with its child-span breakdown.
//!
//! ## Span naming convention
//!
//! Dotted lowercase paths, `<component>.<operation>`: `store.apply`,
//! `wal.append`, `validator.apply`, `advisor.apply`, `sql.execute`,
//! `follow.round`. Child spans nest by call structure, not by name.
//!
//! ## Per-statement stage timings
//!
//! `EXPLAIN ANALYZE` uses the thread-local stage recorder ([`stages_begin`]
//! / [`stage`] / [`stages_take`]), which is independent of the global
//! enabled flag — explaining a statement must work even when engine-wide
//! metrics are off.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod metrics;
pub mod net;
mod render;
pub mod serve;

pub use net::{spawn_listener, TcpServer};
pub use render::{flatten, render_json, render_prometheus, render_prometheus_from, FlatSample};
pub use serve::{json_escape_str, serve, HistoryQuery, MetricsServer, MonitorSource, NoSource};

// ----------------------------------------------------------------------
// Global switches.
// ----------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Slow-op threshold in nanoseconds; 0 disables slow-op logging.
static SLOW_NS: AtomicU64 = AtomicU64::new(0);

/// Turn metric recording and span tracing on, process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn metric recording and span tracing off (the default).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether recording is on. One relaxed load — callers on hot paths can
/// (and do) branch on this before doing any labeled lookups.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Log any span that takes at least `ms` milliseconds to stderr, with its
/// child-span breakdown. `0` disables slow-op logging. Implies nothing
/// about [`enable`] — the CLI turns both on for `--trace-slow`.
pub fn set_slow_threshold_ms(ms: u64) {
    SLOW_NS.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
}

fn slow_threshold_ns() -> u64 {
    SLOW_NS.load(Ordering::Relaxed)
}

// ----------------------------------------------------------------------
// Counters and gauges.
// ----------------------------------------------------------------------

/// A monotone counter (relaxed `AtomicU64`). Recording is a no-op while
/// the registry is [disabled](enabled).
#[derive(Debug)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A zeroed counter, usable in `static` position.
    pub const fn new() -> Counter {
        Counter { v: AtomicU64::new(0) }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// A settable signed gauge (relaxed `AtomicI64`). Recording is a no-op
/// while the registry is [disabled](enabled).
#[derive(Debug)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge, usable in `static` position.
    pub const fn new() -> Gauge {
        Gauge { v: AtomicI64::new(0) }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.v.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        if enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

// ----------------------------------------------------------------------
// Log-bucketed latency histogram.
// ----------------------------------------------------------------------

/// Number of histogram buckets: one per possible bit width of a `u64`
/// nanosecond value, plus one for zero.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed latency histogram: values land in the bucket of their
/// bit width (`bucket 0` holds exactly 0, bucket `i ≥ 1` holds
/// `2^(i-1) ..= 2^i - 1`). Percentiles are estimated by locating the
/// bucket holding the requested rank and linearly interpolating within
/// it by the rank's position among the bucket's own observations —
/// tighter than the former upper-bound reporting (which was only within
/// 2× of the true value) while never exceeding it.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// The bucket a value lands in: its bit width (0 for 0).
pub const fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub const fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Linear interpolation of the `pos`-th of `count` observations inside
/// bucket `i` (`pos` is 1-based): `lo + (pos/count)·(hi − lo)`, so the
/// bucket's final observation maps to its upper bound.
fn interpolate_in_bucket(i: usize, pos: u64, count: u64) -> u64 {
    if i == 0 {
        return 0; // bucket 0 holds exactly the value 0
    }
    let hi = bucket_upper_bound(i);
    let lo = bucket_upper_bound(i - 1) + 1;
    let frac = pos as f64 / count.max(1) as f64;
    lo + ((hi - lo) as f64 * frac) as u64
}

impl Histogram {
    /// An empty histogram, usable in `static` position.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value (nanoseconds by convention). No-op while the
    /// registry is [disabled](enabled).
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.record(v);
        }
    }

    /// Record unconditionally (for tests and explicit accumulators).
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (index = bit width of the value).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, c) in out.iter_mut().zip(&self.counts) {
            *slot = c.load(Ordering::Relaxed);
        }
        out
    }

    /// Estimated quantile `q` in `[0, 1]`: the rank-`⌈q·count⌉`
    /// observation, linearly interpolated *within* its bucket (uniform
    /// within-bucket assumption). The rank's position among the bucket's
    /// own observations picks the point between the bucket's lower and
    /// upper bound — the last observation of a bucket still reports the
    /// upper bound, so estimates never exceed the old upper-bound
    /// reporting, and a half-full bucket reports its midpoint instead of
    /// a 2× overshoot. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let buckets = self.buckets();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // 1-based position of the rank within this bucket.
                let pos = rank - (seen - c);
                return interpolate_in_bucket(i, pos, c);
            }
        }
        u64::MAX
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

// ----------------------------------------------------------------------
// Labeled families.
// ----------------------------------------------------------------------

macro_rules! labeled_family {
    ($name:ident, $metric:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// One label key per family (fixed by the registry descriptor);
        /// the mutex is taken only to look up or create a handle — cache
        /// the returned `Arc` to keep recording lock-free.
        #[derive(Debug)]
        pub struct $name {
            children: Mutex<BTreeMap<String, Arc<$metric>>>,
        }

        impl $name {
            /// An empty family, usable in `static` position.
            pub const fn new() -> $name {
                $name { children: Mutex::new(BTreeMap::new()) }
            }

            /// The child for `label`, created on first use.
            pub fn with_label(&self, label: &str) -> Arc<$metric> {
                let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(m) = children.get(label) {
                    return Arc::clone(m);
                }
                let m = Arc::new(<$metric>::new());
                children.insert(label.to_string(), Arc::clone(&m));
                m
            }

            /// Snapshot of `(label, child)` pairs in label order.
            pub fn children(&self) -> Vec<(String, Arc<$metric>)> {
                self.children
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter()
                    .map(|(k, v)| (k.clone(), Arc::clone(v)))
                    .collect()
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new()
            }
        }
    };
}

labeled_family!(CounterVec, Counter, "A labeled family of [`Counter`]s.");
labeled_family!(GaugeVec, Gauge, "A labeled family of [`Gauge`]s.");
labeled_family!(HistogramVec, Histogram, "A labeled family of [`Histogram`]s.");

// ----------------------------------------------------------------------
// Timers.
// ----------------------------------------------------------------------

/// A start-time capture that is `None` while recording is disabled, so a
/// disabled timer never even reads the clock.
#[derive(Debug, Clone, Copy)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Start timing iff the registry is enabled.
    #[inline]
    pub fn start() -> Timer {
        Timer(if enabled() { Some(Instant::now()) } else { None })
    }

    /// Elapsed nanoseconds (`None` when the timer never started).
    #[inline]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0.map(|t| t.elapsed().as_nanos() as u64)
    }

    /// Record the elapsed time into `h` (no-op for a disabled timer).
    #[inline]
    pub fn observe(&self, h: &Histogram) {
        if let Some(ns) = self.elapsed_ns() {
            h.record(ns);
        }
    }
}

// ----------------------------------------------------------------------
// Spans: wall-time tracing with ring-buffer log and slow-op reporting.
// ----------------------------------------------------------------------

/// One completed span, as kept in the ring-buffer event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global completion order (monotone across all threads) — what
    /// [`recent_events`] merges the striped rings by.
    pub seq: u64,
    /// Span name (`component.operation`).
    pub name: &'static str,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
    /// Nesting depth at completion (0 = top-level).
    pub depth: usize,
}

/// Ring-buffer capacity for [`recent_events`] (per stripe).
const TRACE_RING_CAP: usize = 1024;

/// Number of trace-ring stripes. Each recording thread hashes to one
/// stripe, so concurrent span drops on different threads almost never
/// share a mutex; [`recent_events`] merges the stripes by `seq`.
const TRACE_STRIPES: usize = 8;

static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);
static TRACE_RING: [Mutex<VecDeque<TraceEvent>>; TRACE_STRIPES] =
    [const { Mutex::new(VecDeque::new()) }; TRACE_STRIPES];

thread_local! {
    /// This thread's stripe, hashed once from its thread id.
    static TRACE_STRIPE: usize = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % TRACE_STRIPES
    };
}

thread_local! {
    /// Per-thread stack of open spans; each frame accumulates its
    /// completed children for the slow-op breakdown.
    static SPAN_STACK: RefCell<Vec<Vec<(&'static str, u64)>>> = const { RefCell::new(Vec::new()) };
}

/// A live span; dropping it records the duration. Obtained from [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Open a span named `name` (see the module docs for the naming
/// convention). Free when tracing is disabled: the guard holds no clock
/// reading and its drop is a predicted branch.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, start: None };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(Vec::new()));
    SpanGuard { name, start: Some(Instant::now()) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = start.elapsed().as_nanos() as u64;
        let (children, depth) = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let children = stack.pop().unwrap_or_default();
            let depth = stack.len();
            if let Some(parent) = stack.last_mut() {
                parent.push((self.name, nanos));
            }
            (children, depth)
        });
        {
            let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
            let stripe = TRACE_STRIPE.with(|s| *s);
            let mut ring = TRACE_RING[stripe].lock().unwrap_or_else(|e| e.into_inner());
            if ring.len() >= TRACE_RING_CAP {
                ring.pop_front();
            }
            ring.push_back(TraceEvent { seq, name: self.name, nanos, depth });
        }
        let threshold = slow_threshold_ns();
        if threshold > 0 && nanos >= threshold {
            let mut breakdown = String::new();
            for (name, child_ns) in &children {
                breakdown.push_str(&format!(" {name}={:.3}ms", *child_ns as f64 / 1e6));
            }
            eprintln!(
                "[slow] {} took {:.3}ms{}",
                self.name,
                nanos as f64 / 1e6,
                if breakdown.is_empty() { String::new() } else { format!(" —{breakdown}") }
            );
        }
    }
}

/// The most recent completed spans, oldest first (striped bounded ring
/// buffers, merged by completion order).
pub fn recent_events() -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = TRACE_RING
        .iter()
        .flat_map(|stripe| {
            stripe.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect::<Vec<_>>()
        })
        .collect();
    events.sort_by_key(|e| e.seq);
    events
}

/// Drop all buffered trace events (tests, session resets).
pub fn clear_events() {
    for stripe in &TRACE_RING {
        stripe.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

// ----------------------------------------------------------------------
// Per-statement stage recorder (EXPLAIN ANALYZE).
// ----------------------------------------------------------------------

/// One timed execution stage of a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (`verb.stage`, e.g. `select.filter`).
    pub name: String,
    /// Wall-clock nanoseconds spent in the stage.
    pub nanos: u64,
    /// Free-form detail (row counts, chosen paths); may be empty.
    pub detail: String,
}

thread_local! {
    static STAGES: RefCell<Option<Vec<StageTiming>>> = const { RefCell::new(None) };
}

/// Start collecting stage timings on this thread (replacing any prior
/// collection). Pair with [`stages_take`].
pub fn stages_begin() {
    STAGES.with(|s| *s.borrow_mut() = Some(Vec::new()));
}

/// Stop collecting and return the stages recorded since
/// [`stages_begin`]; `None` when no collection was active.
pub fn stages_take() -> Option<Vec<StageTiming>> {
    STAGES.with(|s| s.borrow_mut().take())
}

/// True while a stage collection is active on this thread.
pub fn stages_active() -> bool {
    STAGES.with(|s| s.borrow().is_some())
}

/// Append a pre-measured stage to the active collection — for executors
/// that track time themselves (e.g. per-operator timings inside a pull
/// pipeline, where a scoped [`StageGuard`] cannot bracket the work).
/// No-op when no collection is active.
pub fn record_stage(name: impl Into<String>, nanos: u64, detail: impl Into<String>) {
    STAGES.with(|s| {
        if let Some(stages) = s.borrow_mut().as_mut() {
            stages.push(StageTiming { name: name.into(), nanos, detail: detail.into() });
        }
    });
}

/// A live stage; dropping it appends the timing to the active
/// collection. Inert (no clock read) when no collection is active.
#[derive(Debug)]
pub struct StageGuard {
    name: &'static str,
    detail: String,
    start: Option<Instant>,
}

/// Open a stage named `name`. Only costs anything while an
/// `EXPLAIN ANALYZE` collection is active on this thread.
#[inline]
pub fn stage(name: &'static str) -> StageGuard {
    let active = stages_active();
    StageGuard { name, detail: String::new(), start: active.then(Instant::now) }
}

impl StageGuard {
    /// Attach detail text (row counts, decisions) to the stage.
    pub fn detail(&mut self, detail: impl Into<String>) {
        if self.start.is_some() {
            self.detail = detail.into();
        }
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = start.elapsed().as_nanos() as u64;
        let timing = StageTiming {
            name: self.name.to_string(),
            nanos,
            detail: std::mem::take(&mut self.detail),
        };
        STAGES.with(|s| {
            if let Some(stages) = s.borrow_mut().as_mut() {
                stages.push(timing);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise tests that flip the global enabled flag.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_boundaries_are_bit_widths() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every power of two starts a fresh bucket; its predecessor ends
        // the previous one.
        for i in 1..64u32 {
            let v = 1u64 << i;
            assert_eq!(bucket_index(v), bucket_index(v - 1) + 1, "2^{i}");
            assert_eq!(bucket_upper_bound(bucket_index(v - 1)), v - 1, "2^{i}-1 is a bound");
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        // 90 fast (≤ 15ns bucket), 10 slow (1024..2047ns bucket).
        for _ in 0..90 {
            h.record(12);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 12 + 10 * 1500);
        // Interpolated within the bucket: rank 50 of 90 in the 8..=15
        // bucket lands at 8 + (50/90)·7 = 11, not the bucket's upper
        // bound 15 as the pre-interpolation estimator reported.
        assert_eq!(h.p50(), 11, "median interpolated inside the 8..=15 bucket");
        // Rank 95 is the 5th of 10 slow observations: the midpoint of
        // 1024..=2047, where the true value 1500 lives — closer than the
        // old 2047 upper bound.
        assert_eq!(h.p95(), 1535, "tail interpolated inside the 1024..=2047 bucket");
        assert_eq!(h.p99(), 1944);
        assert!(h.quantile(0.0) >= 1);
        // A bucket's last observation still reports the upper bound, so
        // interpolation never exceeds the old estimator.
        assert_eq!(h.quantile(1.0), 2047);
        let empty = Histogram::new();
        assert_eq!(empty.p99(), 0);
    }

    #[test]
    fn single_observation_interpolates_to_its_bucket_top() {
        let h = Histogram::new();
        h.record(1500); // alone in 1024..=2047: pos 1 of 1 → upper bound
        assert_eq!(h.p50(), 2047);
        assert_eq!(h.quantile(0.01), 2047);
        let z = Histogram::new();
        z.record(0);
        assert_eq!(z.p99(), 0, "bucket 0 holds exactly 0");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = flag_lock();
        disable();
        let c = Counter::new();
        let g = Gauge::new();
        let h = Histogram::new();
        c.inc();
        g.set(7);
        h.observe(99);
        assert_eq!((c.get(), g.get(), h.count()), (0, 0, 0));
        assert!(Timer::start().elapsed_ns().is_none());
        enable();
        c.inc();
        g.set(7);
        h.observe(99);
        assert_eq!((c.get(), g.get(), h.count()), (1, 7, 1));
        disable();
    }

    #[test]
    fn labeled_families_return_stable_handles() {
        let _g = flag_lock();
        enable();
        let family = CounterVec::new();
        family.with_label("a").add(2);
        family.with_label("b").inc();
        family.with_label("a").inc();
        let children = family.children();
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].0, "a");
        assert_eq!(children[0].1.get(), 3);
        assert_eq!(children[1].1.get(), 1);
        disable();
    }

    #[test]
    fn spans_feed_ring_buffer_and_nest() {
        let _g = flag_lock();
        enable();
        clear_events();
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        let events = recent_events();
        let inner = events.iter().find(|e| e.name == "test.inner").expect("inner logged");
        let outer = events.iter().find(|e| e.name == "test.outer").expect("outer logged");
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert!(outer.nanos >= inner.nanos, "outer encloses inner");
        disable();
        clear_events();
        {
            let _quiet = span("test.quiet");
        }
        assert!(recent_events().is_empty(), "disabled spans never log");
    }

    #[test]
    fn striped_trace_ring_merges_concurrent_recorders() {
        let _g = flag_lock();
        enable();
        clear_events();
        const THREADS: usize = 8;
        const SPANS: usize = 100;
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..SPANS {
                        let _s = span("test.contended");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = recent_events();
        disable();
        let contended = events.iter().filter(|e| e.name == "test.contended").count();
        assert_eq!(contended, THREADS * SPANS, "no event lost under contention");
        // The merge is ordered by the global sequence, strictly.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq), "merged order is by seq");
        clear_events();
        assert!(recent_events().is_empty());
    }

    #[test]
    fn stage_recorder_is_thread_local_and_explicit() {
        assert!(stages_take().is_none(), "inactive by default");
        {
            let _s = stage("quiet.stage");
        }
        assert!(stages_take().is_none(), "stages without a collection vanish");
        stages_begin();
        {
            let mut s = stage("select.filter");
            s.detail("3 rows");
        }
        {
            let _s = stage("select.sort");
        }
        let stages = stages_take().expect("collection active");
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].name, "select.filter");
        assert_eq!(stages[0].detail, "3 rows");
        assert_eq!(stages[1].name, "select.sort");
        assert!(stages_take().is_none(), "take ends the collection");
    }
}
