//! Shared TCP listener plumbing — the accept loop, per-connection thread
//! spawning and deterministic shutdown used by both the HTTP monitoring
//! endpoint ([`crate::serve`]) and the `evofd-server` SQL front end.
//!
//! The shape is deliberately minimal (std only, no async runtime): a
//! named accept-loop thread, one short-lived handler thread per accepted
//! connection, and a stop flag released by a throwaway self-connection so
//! [`TcpServer::shutdown`] never blocks on `accept`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP accept loop; dropping it (or calling
/// [`TcpServer::shutdown`]) stops accepting and joins the loop thread.
/// Connections already handed to handler threads finish independently.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0` for tests) and run an accept loop on a
/// thread named `name`, calling `handler` on a fresh `{name}-conn` thread
/// for every accepted connection. The handler owns the stream; a stalled
/// peer never blocks the accept loop.
pub fn spawn_listener<F>(addr: &str, name: &str, handler: F) -> std::io::Result<TcpServer>
where
    F: Fn(TcpStream) + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handler = Arc::new(handler);
    let conn_name = format!("{name}-conn");
    let handle = std::thread::Builder::new().name(name.to_string()).spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let handler = Arc::clone(&handler);
            let _ =
                std::thread::Builder::new().name(conn_name.clone()).spawn(move || handler(stream));
        }
    })?;
    Ok(TcpServer { addr, stop, handle: Some(handle) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn listener_serves_connections_and_shuts_down() {
        let server = spawn_listener("127.0.0.1:0", "net-test", |mut stream| {
            let mut byte = [0u8; 1];
            if stream.read_exact(&mut byte).is_ok() {
                let _ = stream.write_all(&[byte[0].wrapping_add(1)]);
            }
        })
        .unwrap();
        // Several concurrent connections each get their own handler.
        for i in 0..3u8 {
            let mut c = TcpStream::connect(server.addr()).unwrap();
            c.write_all(&[i]).unwrap();
            let mut out = [0u8; 1];
            c.read_exact(&mut out).unwrap();
            assert_eq!(out[0], i + 1);
        }
        drop(server); // shutdown joins cleanly
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = spawn_listener("127.0.0.1:0", "net-idem", |_s| {}).unwrap();
        server.shutdown();
        server.shutdown();
    }
}
