//! The entropy-based (EB) repair method of Chiang & Miller (ICDE 2011),
//! as restated in §5 of the EDBT 2016 paper.
//!
//! For a violated `F : X → Y` the EB method:
//!
//! 1. computes the *ground truth* clustering `C_XY`;
//! 2. for every candidate attribute `A ∉ XY`, computes `C_XA` and ranks
//!    candidates by `H(C_XY | C_XA)` ascending (homogeneity first),
//!    breaking ties by `H(C_A | C_XY)` ascending (completeness of the
//!    lone attribute);
//! 3. accepts `A` when `H(C_XY | C_XA) = 0` — which holds exactly when
//!    `XA → Y` has confidence 1, so EB and CB accept the same repairs and
//!    differ only in ranking and cost.
//!
//! The published method adds a single attribute. For an apples-to-apples
//! multi-attribute comparison we also provide [`eb_repair_iterative`],
//! clearly an *extension*: it greedily re-applies the one-step method, the
//! natural analogue of the CB paper's §4.3 iteration.

use std::cmp::Ordering;

use evofd_core::{Fd, Measures};
use evofd_storage::{AttrId, AttrSet, DistinctCache, Partition, Relation};

use crate::contingency::Contingency;

/// Work counters for the EB method — the quantities §5 argues are the
/// expensive part (cluster materialisation and pairwise intersections).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EbCost {
    /// Partitions (clusterings) materialised.
    pub clusterings_built: u64,
    /// Non-empty contingency cells visited across all comparisons.
    pub cells_visited: u64,
    /// Rows scanned while building partitions and tables.
    pub rows_scanned: u64,
}

/// One EB-ranked candidate.
#[derive(Debug, Clone)]
pub struct EbCandidate {
    /// The candidate attribute `A`.
    pub attr: AttrId,
    /// Primary key: `H(C_XY | C_XA)` — 0 ⟺ `XA → Y` is exact.
    pub h_truth_given_extended: f64,
    /// Tie-break: `H(C_A | C_XY)`.
    pub h_attr_given_truth: f64,
    /// CB measures of `XA → Y`, recorded for cross-method comparison.
    pub measures: Measures,
}

impl EbCandidate {
    /// EB ranking: primary ascending, tie-break ascending, then attribute
    /// position for determinism.
    pub fn rank_cmp(&self, other: &EbCandidate) -> Ordering {
        self.h_truth_given_extended
            .total_cmp(&other.h_truth_given_extended)
            .then_with(|| self.h_attr_given_truth.total_cmp(&other.h_attr_given_truth))
            .then_with(|| self.attr.cmp(&other.attr))
    }

    /// EB's acceptance test: the extended clustering is homogeneous w.r.t.
    /// the ground truth.
    pub fn is_exact(&self) -> bool {
        self.h_truth_given_extended == 0.0
    }
}

/// Rank every candidate in `pool` for repairing `fd`, EB-style.
/// Returns the ranked list plus the work counters.
pub fn eb_rank_candidates(rel: &Relation, fd: &Fd, pool: &AttrSet) -> (Vec<EbCandidate>, EbCost) {
    let mut cost = EbCost::default();
    let n = rel.row_count() as u64;

    let ground_truth = Partition::by_attrs(rel, &fd.attrs());
    cost.clusterings_built += 1;
    cost.rows_scanned += n * fd.attrs().len() as u64;

    let lhs_partition = Partition::by_attrs(rel, fd.lhs());
    cost.clusterings_built += 1;
    cost.rows_scanned += n * fd.lhs().len() as u64;

    let mut cache = DistinctCache::new();
    let mut out: Vec<EbCandidate> = pool
        .iter()
        .map(|attr| {
            // C_XA: refine the X-partition by A.
            let extended = lhs_partition.refine_by_codes(rel.column(attr).codes());
            cost.clusterings_built += 1;
            cost.rows_scanned += n;

            let t1 = Contingency::build(&ground_truth, &extended);
            cost.cells_visited += t1.nonzero_cells() as u64;
            cost.rows_scanned += n;
            let h_truth_given_extended = t1.conditional_entropy_a_given_b();

            let attr_partition = Partition::by_attrs(rel, &AttrSet::single(attr));
            cost.clusterings_built += 1;
            cost.rows_scanned += n;
            let t2 = Contingency::build(&attr_partition, &ground_truth);
            cost.cells_visited += t2.nonzero_cells() as u64;
            cost.rows_scanned += n;
            let h_attr_given_truth = t2.conditional_entropy_a_given_b();

            let measures = Measures::compute(rel, &fd.with_lhs_attr(attr), &mut cache);
            EbCandidate { attr, h_truth_given_extended, h_attr_given_truth, measures }
        })
        .collect();
    out.sort_by(EbCandidate::rank_cmp);
    (out, cost)
}

/// Result of the iterative EB repair extension.
#[derive(Debug, Clone)]
pub struct EbRepair {
    /// The evolved FD, exact on the instance.
    pub fd: Fd,
    /// Attributes added, in pick order.
    pub added: Vec<AttrId>,
    /// Accumulated work counters.
    pub cost: EbCost,
}

/// Greedy multi-attribute EB repair: repeatedly add the top-EB-ranked
/// attribute until the FD is exact, the pool empties, or `max_added`
/// attributes were added. Returns `None` when no repair was reached.
pub fn eb_repair_iterative(
    rel: &Relation,
    fd: &Fd,
    max_added: usize,
) -> (Option<EbRepair>, EbCost) {
    let mut total_cost = EbCost::default();
    let mut current = fd.clone();
    let mut added: Vec<AttrId> = Vec::new();
    let mut pool = rel.non_null_attrs().difference(&fd.attrs());

    while added.len() < max_added && !pool.is_empty() {
        let (ranked, cost) = eb_rank_candidates(rel, &current, &pool);
        total_cost.clusterings_built += cost.clusterings_built;
        total_cost.cells_visited += cost.cells_visited;
        total_cost.rows_scanned += cost.rows_scanned;
        let Some(best) = ranked.first() else { break };
        current = current.with_lhs_attr(best.attr);
        added.push(best.attr);
        pool.remove(best.attr);
        if best.is_exact() {
            return (Some(EbRepair { fd: current, added, cost: total_cost }), total_cost);
        }
    }
    (None, total_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["D", "M", "P", "A"],
            &[
                &["d1", "m1", "p1", "a1"],
                &["d1", "m1", "p2", "a1"],
                &["d1", "m2", "p3", "a2"],
                &["d2", "m3", "p4", "a3"],
                &["d2", "m3", "p5", "a3"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn eb_accepts_exactly_the_exact_candidates() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let pool = r.schema().attr_set(&["M", "P"]).unwrap();
        let (ranked, _) = eb_rank_candidates(&r, &fd, &pool);
        for c in &ranked {
            assert_eq!(
                c.is_exact(),
                c.measures.is_exact(),
                "EB homogeneity ⇔ CB confidence 1 for attr {:?}",
                c.attr
            );
        }
    }

    #[test]
    fn eb_ranks_municipal_first() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let pool = r.schema().attr_set(&["M", "P"]).unwrap();
        let (ranked, cost) = eb_rank_candidates(&r, &fd, &pool);
        // Both repair (H(C_XY|C_XA) = 0); M's completeness term is lower
        // because C_M matches C_XY while C_P fragments it.
        assert_eq!(ranked[0].attr, r.schema().resolve("M").unwrap());
        assert!(ranked[0].h_attr_given_truth < ranked[1].h_attr_given_truth);
        assert!(cost.clusterings_built >= 4);
        assert!(cost.cells_visited > 0);
    }

    #[test]
    fn eb_iterative_repairs_two_attr_case() {
        // Needs two attributes: neither A nor B alone works.
        let r = relation_of_strs(
            "t",
            &["X", "A", "B", "Y"],
            &[
                &["x", "a1", "b1", "y1"],
                &["x", "a1", "b2", "y2"],
                &["x", "a2", "b1", "y3"],
                &["x", "a2", "b2", "y4"],
            ],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let (repair, _) = eb_repair_iterative(&r, &fd, 5);
        let repair = repair.expect("repairable");
        assert_eq!(repair.added.len(), 2);
        assert!(repair.fd.satisfied_naive(&r));
    }

    #[test]
    fn eb_iterative_gives_up_when_unrepairable() {
        let r = relation_of_strs("t", &["X", "A", "Y"], &[&["x", "a", "y1"], &["x", "a", "y2"]])
            .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let (repair, cost) = eb_repair_iterative(&r, &fd, 5);
        assert!(repair.is_none());
        assert!(cost.clusterings_built > 0);
    }

    #[test]
    fn max_added_respected() {
        let r = relation_of_strs(
            "t",
            &["X", "A", "B", "Y"],
            &[
                &["x", "a1", "b1", "y1"],
                &["x", "a1", "b2", "y2"],
                &["x", "a2", "b1", "y3"],
                &["x", "a2", "b2", "y4"],
            ],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let (repair, _) = eb_repair_iterative(&r, &fd, 1);
        assert!(repair.is_none(), "needs 2 attrs but capped at 1");
    }
}
