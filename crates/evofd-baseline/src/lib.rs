//! # evofd-baseline
//!
//! The entropy-based (EB) FD-repair baseline of Chiang & Miller
//! (*A unified model for data and constraint repair*, ICDE 2011), as
//! restated in §5 of the EDBT 2016 paper, plus the machinery to compare it
//! against the confidence-based (CB) method:
//!
//! * [`contingency`] — contingency tables and conditional entropies;
//! * [`vi`] — Variation of Information (Meilă 2007) and ε_VI;
//! * [`eb_repair`] — EB candidate ranking and an iterative multi-attribute
//!   extension, with work counters;
//! * [`compare`] — Theorem-1 checks (including the counterexample to the
//!   printed converse) and side-by-side CB/EB rankings.

#![warn(missing_docs)]

pub mod compare;
pub mod contingency;
pub mod eb_repair;
pub mod vi;

pub use compare::{
    theorem1_counterexample, theorem1_holds, CbCost, MeasurePair, RankingComparison,
};
pub use contingency::{entropy, Contingency};
pub use eb_repair::{eb_rank_candidates, eb_repair_iterative, EbCandidate, EbCost, EbRepair};
pub use vi::{epsilon_vi, epsilon_vi_candidate, variation_of_information};
