//! Variation of Information (Meilă 2007) and the ε_VI measure of §5.

use evofd_core::Fd;
use evofd_storage::{AttrSet, Partition, Relation};

use crate::contingency::Contingency;

/// `VI(C, C') = H(C|C') + H(C'|C)` in nats. Symmetric; zero iff the
/// partitions are identical up to label renaming.
pub fn variation_of_information(a: &Partition, b: &Partition) -> f64 {
    let t = Contingency::build(a, b);
    t.conditional_entropy_a_given_b() + t.conditional_entropy_b_given_a()
}

/// ε_VI of a candidate repair: given the original FD `F : X → Y` and an
/// added attribute set `U`, compare the extended-antecedent clustering
/// `C_XU` against the ground-truth clustering `C_XY` (§5):
/// `ε_VI(F_U) = VI(C_XY, C_XU)`.
pub fn epsilon_vi_candidate(rel: &Relation, fd: &Fd, added: &AttrSet) -> f64 {
    let ground_truth = Partition::by_attrs(rel, &fd.attrs());
    let extended = Partition::by_attrs(rel, &fd.lhs().union(added));
    variation_of_information(&ground_truth, &extended)
}

/// ε_VI of a plain FD (`U = ∅`): `VI(C_XY, C_X)`. Zero iff the FD is
/// exact (`|C_X| = |C_XY|`, i.e. confidence 1).
pub fn epsilon_vi(rel: &Relation, fd: &Fd) -> f64 {
    epsilon_vi_candidate(rel, fd, &AttrSet::empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["D", "M", "P", "A"],
            &[
                &["d1", "m1", "p1", "a1"],
                &["d1", "m1", "p2", "a1"],
                &["d1", "m2", "p3", "a2"],
                &["d2", "m3", "p4", "a3"],
                &["d2", "m3", "p5", "a3"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn vi_zero_iff_same_partition() {
        let a = Partition::from_labels(&[0, 0, 1, 2]);
        let b = Partition::from_labels(&[5, 5, 9, 7]);
        assert_eq!(variation_of_information(&a, &b), 0.0);
        let c = Partition::from_labels(&[0, 1, 1, 2]);
        assert!(variation_of_information(&a, &c) > 0.0);
    }

    #[test]
    fn vi_symmetric() {
        let a = Partition::from_labels(&[0, 0, 1, 1, 2]);
        let b = Partition::from_labels(&[0, 1, 1, 2, 2]);
        let ab = variation_of_information(&a, &b);
        let ba = variation_of_information(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn vi_triangle_inequality_sample() {
        let a = Partition::from_labels(&[0, 0, 1, 1, 2, 2]);
        let b = Partition::from_labels(&[0, 1, 1, 2, 2, 0]);
        let c = Partition::from_labels(&[0, 0, 0, 1, 1, 1]);
        let ab = variation_of_information(&a, &b);
        let bc = variation_of_information(&b, &c);
        let ac = variation_of_information(&a, &c);
        assert!(ac <= ab + bc + 1e-12, "VI is a metric: {ac} <= {ab} + {bc}");
    }

    #[test]
    fn epsilon_vi_zero_for_exact_fd() {
        let r = rel();
        let exact = Fd::parse(r.schema(), "M -> A").unwrap();
        assert!(exact.satisfied_naive(&r));
        assert_eq!(epsilon_vi(&r, &exact), 0.0);
        let violated = Fd::parse(r.schema(), "D -> A").unwrap();
        assert!(epsilon_vi(&r, &violated) > 0.0);
    }

    #[test]
    fn epsilon_vi_candidate_prefers_municipal() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let m = AttrSet::single(r.schema().resolve("M").unwrap());
        let p = AttrSet::single(r.schema().resolve("P").unwrap());
        let eps_m = epsilon_vi_candidate(&r, &fd, &m);
        let eps_p = epsilon_vi_candidate(&r, &fd, &p);
        // DM-partition equals DA-partition; DP fragments it further.
        assert_eq!(eps_m, 0.0);
        assert!(eps_p > 0.0);
    }
}
