//! Contingency tables between two partitions.
//!
//! The EB method's core data structure: for clusterings `C` and `C'` it
//! needs every intersection `|C_k ∩ C'_k'|` — exactly the per-cell counts
//! the paper points out the CB method never has to materialise.

use std::collections::HashMap;

use evofd_storage::Partition;

/// Sparse contingency table of two partitions over the same rows.
#[derive(Debug, Clone)]
pub struct Contingency {
    cells: HashMap<(u32, u32), u64>,
    row_marginals: Vec<u64>,
    col_marginals: Vec<u64>,
    total: u64,
}

impl Contingency {
    /// Build the table for `(a, b)`; cell `(i, j)` counts rows in class
    /// `i` of `a` and class `j` of `b`.
    pub fn build(a: &Partition, b: &Partition) -> Contingency {
        assert_eq!(a.n_rows(), b.n_rows(), "partitions must cover the same rows");
        let mut cells: HashMap<(u32, u32), u64> = HashMap::new();
        let mut row_marginals = vec![0u64; a.n_classes()];
        let mut col_marginals = vec![0u64; b.n_classes()];
        for (&la, &lb) in a.labels().iter().zip(b.labels().iter()) {
            *cells.entry((la, lb)).or_insert(0) += 1;
            row_marginals[la as usize] += 1;
            col_marginals[lb as usize] += 1;
        }
        Contingency { cells, row_marginals, col_marginals, total: a.n_rows() as u64 }
    }

    /// Number of non-empty cells (the work EB must touch).
    pub fn nonzero_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total row count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `|C_i|` for the first partition.
    pub fn row_marginals(&self) -> &[u64] {
        &self.row_marginals
    }

    /// `|C'_j|` for the second partition.
    pub fn col_marginals(&self) -> &[u64] {
        &self.col_marginals
    }

    /// Iterate non-empty cells as `((i, j), count)`.
    pub fn cells(&self) -> impl Iterator<Item = (&(u32, u32), &u64)> {
        self.cells.iter()
    }

    /// The count of one cell.
    pub fn cell(&self, i: u32, j: u32) -> u64 {
        self.cells.get(&(i, j)).copied().unwrap_or(0)
    }

    /// Conditional entropy `H(A | B)` in nats:
    /// `−Σ_{i,j} P(i,j) · ln P(i|j)` with `P(i|j) = n_ij / n_·j`.
    pub fn conditional_entropy_a_given_b(&self) -> f64 {
        let n = self.total as f64;
        let mut h = 0.0;
        for (&(_, j), &count) in &self.cells {
            let p_joint = count as f64 / n;
            let p_cond = count as f64 / self.col_marginals[j as usize] as f64;
            h -= p_joint * p_cond.ln();
        }
        // Clamp the −0.0 that exact log(1) terms can produce.
        if h.abs() < 1e-15 {
            0.0
        } else {
            h
        }
    }

    /// Conditional entropy `H(B | A)` in nats.
    pub fn conditional_entropy_b_given_a(&self) -> f64 {
        let n = self.total as f64;
        let mut h = 0.0;
        for (&(i, _), &count) in &self.cells {
            let p_joint = count as f64 / n;
            let p_cond = count as f64 / self.row_marginals[i as usize] as f64;
            h -= p_joint * p_cond.ln();
        }
        if h.abs() < 1e-15 {
            0.0
        } else {
            h
        }
    }
}

/// Shannon entropy `H(C)` of one partition, in nats.
pub fn entropy(p: &Partition) -> f64 {
    let n = p.n_rows() as f64;
    if p.n_rows() == 0 {
        return 0.0;
    }
    p.class_sizes()
        .iter()
        .map(|&s| {
            let q = s as f64 / n;
            -q * q.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_marginals_and_cells() {
        let a = Partition::from_labels(&[0, 0, 1, 1]);
        let b = Partition::from_labels(&[0, 1, 0, 1]);
        let t = Contingency::build(&a, &b);
        assert_eq!(t.total(), 4);
        assert_eq!(t.nonzero_cells(), 4);
        assert_eq!(t.cell(0, 0), 1);
        assert_eq!(t.row_marginals(), &[2, 2]);
        assert_eq!(t.col_marginals(), &[2, 2]);
    }

    #[test]
    fn conditional_entropy_zero_for_refinement() {
        // a refines b: knowing a determines b.
        let a = Partition::from_labels(&[0, 1, 2, 3]);
        let b = Partition::from_labels(&[0, 0, 1, 1]);
        let t = Contingency::build(&a, &b);
        assert_eq!(t.conditional_entropy_b_given_a(), 0.0);
        assert!(t.conditional_entropy_a_given_b() > 0.0);
    }

    #[test]
    fn independent_partitions_entropy() {
        // 2x2 independent uniform: H(A|B) = H(A) = ln 2.
        let a = Partition::from_labels(&[0, 0, 1, 1]);
        let b = Partition::from_labels(&[0, 1, 0, 1]);
        let t = Contingency::build(&a, &b);
        let ln2 = std::f64::consts::LN_2;
        assert!((t.conditional_entropy_a_given_b() - ln2).abs() < 1e-12);
        assert!((t.conditional_entropy_b_given_a() - ln2).abs() < 1e-12);
    }

    #[test]
    fn chain_rule_holds() {
        // H(A,B) = H(B) + H(A|B) — verify via joint partition.
        let a = Partition::from_labels(&[0, 0, 1, 1, 2, 2, 0]);
        let b = Partition::from_labels(&[0, 1, 1, 1, 0, 2, 0]);
        let t = Contingency::build(&a, &b);
        let joint_labels: Vec<u32> =
            a.labels().iter().zip(b.labels()).map(|(&x, &y)| x * 10 + y).collect();
        let joint = Partition::from_labels(&joint_labels);
        let h_joint = entropy(&joint);
        let h_b = entropy(&b);
        assert!((h_joint - (h_b + t.conditional_entropy_a_given_b())).abs() < 1e-12);
        let h_a = entropy(&a);
        assert!((h_joint - (h_a + t.conditional_entropy_b_given_a())).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_trivial_partitions() {
        assert_eq!(entropy(&Partition::unit(5)), 0.0);
        let discrete = Partition::discrete(4);
        assert!((entropy(&discrete) - (4.0f64).ln()).abs() < 1e-12);
        assert_eq!(entropy(&Partition::unit(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "same rows")]
    fn mismatched_rows_panic() {
        let a = Partition::unit(3);
        let b = Partition::unit(4);
        Contingency::build(&a, &b);
    }
}
