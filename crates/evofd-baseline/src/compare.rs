//! CB-vs-EB comparison utilities (Section 5 / Theorem 1).
//!
//! The paper proves ε_CB and ε_VI "equivalent" (same null sets) but could
//! not compare the methods experimentally — the Chiang–Miller tool was
//! unavailable. Because we implement both, we can. This module provides
//! the per-FD measure pair, the Theorem-1 predicate, and side-by-side
//! candidate rankings with cost counters.
//!
//! ## A note on Theorem 1
//!
//! The direction ε_CB = 0 ⟹ ε_VI = 0 holds unconditionally (and is
//! property-tested). The converse as printed has a gap: if `ε_VI(F_U) =
//! VI(C_XY, C_XU) = 0` the clusterings coincide, giving confidence 1, but
//! the goodness `|π_XU| − |π_Y|` need not be 0 when `|π_XY| > |π_Y|`
//! (the proof's step "∀y ∃!(x,z)" silently assumes `|C_XY| = |C_Y|`).
//! [`theorem1_counterexample`] constructs a concrete witness; see
//! EXPERIMENTS.md. The converse *does* hold whenever `|π_XY| = |π_Y|`,
//! which [`theorem1_holds`] verifies.

use evofd_core::{candidate_pool, extend_by_one, Fd, Measures};
use evofd_storage::{count_distinct, relation_of_strs, AttrSet, DistinctCache, Relation};

use crate::eb_repair::{eb_rank_candidates, EbCandidate, EbCost};
use crate::vi::epsilon_vi_candidate;

/// The two §5 measures evaluated on the same candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurePair {
    /// `ε_CB = (1 − c) + |g|`.
    pub epsilon_cb: f64,
    /// `ε_VI = VI(C_XY, C_XU)`.
    pub epsilon_vi: f64,
}

impl MeasurePair {
    /// Evaluate both measures for extending `fd` by `added` on `rel`.
    pub fn of_candidate(rel: &Relation, fd: &Fd, added: &AttrSet) -> MeasurePair {
        let extended = fd.with_lhs_attrs(added);
        let mut cache = DistinctCache::disabled();
        let m = Measures::compute(rel, &extended, &mut cache);
        MeasurePair { epsilon_cb: m.epsilon_cb(), epsilon_vi: epsilon_vi_candidate(rel, fd, added) }
    }

    /// Theorem 1's claim for this pair, in the direction that always
    /// holds: ε_CB = 0 ⟹ ε_VI = 0.
    pub fn cb_null_implies_vi_null(&self) -> bool {
        self.epsilon_cb != 0.0 || self.epsilon_vi == 0.0
    }
}

/// Check Theorem 1 in full on one candidate, including the converse under
/// its (implicit) precondition `|π_XY| = |π_Y|`.
pub fn theorem1_holds(rel: &Relation, fd: &Fd, added: &AttrSet) -> bool {
    let pair = MeasurePair::of_candidate(rel, fd, added);
    if !pair.cb_null_implies_vi_null() {
        return false;
    }
    let precondition = count_distinct(rel, &fd.attrs()) == count_distinct(rel, fd.rhs());
    if precondition && pair.epsilon_vi == 0.0 && pair.epsilon_cb != 0.0 {
        return false;
    }
    true
}

/// A concrete witness that the converse of Theorem 1 needs the
/// `|π_XY| = |π_Y|` precondition: returns `(relation, fd, added)` with
/// `ε_VI = 0` but `ε_CB = 1`.
pub fn theorem1_counterexample() -> (Relation, Fd, AttrSet) {
    // X = {x1, x2}, Y constant, A a copy of X. C_XA = C_XY (ε_VI = 0) but
    // g(F_A) = |π_XA| − |π_Y| = 2 − 1 = 1.
    let rel =
        relation_of_strs("witness", &["X", "A", "Y"], &[&["x1", "x1", "y"], &["x2", "x2", "y"]])
            .expect("static data");
    let fd = Fd::parse(rel.schema(), "X -> Y").expect("static FD");
    let added = AttrSet::single(rel.schema().resolve("A").expect("static attr"));
    (rel, fd, added)
}

/// Work counters for the CB side, mirroring [`EbCost`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CbCost {
    /// Distinct counts computed (cache misses).
    pub counts_computed: u64,
    /// Distinct counts answered from the memo.
    pub counts_cached: u64,
}

/// Side-by-side rankings of the same candidate pool by both methods.
#[derive(Debug, Clone)]
pub struct RankingComparison {
    /// CB ranking (confidence desc, |goodness| asc).
    pub cb: Vec<evofd_core::Candidate>,
    /// EB ranking (`H(C_XY|C_XA)` asc, `H(C_A|C_XY)` asc).
    pub eb: Vec<EbCandidate>,
    /// CB work counters.
    pub cb_cost: CbCost,
    /// EB work counters.
    pub eb_cost: EbCost,
}

impl RankingComparison {
    /// Rank the full candidate pool of `fd` on `rel` with both methods.
    pub fn run(rel: &Relation, fd: &Fd) -> RankingComparison {
        let pool = candidate_pool(rel, fd);
        let mut cache = DistinctCache::new();
        let cb = extend_by_one(rel, fd, &pool, &mut cache);
        let stats = cache.stats();
        let cb_cost = CbCost { counts_computed: stats.misses, counts_cached: stats.hits };
        let (eb, eb_cost) = eb_rank_candidates(rel, fd, &pool);
        RankingComparison { cb, eb, cb_cost, eb_cost }
    }

    /// True iff both methods accept the same set of attributes as exact
    /// repairs (they must — EB homogeneity ⇔ CB confidence 1).
    pub fn agree_on_exactness(&self) -> bool {
        let cb_exact: std::collections::BTreeSet<u16> =
            self.cb.iter().filter(|c| c.measures.is_exact()).map(|c| c.attr.0).collect();
        let eb_exact: std::collections::BTreeSet<u16> =
            self.eb.iter().filter(|c| c.is_exact()).map(|c| c.attr.0).collect();
        cb_exact == eb_exact
    }

    /// True iff the top-ranked attribute coincides.
    pub fn agree_on_winner(&self) -> bool {
        match (self.cb.first(), self.eb.first()) {
            (Some(a), Some(b)) => a.attr == b.attr,
            (None, None) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn places_like() -> Relation {
        relation_of_strs(
            "t",
            &["D", "M", "P", "A"],
            &[
                &["d1", "m1", "p1", "a1"],
                &["d1", "m1", "p2", "a1"],
                &["d1", "m2", "p3", "a2"],
                &["d2", "m3", "p4", "a3"],
                &["d2", "m3", "p5", "a3"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn theorem1_forward_direction() {
        let r = places_like();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        for attr in candidate_pool(&r, &fd).iter() {
            let pair = MeasurePair::of_candidate(&r, &fd, &AttrSet::single(attr));
            assert!(pair.cb_null_implies_vi_null(), "attr {attr:?}: {pair:?}");
            assert!(theorem1_holds(&r, &fd, &AttrSet::single(attr)));
        }
    }

    #[test]
    fn counterexample_is_genuine() {
        let (rel, fd, added) = theorem1_counterexample();
        let pair = MeasurePair::of_candidate(&rel, &fd, &added);
        assert_eq!(pair.epsilon_vi, 0.0, "clusterings coincide");
        assert_eq!(pair.epsilon_cb, 1.0, "but goodness is 1");
        // The precondition |π_XY| = |π_Y| indeed fails here.
        assert_ne!(count_distinct(&rel, &fd.attrs()), count_distinct(&rel, fd.rhs()));
    }

    #[test]
    fn methods_agree_on_exactness_and_winner() {
        let r = places_like();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let cmp = RankingComparison::run(&r, &fd);
        assert!(cmp.agree_on_exactness());
        assert!(cmp.agree_on_winner(), "both prefer the Municipal-like attribute");
        assert!(cmp.cb_cost.counts_computed > 0);
        assert!(cmp.eb_cost.cells_visited > 0);
    }

    #[test]
    fn empty_pool_comparison() {
        let r = relation_of_strs("t", &["X", "Y"], &[&["x", "y"]]).unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let cmp = RankingComparison::run(&r, &fd);
        assert!(cmp.cb.is_empty() && cmp.eb.is_empty());
        assert!(cmp.agree_on_winner());
        assert!(cmp.agree_on_exactness());
    }
}
