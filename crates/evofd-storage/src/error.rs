//! Error types for the storage engine.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An attribute name could not be resolved against a schema.
    UnknownAttribute {
        /// The attribute name that failed to resolve.
        name: String,
        /// The relation (schema) name the lookup ran against.
        relation: String,
    },
    /// An attribute id was out of range for the schema.
    AttributeOutOfRange {
        /// The offending attribute index.
        index: usize,
        /// Number of attributes in the schema.
        arity: usize,
    },
    /// A row had a different number of values than the schema has attributes.
    ArityMismatch {
        /// Number of values supplied.
        got: usize,
        /// Number of attributes expected.
        expected: usize,
    },
    /// A value's type did not match the column type.
    TypeMismatch {
        /// Column the value was destined for.
        column: String,
        /// Expected data type (rendered).
        expected: String,
        /// Offending value (rendered).
        value: String,
    },
    /// A NULL was inserted into a column declared NOT NULL.
    NullViolation {
        /// The NOT NULL column.
        column: String,
    },
    /// A table name was not found in the catalog.
    UnknownTable {
        /// The missing table name.
        name: String,
    },
    /// A table with this name already exists in the catalog.
    DuplicateTable {
        /// The duplicated table name.
        name: String,
    },
    /// A schema declared two attributes with the same name.
    DuplicateAttribute {
        /// The duplicated attribute name.
        name: String,
    },
    /// Malformed CSV input.
    Csv {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An I/O error (file load/store), carried as a rendered string so the
    /// error type stays `Clone + PartialEq`.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownAttribute { name, relation } => {
                write!(f, "unknown attribute `{name}` in relation `{relation}`")
            }
            StorageError::AttributeOutOfRange { index, arity } => {
                write!(f, "attribute index {index} out of range for arity {arity}")
            }
            StorageError::ArityMismatch { got, expected } => {
                write!(f, "row has {got} values but schema expects {expected}")
            }
            StorageError::TypeMismatch { column, expected, value } => {
                write!(f, "value {value} does not fit column `{column}` of type {expected}")
            }
            StorageError::NullViolation { column } => {
                write!(f, "NULL inserted into NOT NULL column `{column}`")
            }
            StorageError::UnknownTable { name } => write!(f, "unknown table `{name}`"),
            StorageError::DuplicateTable { name } => write!(f, "table `{name}` already exists"),
            StorageError::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute name `{name}` in schema")
            }
            StorageError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            StorageError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(err: std::io::Error) -> Self {
        StorageError::Io(err.to_string())
    }
}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_attribute() {
        let e = StorageError::UnknownAttribute { name: "Zip".into(), relation: "Places".into() };
        assert_eq!(e.to_string(), "unknown attribute `Zip` in relation `Places`");
    }

    #[test]
    fn display_arity_mismatch() {
        let e = StorageError::ArityMismatch { got: 3, expected: 9 };
        assert!(e.to_string().contains("3 values"));
        assert!(e.to_string().contains("expects 9"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&StorageError::UnknownTable { name: "t".into() });
    }
}
