//! Per-column and per-relation statistics.
//!
//! The repair engine consults these to (a) skip candidate attributes that
//! contain NULLs (§6.2.1 of the paper) and (b) know which attributes are
//! UNIQUE — the degenerate repairs the goodness criterion penalises.

use crate::attrset::{AttrId, AttrSet};
use crate::relation::Relation;

/// Statistics for one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Distinct non-null values.
    pub distinct: usize,
    /// NULL cell count.
    pub nulls: usize,
    /// True iff no two rows share a value (NULLs count as one shared value
    /// when there are two or more of them).
    pub is_unique: bool,
}

/// Statistics for every column of a relation, computed in one pass.
#[derive(Debug, Clone)]
pub struct RelationProfile {
    columns: Vec<ColumnStats>,
    row_count: usize,
}

impl RelationProfile {
    /// Profile all columns of `rel`.
    pub fn compute(rel: &Relation) -> RelationProfile {
        let columns = rel
            .columns()
            .iter()
            .map(|c| ColumnStats {
                distinct: c.distinct_non_null(),
                nulls: c.null_count(),
                is_unique: c.is_unique(),
            })
            .collect();
        RelationProfile { columns, row_count: rel.row_count() }
    }

    /// Stats for one column.
    pub fn column(&self, attr: AttrId) -> &ColumnStats {
        &self.columns[attr.index()]
    }

    /// Number of rows the profile was computed over.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Attributes free of NULLs — the only legal FD members / repair
    /// candidates per the paper.
    pub fn non_null_attrs(&self) -> AttrSet {
        AttrSet::from_indices(
            self.columns.iter().enumerate().filter(|(_, c)| c.nulls == 0).map(|(i, _)| i),
        )
    }

    /// Attributes that are UNIQUE over the current instance.
    pub fn unique_attrs(&self) -> AttrSet {
        AttrSet::from_indices(
            self.columns.iter().enumerate().filter(|(_, c)| c.is_unique).map(|(i, _)| i),
        )
    }

    /// Arity covered by the profile.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn rel() -> Relation {
        let schema = Schema::new(
            "t",
            vec![
                Field::new("id", DataType::Int),
                Field::new("grp", DataType::Str),
                Field::new("maybe", DataType::Int),
            ],
        )
        .unwrap()
        .into_shared();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::str("a"), Value::Int(7)],
                vec![Value::Int(2), Value::str("a"), Value::Null],
                vec![Value::Int(3), Value::str("b"), Value::Int(7)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn profiles_columns() {
        let p = RelationProfile::compute(&rel());
        assert_eq!(p.row_count(), 3);
        assert_eq!(p.arity(), 3);
        assert_eq!(p.column(AttrId(0)), &ColumnStats { distinct: 3, nulls: 0, is_unique: true });
        assert_eq!(p.column(AttrId(1)), &ColumnStats { distinct: 2, nulls: 0, is_unique: false });
        assert_eq!(p.column(AttrId(2)), &ColumnStats { distinct: 1, nulls: 1, is_unique: false });
    }

    #[test]
    fn null_free_and_unique_sets() {
        let p = RelationProfile::compute(&rel());
        assert_eq!(p.non_null_attrs().indices(), vec![0, 1]);
        assert_eq!(p.unique_attrs().indices(), vec![0]);
    }
}
