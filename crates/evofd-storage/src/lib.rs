//! # evofd-storage
//!
//! In-memory, dictionary-encoded relational storage engine underlying the
//! `evofd` reproduction of *"Semi-automatic support for evolving functional
//! dependencies"* (Mazuran et al., EDBT 2016).
//!
//! The paper's method runs against MySQL and reduces every measure to
//! `SELECT COUNT(DISTINCT …)` queries. This crate provides the equivalent
//! substrate:
//!
//! * typed values with total ordering/hashing ([`value`]),
//! * schemas and attribute bitsets ([`schema`], [`attrset`]),
//! * dictionary-encoded columns and relations ([`mod@column`], [`relation`]),
//! * partitions — the paper's clusterings — via refinement ([`partition`]),
//! * distinct counting with memoisation ([`distinct`]),
//! * per-column statistics, CSV I/O and a table catalog
//!   ([`stats`], [`csv`], [`catalog`]).

#![warn(missing_docs)]

pub mod attrset;
pub mod catalog;
pub mod column;
pub mod csv;
pub mod distinct;
pub mod error;
pub mod partition;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod value;

pub use attrset::{AttrId, AttrSet};
pub use catalog::Catalog;
pub use column::{Column, Dictionary, NULL_CODE};
pub use csv::{
    parse_cell, read_csv_path, read_csv_records, read_csv_str, read_csv_str_chunked,
    read_csv_str_with_schema, write_csv_path, write_csv_str, CsvOptions,
};
pub use distinct::{
    count_distinct, count_distinct_naive, CacheStats, DistinctCache, SharedDistinctCache,
};
pub use error::{Result, StorageError};
pub use partition::Partition;
pub use relation::{relation_of_strs, Relation, RelationBuilder};
pub use schema::{Field, Schema};
pub use stats::{ColumnStats, RelationProfile};
pub use value::{DataType, Value};
