//! Relations: a schema plus dictionary-encoded columns.

use std::fmt;
use std::sync::Arc;

use crate::attrset::{AttrId, AttrSet};
use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::schema::{Field, Schema};
use crate::value::Value;

/// An in-memory relation instance (the paper's `r` of schema `R`).
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    row_count: usize,
}

impl Relation {
    /// An empty relation over a schema.
    pub fn empty(schema: Arc<Schema>) -> Relation {
        let columns =
            schema.fields().iter().map(|f| Column::new(f.name.clone(), f.dtype)).collect();
        Relation { schema, columns, row_count: 0 }
    }

    /// Build from an iterator of rows, validating arity/types/NOT NULL.
    pub fn from_rows<I>(schema: Arc<Schema>, rows: I) -> Result<Relation>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut b = RelationBuilder::new(schema);
        for row in rows {
            b.push_row(row)?;
        }
        Ok(b.finish())
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared schema handle.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Relation name (from the schema).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples (`|r|`).
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of attributes (`|R|`).
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// True iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Column by position.
    pub fn column(&self, attr: AttrId) -> &Column {
        &self.columns[attr.index()]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(self.column(self.schema.resolve(name)?))
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Materialise row `i` as owned values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value_at(i)).collect()
    }

    /// Iterate rows as owned value vectors. (Convenience; hot paths use
    /// column codes directly.)
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.row_count).map(|i| self.row(i))
    }

    /// Approximate heap footprint in bytes (codes + dictionaries), used by
    /// the benchmark harness to report "table size" like the paper's
    /// Figure 3c.
    pub fn approx_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| {
                let code_bytes = c.len() * std::mem::size_of::<u32>();
                let dict_bytes: usize = c
                    .dict()
                    .values()
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => s.len() + 16,
                        _ => 16,
                    })
                    .sum();
                code_bytes + dict_bytes
            })
            .sum()
    }

    /// New relation with only the attributes in `attrs` (ascending order).
    /// Duplicate rows are preserved — this is *not* a set projection; use
    /// distinct counting for `|π_X(r)|`.
    pub fn project(&self, attrs: &AttrSet) -> Result<Relation> {
        let mut fields = Vec::with_capacity(attrs.len());
        let mut cols = Vec::with_capacity(attrs.len());
        for a in attrs.iter() {
            let f = self.schema.field(a)?;
            fields.push(f.clone());
            cols.push(self.columns[a.index()].clone());
        }
        let schema = Schema::new(self.schema.name().to_string(), fields)?.into_shared();
        Ok(Relation { schema, columns: cols, row_count: self.row_count })
    }

    /// New relation keeping only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Relation {
        debug_assert_eq!(mask.len(), self.row_count);
        let keep: Vec<usize> =
            mask.iter().enumerate().filter_map(|(i, &k)| k.then_some(i)).collect();
        self.gather(&keep)
    }

    /// New relation with the rows at `keep`, in the given order.
    pub fn gather(&self, keep: &[usize]) -> Relation {
        let columns = self.columns.iter().map(|c| c.gather(keep)).collect();
        Relation { schema: Arc::clone(&self.schema), columns, row_count: keep.len() }
    }

    /// New relation with the first `n` tuples (used by the Veterans sweeps).
    pub fn head(&self, n: usize) -> Relation {
        let n = n.min(self.row_count);
        let columns = self.columns.iter().map(|c| c.head(n)).collect();
        Relation { schema: Arc::clone(&self.schema), columns, row_count: n }
    }

    /// New relation with only the first `k` attributes (used by the
    /// Veterans attribute sweeps).
    pub fn take_attrs(&self, k: usize) -> Result<Relation> {
        self.project(&AttrSet::full(k.min(self.arity())))
    }

    /// Append validated rows **in place**, re-using the existing
    /// per-column dictionaries: appended values that were seen before get
    /// their old codes, so codes of existing rows never change. This is
    /// the mutation primitive behind `evofd-incremental`'s `LiveRelation`
    /// and the SQL `INSERT` path — O(appended) instead of the O(n)
    /// rebuild-from-scratch a `RelationBuilder` round-trip costs.
    ///
    /// Every row is validated (arity, types, NOT NULL) **before** any is
    /// applied, so on error the relation is unchanged. Returns the number
    /// of rows appended.
    pub fn append_rows<I>(&mut self, rows: I) -> Result<usize>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let rows: Vec<Vec<Value>> = rows.into_iter().collect();
        for row in &rows {
            if row.len() != self.schema.arity() {
                return Err(StorageError::ArityMismatch {
                    got: row.len(),
                    expected: self.schema.arity(),
                });
            }
            for (field, value) in self.schema.fields().iter().zip(row.iter()) {
                if value.is_null() && !field.nullable {
                    return Err(StorageError::NullViolation { column: field.name.clone() });
                }
                if !value.fits(field.dtype) {
                    return Err(StorageError::TypeMismatch {
                        column: field.name.clone(),
                        expected: field.dtype.to_string(),
                        value: value.to_string(),
                    });
                }
            }
        }
        let appended = rows.len();
        for row in rows {
            for (col, value) in self.columns.iter_mut().zip(row) {
                col.push(value).expect("validated above");
            }
        }
        self.row_count += appended;
        Ok(appended)
    }

    /// Append every row of `other` in place (dictionary-re-using, like
    /// [`Relation::append_rows`]). The schemas must agree attribute-by-
    /// attribute on name and type; `other`'s relation name may differ.
    /// Returns the number of rows appended; on error, `self` is unchanged.
    pub fn concat(&mut self, other: &Relation) -> Result<usize> {
        if other.arity() != self.arity() {
            return Err(StorageError::ArityMismatch { got: other.arity(), expected: self.arity() });
        }
        for (mine, theirs) in self.schema.fields().iter().zip(other.schema.fields()) {
            if mine.name != theirs.name || mine.dtype != theirs.dtype {
                return Err(StorageError::TypeMismatch {
                    column: mine.name.clone(),
                    expected: format!("{} {}", mine.name, mine.dtype),
                    value: format!("{} {}", theirs.name, theirs.dtype),
                });
            }
        }
        self.append_rows(other.rows())
    }

    /// New relation keeping only the rows whose index satisfies `pred` —
    /// the predicate-driven sibling of [`Relation::filter`] (and
    /// implemented on top of it). Like every row-subset operation, the
    /// result's dictionaries are rebuilt, so it is a canonical
    /// (snapshot-quality) relation.
    pub fn retain<F: FnMut(usize) -> bool>(&self, mut pred: F) -> Relation {
        let mask: Vec<bool> = (0..self.row_count).map(&mut pred).collect();
        self.filter(&mask)
    }

    /// Reassemble a relation from a schema and pre-built physical columns
    /// — the deserialization entry point for on-disk columnar snapshots
    /// (`evofd-persist`). Columns must match the schema attribute-by-
    /// attribute on name and type and all have the same length; the
    /// reconstructed relation preserves dictionary codes exactly.
    pub fn from_parts(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Relation> {
        if columns.len() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                got: columns.len(),
                expected: schema.arity(),
            });
        }
        let row_count = columns.first().map_or(0, Column::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if field.name != col.name() || field.dtype != col.dtype() {
                return Err(StorageError::TypeMismatch {
                    column: field.name.clone(),
                    expected: format!("{} {}", field.name, field.dtype),
                    value: format!("{} {}", col.name(), col.dtype()),
                });
            }
            if col.len() != row_count {
                return Err(StorageError::ArityMismatch { got: col.len(), expected: row_count });
            }
        }
        Ok(Relation { schema, columns, row_count })
    }

    /// Attributes that contain no NULL cells. The paper requires FD
    /// attributes and repair candidates to be NULL-free (§6.2.1).
    pub fn non_null_attrs(&self) -> AttrSet {
        AttrSet::from_indices(
            self.columns.iter().enumerate().filter(|(_, c)| !c.has_nulls()).map(|(i, _)| i),
        )
    }

    /// Render at most `limit` rows as an ASCII table (debugging/CLI).
    pub fn render(&self, limit: usize) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self.schema.fields().iter().map(|f| f.name.as_str()).collect();
        out.push_str(&names.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(names.join(" | ").len()));
        out.push('\n');
        for i in 0..self.row_count.min(limit) {
            let cells: Vec<String> = self.row(i).iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.row_count > limit {
            out.push_str(&format!("... ({} rows total)\n", self.row_count));
        }
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} rows)", self.schema, self.row_count)
    }
}

/// Incremental builder for a [`Relation`], validating every row.
#[derive(Debug)]
pub struct RelationBuilder {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    row_count: usize,
}

impl RelationBuilder {
    /// Start building a relation over a schema.
    pub fn new(schema: Arc<Schema>) -> RelationBuilder {
        let columns =
            schema.fields().iter().map(|f| Column::new(f.name.clone(), f.dtype)).collect();
        RelationBuilder { schema, columns, row_count: 0 }
    }

    /// Start building with row capacity pre-reserved.
    pub fn with_capacity(schema: Arc<Schema>, rows: usize) -> RelationBuilder {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.name.clone(), f.dtype, rows))
            .collect();
        RelationBuilder { schema, columns, row_count: 0 }
    }

    /// Append one row. Checks arity, types and NOT NULL constraints; on
    /// error the row is not applied (the builder stays consistent).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                got: row.len(),
                expected: self.schema.arity(),
            });
        }
        // Validate before mutating any column so a failed row is atomic.
        for (field, value) in self.schema.fields().iter().zip(row.iter()) {
            if value.is_null() && !field.nullable {
                return Err(StorageError::NullViolation { column: field.name.clone() });
            }
            if !value.fits(field.dtype) {
                return Err(StorageError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype.to_string(),
                    value: value.to_string(),
                });
            }
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value).expect("validated above");
        }
        self.row_count += 1;
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Finish and return the relation.
    pub fn finish(self) -> Relation {
        Relation { schema: self.schema, columns: self.columns, row_count: self.row_count }
    }
}

/// Build a small relation from string literals — test/demo helper.
///
/// All attributes get type `Str`. Rows are validated.
pub fn relation_of_strs(name: &str, attrs: &[&str], rows: &[&[&str]]) -> Result<Relation> {
    let schema = Schema::new(
        name,
        attrs.iter().map(|a| Field::new(*a, crate::value::DataType::Str)).collect(),
    )?
    .into_shared();
    Relation::from_rows(schema, rows.iter().map(|r| r.iter().map(Value::str).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn sample() -> Relation {
        let schema = Schema::new(
            "t",
            vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Str),
                Field::not_null("c", DataType::Int),
            ],
        )
        .unwrap()
        .into_shared();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::str("x"), Value::Int(10)],
                vec![Value::Int(2), Value::Null, Value::Int(20)],
                vec![Value::Int(1), Value::str("y"), Value::Int(30)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_and_reads() {
        let r = sample();
        assert_eq!(r.row_count(), 3);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.row(1), vec![Value::Int(2), Value::Null, Value::Int(20)]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let r = sample();
        let mut b = RelationBuilder::new(r.schema_arc());
        let err = b.push_row(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { got: 1, expected: 3 }));
    }

    #[test]
    fn not_null_enforced_atomically() {
        let r = sample();
        let mut b = RelationBuilder::new(r.schema_arc());
        let err = b.push_row(vec![Value::Int(1), Value::str("x"), Value::Null]).unwrap_err();
        assert!(matches!(err, StorageError::NullViolation { .. }));
        assert_eq!(b.row_count(), 0);
        // Column `a` must not have been partially written.
        let rel = b.finish();
        assert_eq!(rel.column(AttrId(0)).len(), 0);
    }

    #[test]
    fn project_keeps_rows() {
        let r = sample();
        let p = r.project(&r.schema().attr_set(&["a", "c"]).unwrap()).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.row_count(), 3);
        assert_eq!(p.row(2), vec![Value::Int(1), Value::Int(30)]);
    }

    #[test]
    fn filter_and_gather() {
        let r = sample();
        let f = r.filter(&[true, false, true]);
        assert_eq!(f.row_count(), 2);
        assert_eq!(f.row(1)[0], Value::Int(1));
        let g = r.gather(&[2, 0]);
        assert_eq!(g.row(0)[2], Value::Int(30));
        assert_eq!(g.row(1)[2], Value::Int(10));
    }

    #[test]
    fn head_and_take_attrs() {
        let r = sample();
        let h = r.head(2);
        assert_eq!(h.row_count(), 2);
        let t = r.take_attrs(1).unwrap();
        assert_eq!(t.arity(), 1);
        assert_eq!(t.schema().attr_name(AttrId(0)), "a");
    }

    #[test]
    fn non_null_attrs_excludes_nullable_data() {
        let r = sample();
        let nn = r.non_null_attrs();
        assert!(nn.contains(AttrId(0)));
        assert!(!nn.contains(AttrId(1)), "column b holds a NULL");
        assert!(nn.contains(AttrId(2)));
    }

    #[test]
    fn append_rows_reuses_codes_and_is_atomic() {
        let mut r = sample();
        let before_code = r.column(AttrId(0)).code_at(0); // Value::Int(1)
        let n = r
            .append_rows(vec![
                vec![Value::Int(1), Value::str("z"), Value::Int(40)],
                vec![Value::Int(3), Value::Null, Value::Int(50)],
            ])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(r.row_count(), 5);
        // Dictionary reuse: the appended Int(1) got the existing code.
        assert_eq!(r.column(AttrId(0)).code_at(3), before_code);
        assert_eq!(r.row(4), vec![Value::Int(3), Value::Null, Value::Int(50)]);

        // Atomicity: a bad row anywhere in the batch applies nothing.
        let err = r.append_rows(vec![
            vec![Value::Int(9), Value::str("ok"), Value::Int(60)],
            vec![Value::Int(9), Value::str("bad"), Value::Null], // NOT NULL c
        ]);
        assert!(matches!(err, Err(StorageError::NullViolation { .. })));
        assert_eq!(r.row_count(), 5, "failed batch left the relation unchanged");
        let err = r.append_rows(vec![vec![Value::Int(1)]]);
        assert!(matches!(err, Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn concat_appends_matching_schema() {
        let mut r = sample();
        let other = sample();
        assert_eq!(r.concat(&other).unwrap(), 3);
        assert_eq!(r.row_count(), 6);
        assert_eq!(r.row(5), other.row(2));
        // Mismatched schema is rejected.
        let narrow = relation_of_strs("x", &["a"], &[&["1"]]).unwrap();
        assert!(r.concat(&narrow).is_err());
        let renamed = relation_of_strs("x", &["p", "q", "r"], &[]).unwrap();
        assert!(r.concat(&renamed).is_err());
    }

    #[test]
    fn retain_by_predicate() {
        let r = sample();
        let kept = r.retain(|i| i != 1);
        assert_eq!(kept.row_count(), 2);
        assert_eq!(kept.row(1), r.row(2));
        assert_eq!(r.retain(|_| false).row_count(), 0);
    }

    #[test]
    fn from_parts_round_trips_physical_layout() {
        let r = sample();
        let cols: Vec<Column> = r
            .columns()
            .iter()
            .map(|c| {
                Column::from_parts(
                    c.name().to_string(),
                    c.dtype(),
                    c.dict().values().to_vec(),
                    c.codes().to_vec(),
                )
                .unwrap()
            })
            .collect();
        let rebuilt = Relation::from_parts(r.schema_arc(), cols).unwrap();
        assert_eq!(rebuilt.row_count(), r.row_count());
        for i in 0..r.row_count() {
            assert_eq!(rebuilt.row(i), r.row(i));
        }
        for (a, b) in r.columns().iter().zip(rebuilt.columns()) {
            assert_eq!(a.codes(), b.codes(), "codes preserved exactly");
        }
    }

    #[test]
    fn from_parts_rejects_mismatches() {
        let r = sample();
        // Wrong column count.
        assert!(Relation::from_parts(r.schema_arc(), vec![]).is_err());
        // Wrong name/type.
        let bad: Vec<Column> = vec![
            Column::new("zz", DataType::Int),
            Column::new("b", DataType::Str),
            Column::new("c", DataType::Int),
        ];
        assert!(Relation::from_parts(r.schema_arc(), bad).is_err());
        // Ragged column lengths.
        let mut ragged: Vec<Column> = vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
            Column::new("c", DataType::Int),
        ];
        ragged[0].push(Value::Int(1)).unwrap();
        assert!(Relation::from_parts(r.schema_arc(), ragged).is_err());
    }

    #[test]
    fn relation_of_strs_helper() {
        let r = relation_of_strs("t", &["x", "y"], &[&["1", "2"], &["3", "4"]]).unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.row(1), vec![Value::str("3"), Value::str("4")]);
    }

    #[test]
    fn render_truncates() {
        let r = sample();
        let text = r.render(1);
        assert!(text.contains("... (3 rows total)"));
    }

    #[test]
    fn approx_bytes_nonzero() {
        assert!(sample().approx_bytes() > 0);
    }
}
