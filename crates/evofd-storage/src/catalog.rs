//! A named collection of relations — the "database" the tool connects to.

use std::collections::BTreeMap;

use crate::error::{Result, StorageError};
use crate::relation::Relation;

/// A catalog of relations, keyed by name (case-sensitive, sorted).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Relation>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a relation under its schema name. Fails on duplicates.
    pub fn insert(&mut self, rel: Relation) -> Result<()> {
        let name = rel.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StorageError::DuplicateTable { name });
        }
        self.tables.insert(name, rel);
        Ok(())
    }

    /// Register or replace a relation.
    pub fn insert_or_replace(&mut self, rel: Relation) {
        self.tables.insert(rel.name().to_string(), rel);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.tables.get(name).ok_or_else(|| StorageError::UnknownTable { name: name.to_string() })
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable { name: name.to_string() })
    }

    /// Remove a relation, returning it.
    pub fn remove(&mut self, name: &str) -> Result<Relation> {
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable { name: name.to_string() })
    }

    /// True iff a relation with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Sorted table names.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff the catalog holds no relations.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterate over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.tables.iter().map(|(n, r)| (n.as_str(), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::relation_of_strs;

    #[test]
    fn insert_get_remove() {
        let mut cat = Catalog::new();
        cat.insert(relation_of_strs("t1", &["a"], &[&["x"]]).unwrap()).unwrap();
        cat.insert(relation_of_strs("t2", &["b"], &[]).unwrap()).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.contains("t1"));
        assert_eq!(cat.get("t1").unwrap().row_count(), 1);
        assert_eq!(cat.names(), vec!["t1", "t2"]);
        cat.remove("t1").unwrap();
        assert!(!cat.contains("t1"));
        assert!(matches!(cat.get("t1"), Err(StorageError::UnknownTable { .. })));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut cat = Catalog::new();
        cat.insert(relation_of_strs("t", &["a"], &[]).unwrap()).unwrap();
        let err = cat.insert(relation_of_strs("t", &["a"], &[]).unwrap()).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateTable { .. }));
        cat.insert_or_replace(relation_of_strs("t", &["a", "b"], &[]).unwrap());
        assert_eq!(cat.get("t").unwrap().arity(), 2);
    }
}
