//! Dictionary-encoded columns.
//!
//! Every column stores its values as dense `u32` codes into a per-column
//! dictionary. This is the core representation the whole system leans on:
//! distinct counting, partition refinement and clustering all operate on
//! codes, never on raw values. NULL is the sentinel code [`NULL_CODE`] and is
//! not part of the dictionary.

use std::collections::HashMap;

use crate::error::{Result, StorageError};
use crate::value::{DataType, Value};

/// Sentinel code representing NULL. Never a valid dictionary index.
pub const NULL_CODE: u32 = u32::MAX;

/// Mapping between values and dense codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<Value>,
    index: HashMap<Value, u32>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Encode a non-null value, interning it if unseen.
    pub fn encode(&mut self, value: Value) -> u32 {
        debug_assert!(!value.is_null(), "NULL must use NULL_CODE, not the dictionary");
        if let Some(&code) = self.index.get(&value) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(value.clone());
        self.index.insert(value, code);
        code
    }

    /// Look up a value without interning.
    pub fn lookup(&self, value: &Value) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Decode a code back to its value.
    pub fn decode(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff no value has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned values, in code order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// A dictionary-encoded column of a relation.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    dtype: DataType,
    dict: Dictionary,
    codes: Vec<u32>,
    null_count: usize,
}

impl Column {
    /// New empty column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            dict: Dictionary::new(),
            codes: Vec::new(),
            null_count: 0,
        }
    }

    /// New empty column with row capacity pre-reserved.
    pub fn with_capacity(name: impl Into<String>, dtype: DataType, rows: usize) -> Column {
        let mut c = Column::new(name, dtype);
        c.codes.reserve(rows);
        c
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Append a value, type-checking and widening ints into float columns.
    pub fn push(&mut self, value: Value) -> Result<()> {
        if !value.fits(self.dtype) {
            return Err(StorageError::TypeMismatch {
                column: self.name.clone(),
                expected: self.dtype.to_string(),
                value: value.to_string(),
            });
        }
        if value.is_null() {
            self.codes.push(NULL_CODE);
            self.null_count += 1;
        } else {
            let code = self.dict.encode(value.coerce(self.dtype));
            self.codes.push(code);
        }
        Ok(())
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The dictionary code at a row (NULL ⇒ [`NULL_CODE`]).
    pub fn code_at(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// The raw code slice (hot path for partition refinement).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The value at a row (NULL ⇒ `Value::Null`).
    pub fn value_at(&self, row: usize) -> Value {
        let code = self.codes[row];
        if code == NULL_CODE {
            Value::Null
        } else {
            self.dict.decode(code).clone()
        }
    }

    /// The column's dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of NULL cells.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// True iff the column contains at least one NULL.
    pub fn has_nulls(&self) -> bool {
        self.null_count > 0
    }

    /// Number of distinct non-null values (`|π_A(r)|` ignoring NULL
    /// duplicates). Because the dictionary only ever grows when a fresh
    /// value arrives, this is exact for append-only columns.
    pub fn distinct_non_null(&self) -> usize {
        self.dict.len()
    }

    /// Number of distinct values counting NULL as one value, i.e. the
    /// paper's `|π_A(r)|` under SQL `COUNT(DISTINCT)`-with-NULL-group
    /// semantics used for clusterings (all NULL rows form one class).
    pub fn distinct_with_null(&self) -> usize {
        self.dict.len() + usize::from(self.null_count > 0)
    }

    /// True iff every non-null value occurs exactly once and there is at
    /// most one NULL — i.e. the column is UNIQUE over the current rows.
    pub fn is_unique(&self) -> bool {
        self.dict.len() + self.null_count == self.codes.len() && self.null_count <= 1
    }

    /// Build a new column containing only the rows at `keep` (in order).
    pub fn gather(&self, keep: &[usize]) -> Column {
        let mut out = Column::with_capacity(self.name.clone(), self.dtype, keep.len());
        for &row in keep {
            let code = self.codes[row];
            if code == NULL_CODE {
                out.codes.push(NULL_CODE);
                out.null_count += 1;
            } else {
                let new_code = out.dict.encode(self.dict.decode(code).clone());
                out.codes.push(new_code);
            }
        }
        out
    }

    /// Build a new column containing the first `n` rows.
    pub fn head(&self, n: usize) -> Column {
        let keep: Vec<usize> = (0..n.min(self.len())).collect();
        self.gather(&keep)
    }

    /// Reassemble a column from its raw physical parts — the dictionary
    /// values in code order plus the per-row code array. This is the
    /// deserialization entry point for on-disk columnar snapshots
    /// (`evofd-persist`): the reconstructed column is bit-identical to the
    /// one that was serialized, so dictionary codes recorded elsewhere
    /// (e.g. incremental tracker keys) remain valid.
    ///
    /// Every dictionary value must be non-null, fit `dtype` and be unique;
    /// every code must be [`NULL_CODE`] or index the dictionary.
    pub fn from_parts(
        name: impl Into<String>,
        dtype: DataType,
        dict_values: Vec<Value>,
        codes: Vec<u32>,
    ) -> Result<Column> {
        let name = name.into();
        let mut dict = Dictionary::new();
        for v in dict_values {
            if v.is_null() || !v.fits(dtype) {
                return Err(StorageError::TypeMismatch {
                    column: name,
                    expected: dtype.to_string(),
                    value: v.to_string(),
                });
            }
            let expected = dict.len() as u32;
            if dict.encode(v.clone()) != expected {
                return Err(StorageError::TypeMismatch {
                    column: name,
                    expected: "unique dictionary values".into(),
                    value: v.to_string(),
                });
            }
        }
        let mut null_count = 0usize;
        for &code in &codes {
            if code == NULL_CODE {
                null_count += 1;
            } else if code as usize >= dict.len() {
                return Err(StorageError::TypeMismatch {
                    column: name,
                    expected: format!("code < {}", dict.len()),
                    value: code.to_string(),
                });
            }
        }
        Ok(Column { name, dtype, dict, codes, null_count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_interns_once() {
        let mut d = Dictionary::new();
        let a = d.encode(Value::str("x"));
        let b = d.encode(Value::str("x"));
        let c = d.encode(Value::str("y"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(d.len(), 2);
        assert_eq!(*d.decode(a), Value::str("x"));
        assert_eq!(d.lookup(&Value::str("y")), Some(c));
        assert_eq!(d.lookup(&Value::str("z")), None);
    }

    #[test]
    fn push_and_read_back() {
        let mut c = Column::new("a", DataType::Int);
        c.push(Value::Int(10)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(10)).unwrap();
        c.push(Value::Int(20)).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.value_at(0), Value::Int(10));
        assert_eq!(c.value_at(1), Value::Null);
        assert_eq!(c.code_at(0), c.code_at(2), "equal values share codes");
        assert_eq!(c.null_count(), 1);
        assert!(c.has_nulls());
        assert_eq!(c.distinct_non_null(), 2);
        assert_eq!(c.distinct_with_null(), 3);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new("a", DataType::Int);
        let err = c.push(Value::str("oops")).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn int_widened_into_float_column() {
        let mut c = Column::new("f", DataType::Float);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.value_at(0), Value::Float(2.0));
    }

    #[test]
    fn uniqueness_detection() {
        let mut c = Column::new("id", DataType::Int);
        for i in 0..5 {
            c.push(Value::Int(i)).unwrap();
        }
        assert!(c.is_unique());
        c.push(Value::Int(0)).unwrap();
        assert!(!c.is_unique());
    }

    #[test]
    fn unique_with_single_null() {
        let mut c = Column::new("id", DataType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        assert!(c.is_unique());
        c.push(Value::Null).unwrap();
        assert!(!c.is_unique(), "two NULL rows duplicate under grouping");
    }

    #[test]
    fn gather_reencodes() {
        let mut c = Column::new("a", DataType::Str);
        for s in ["p", "q", "r", "q"] {
            c.push(Value::str(s)).unwrap();
        }
        let g = c.gather(&[3, 1]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.value_at(0), Value::str("q"));
        assert_eq!(g.value_at(1), Value::str("q"));
        assert_eq!(g.distinct_non_null(), 1, "dictionary rebuilt, unused values dropped");
    }

    #[test]
    fn from_parts_round_trips() {
        let mut c = Column::new("a", DataType::Str);
        for s in ["p", "q", "p"] {
            c.push(Value::str(s)).unwrap();
        }
        c.push(Value::Null).unwrap();
        let rebuilt =
            Column::from_parts("a", DataType::Str, c.dict().values().to_vec(), c.codes().to_vec())
                .unwrap();
        assert_eq!(rebuilt.codes(), c.codes());
        assert_eq!(rebuilt.dict().values(), c.dict().values());
        assert_eq!(rebuilt.null_count(), 1);
        assert_eq!(rebuilt.value_at(2), Value::str("p"));
    }

    #[test]
    fn from_parts_rejects_bad_input() {
        // Code beyond the dictionary.
        assert!(Column::from_parts("a", DataType::Str, vec![Value::str("x")], vec![1]).is_err());
        // NULL inside the dictionary.
        assert!(Column::from_parts("a", DataType::Str, vec![Value::Null], vec![]).is_err());
        // Type mismatch between dictionary value and column type.
        assert!(Column::from_parts("a", DataType::Int, vec![Value::str("x")], vec![]).is_err());
        // Duplicate dictionary value.
        assert!(Column::from_parts(
            "a",
            DataType::Str,
            vec![Value::str("x"), Value::str("x")],
            vec![]
        )
        .is_err());
        // NULL_CODE is always acceptable.
        let c = Column::from_parts("a", DataType::Str, vec![], vec![NULL_CODE]).unwrap();
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn head_takes_prefix() {
        let mut c = Column::new("a", DataType::Int);
        for i in 0..10 {
            c.push(Value::Int(i)).unwrap();
        }
        let h = c.head(3);
        assert_eq!(h.len(), 3);
        assert_eq!(h.value_at(2), Value::Int(2));
        assert_eq!(c.head(99).len(), 10, "head clamps to length");
    }
}
