//! CSV import/export with type inference.
//!
//! Minimal RFC-4180-style support: quoted fields, embedded quotes doubled,
//! embedded separators and newlines inside quotes. Types are inferred per
//! column (Int → Float → Bool → Str, NULL for empty cells) unless a schema
//! is supplied.

use std::path::Path;
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::relation::{Relation, RelationBuilder};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Whether the first record carries column names (default true).
    pub has_header: bool,
    /// Strings treated as NULL in addition to the empty string.
    pub null_tokens: Vec<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            has_header: true,
            null_tokens: vec!["NULL".to_string(), "\\N".to_string()],
        }
    }
}

/// Split CSV text into records of raw string fields.
fn parse_records(text: &str, sep: char) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;

    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(StorageError::Csv {
                            line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                '\r' => { /* swallow; \r\n handled by \n */ }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                c if c == sep => record.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(StorageError::Csv { line, message: "unterminated quoted field".into() });
    }
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    // Drop fully empty trailing records (e.g. file ends with blank line).
    records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    Ok(records)
}

/// Infer the narrowest data type that parses every non-null sample.
fn infer_type<'a, I: Iterator<Item = &'a str>>(samples: I, null_tokens: &[String]) -> DataType {
    let mut can_int = true;
    let mut can_float = true;
    let mut can_bool = true;
    let mut any = false;
    for s in samples {
        if s.is_empty() || null_tokens.iter().any(|t| t == s) {
            continue;
        }
        any = true;
        if can_int && s.parse::<i64>().is_err() {
            can_int = false;
        }
        if can_float && s.parse::<f64>().is_err() {
            can_float = false;
        }
        if can_bool && !matches!(s.to_ascii_lowercase().as_str(), "true" | "false") {
            can_bool = false;
        }
        if !can_int && !can_float && !can_bool {
            break;
        }
    }
    if !any {
        return DataType::Str;
    }
    if can_int {
        DataType::Int
    } else if can_float {
        DataType::Float
    } else if can_bool {
        DataType::Bool
    } else {
        DataType::Str
    }
}

/// Parse CSV text into a relation, inferring the schema.
pub fn read_csv_str(name: &str, text: &str, opts: &CsvOptions) -> Result<Relation> {
    read_csv_str_impl(name, text, opts, None)
}

/// Parse CSV text with an explicit rows-per-chunk for the parallel coding
/// path, engaging it regardless of input size. [`read_csv_str`] dispatches
/// to the same machinery automatically above a size threshold; this entry
/// point exists so equivalence tests and benchmarks can force the chunked
/// path on small inputs.
pub fn read_csv_str_chunked(
    name: &str,
    text: &str,
    opts: &CsvOptions,
    chunk_rows: usize,
) -> Result<Relation> {
    read_csv_str_impl(name, text, opts, Some(chunk_rows))
}

fn read_csv_str_impl(
    name: &str,
    text: &str,
    opts: &CsvOptions,
    chunk_rows: Option<usize>,
) -> Result<Relation> {
    let records = parse_records(text, opts.separator)?;
    if records.is_empty() {
        return Err(StorageError::Csv { line: 1, message: "empty input".into() });
    }
    let (header, data) = if opts.has_header {
        (records[0].clone(), &records[1..])
    } else {
        let width = records[0].len();
        let names: Vec<String> = (0..width).map(|i| format!("col{i}")).collect();
        (names, &records[..])
    };
    let arity = header.len();
    for (i, rec) in data.iter().enumerate() {
        if rec.len() != arity {
            return Err(StorageError::Csv {
                line: i + 1 + usize::from(opts.has_header),
                message: format!("expected {arity} fields, found {}", rec.len()),
            });
        }
    }
    // Per-column type inference is embarrassingly parallel: each column
    // scans its own cells, so the fan-out shares nothing but the records.
    let cols: Vec<usize> = (0..arity).collect();
    let fields: Vec<Field> = mintpool::par_map(&cols, |&col| {
        let dtype = infer_type(data.iter().map(|r| r[col].as_str()), &opts.null_tokens);
        Field::new(header[col].clone(), dtype)
    });
    let schema = Schema::new(name, fields)?.into_shared();
    match chunk_rows {
        Some(rows) => build_from_records_chunked(schema, data, opts, rows),
        None => build_from_records(schema, data, opts),
    }
}

/// Parse CSV text into raw string records (no header handling, no typing).
/// Exposed for consumers that carry extra non-schema columns — e.g. the
/// CLI `watch` command's delta streams, whose first field is a `+`/`-`
/// operation marker followed by tuple values.
pub fn read_csv_records(text: &str, opts: &CsvOptions) -> Result<Vec<Vec<String>>> {
    parse_records(text, opts.separator)
}

/// Parse one raw CSV cell against a field: empty cells and the configured
/// null tokens are NULL, everything else must parse as the field's type
/// (`None` if it cannot). The single source of truth for cell semantics —
/// used by the schema-driven readers here and by the CLI's delta streams,
/// so `--csv` and `--deltas` always agree on what a literal means.
pub fn parse_cell(raw: &str, field: &Field, opts: &CsvOptions) -> Option<Value> {
    if raw.is_empty() || opts.null_tokens.iter().any(|t| t == raw) {
        return Some(Value::Null);
    }
    Value::parse_as(raw, field.dtype)
}

/// Parse CSV text against a known schema (no inference).
pub fn read_csv_str_with_schema(
    schema: Arc<Schema>,
    text: &str,
    opts: &CsvOptions,
) -> Result<Relation> {
    let records = parse_records(text, opts.separator)?;
    let data = if opts.has_header && !records.is_empty() { &records[1..] } else { &records[..] };
    build_from_records(schema, data, opts)
}

/// Record count above which typed coding fans out across `mintpool`
/// (under it the chunking overhead outweighs the parallel parse).
const PARALLEL_INGEST_MIN_ROWS: usize = 8192;

fn build_from_records(
    schema: Arc<Schema>,
    data: &[Vec<String>],
    opts: &CsvOptions,
) -> Result<Relation> {
    if data.len() >= PARALLEL_INGEST_MIN_ROWS && mintpool::threads() > 1 {
        let chunk_rows = data.len().div_ceil((mintpool::threads() * 2).max(1)).max(1);
        return build_from_records_chunked(schema, data, opts, chunk_rows);
    }
    build_chunk(schema, data, opts, 0)
}

/// Code one contiguous run of records into a relation. `base` is the
/// zero-based index of the run's first record within the whole file, so
/// error line numbers match the sequential reader exactly.
fn build_chunk(
    schema: Arc<Schema>,
    data: &[Vec<String>],
    opts: &CsvOptions,
    base: usize,
) -> Result<Relation> {
    let mut b = RelationBuilder::with_capacity(Arc::clone(&schema), data.len());
    for (i, rec) in data.iter().enumerate() {
        let mut row = Vec::with_capacity(schema.arity());
        for (field, raw) in schema.fields().iter().zip(rec.iter()) {
            let v = parse_cell(raw, field, opts).ok_or_else(|| StorageError::Csv {
                line: base + i + 1 + usize::from(opts.has_header),
                message: format!("cannot parse `{raw}` as {} for `{}`", field.dtype, field.name),
            })?;
            row.push(v);
        }
        b.push_row(row)?;
    }
    Ok(b.finish())
}

/// Parallel ingest: split the records into runs of `chunk_rows`, code each
/// run on the pool (cell parsing + per-chunk dictionary build), then merge
/// the runs **in file order** through the dictionary-re-using append path.
/// Because [`Relation::concat`] interns values in row order, the merged
/// dictionaries assign codes by first appearance across the whole file —
/// byte-identical to what the sequential builder produces, at any width
/// and any chunking (asserted by the unit tests below at odd chunkings
/// and end-to-end across widths in `tests/parallel_equivalence.rs`).
pub(crate) fn build_from_records_chunked(
    schema: Arc<Schema>,
    data: &[Vec<String>],
    opts: &CsvOptions,
    chunk_rows: usize,
) -> Result<Relation> {
    let chunk_rows = chunk_rows.max(1);
    let chunks: Vec<(usize, &[Vec<String>])> =
        data.chunks(chunk_rows).enumerate().map(|(ci, slice)| (ci * chunk_rows, slice)).collect();
    let parts = mintpool::par_map(&chunks, |&(base, slice)| {
        build_chunk(Arc::clone(&schema), slice, opts, base)
    });
    // The earliest chunk holds the earliest records, so the first failing
    // chunk carries the globally-first error — same as sequential.
    let mut parts = parts.into_iter().collect::<Result<Vec<Relation>>>()?.into_iter();
    let mut merged = match parts.next() {
        Some(first) => first,
        None => return Ok(Relation::empty(schema)),
    };
    for part in parts {
        merged.concat(&part)?;
    }
    Ok(merged)
}

/// Load a CSV file into a relation; the relation is named after the file
/// stem.
pub fn read_csv_path(path: &Path, opts: &CsvOptions) -> Result<Relation> {
    let text = std::fs::read_to_string(path)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table");
    read_csv_str(name, &text, opts)
}

/// Render a relation as CSV text (header + quoted-when-needed fields;
/// NULL as empty field).
pub fn write_csv_str(rel: &Relation) -> String {
    fn escape(field: &str, sep: char) -> String {
        if field.contains(sep) || field.contains('"') || field.contains('\n') {
            format!("\"{}\"", field.replace('"', "\"\""))
        } else {
            field.to_string()
        }
    }
    let sep = ',';
    let mut out = String::new();
    let names: Vec<String> = rel.schema().fields().iter().map(|f| escape(&f.name, sep)).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for i in 0..rel.row_count() {
        let cells: Vec<String> = rel
            .row(i)
            .iter()
            .map(|v| if v.is_null() { String::new() } else { escape(&v.to_string(), sep) })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Write a relation to a CSV file.
pub fn write_csv_path(rel: &Relation, path: &Path) -> Result<()> {
    std::fs::write(path, write_csv_str(rel))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrset::AttrId;

    #[test]
    fn basic_parse_with_inference() {
        let csv = "a,b,c\n1,x,2.5\n2,y,3.0\n";
        let r = read_csv_str("t", csv, &CsvOptions::default()).unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.schema().field(AttrId(0)).unwrap().dtype, DataType::Int);
        assert_eq!(r.schema().field(AttrId(1)).unwrap().dtype, DataType::Str);
        assert_eq!(r.schema().field(AttrId(2)).unwrap().dtype, DataType::Float);
    }

    #[test]
    fn quoted_fields() {
        let csv = "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n";
        let r = read_csv_str("t", csv, &CsvOptions::default()).unwrap();
        assert_eq!(r.row(0)[0], Value::str("hello, world"));
        assert_eq!(r.row(0)[1], Value::str("say \"hi\""));
    }

    #[test]
    fn quoted_newline() {
        let csv = "a\n\"two\nlines\"\n";
        let r = read_csv_str("t", csv, &CsvOptions::default()).unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.row(0)[0], Value::str("two\nlines"));
    }

    #[test]
    fn nulls_from_empty_and_tokens() {
        let csv = "a,b\n1,\n,NULL\n";
        let r = read_csv_str("t", csv, &CsvOptions::default()).unwrap();
        assert_eq!(r.row(0)[1], Value::Null);
        assert_eq!(r.row(1)[0], Value::Null);
        assert_eq!(r.row(1)[1], Value::Null);
    }

    #[test]
    fn mixed_int_float_column_becomes_float() {
        let csv = "a\n1\n2.5\n";
        let r = read_csv_str("t", csv, &CsvOptions::default()).unwrap();
        assert_eq!(r.schema().field(AttrId(0)).unwrap().dtype, DataType::Float);
        assert_eq!(r.row(0)[0], Value::Float(1.0));
    }

    #[test]
    fn bool_inference() {
        let csv = "a\ntrue\nfalse\n";
        let r = read_csv_str("t", csv, &CsvOptions::default()).unwrap();
        assert_eq!(r.schema().field(AttrId(0)).unwrap().dtype, DataType::Bool);
    }

    #[test]
    fn all_null_column_is_str() {
        let csv = "a,b\n,1\n,2\n";
        let r = read_csv_str("t", csv, &CsvOptions::default()).unwrap();
        assert_eq!(r.schema().field(AttrId(0)).unwrap().dtype, DataType::Str);
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "a,b\n1,2\n3\n";
        let err = read_csv_str("t", csv, &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, StorageError::Csv { line: 3, .. }));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let err = read_csv_str("t", "a\n\"oops\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, StorageError::Csv { .. }));
    }

    #[test]
    fn round_trip() {
        let csv = "a,b\n1,hello\n2,\"with,comma\"\n,plain\n";
        let r = read_csv_str("t", csv, &CsvOptions::default()).unwrap();
        let text = write_csv_str(&r);
        let r2 = read_csv_str("t", &text, &CsvOptions::default()).unwrap();
        assert_eq!(r.row_count(), r2.row_count());
        for i in 0..r.row_count() {
            assert_eq!(r.row(i), r2.row(i));
        }
    }

    #[test]
    fn headerless_mode() {
        let opts = CsvOptions { has_header: false, ..CsvOptions::default() };
        let r = read_csv_str("t", "1,2\n3,4\n", &opts).unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.schema().attr_name(AttrId(0)), "col0");
    }

    #[test]
    fn custom_separator() {
        let opts = CsvOptions { separator: ';', ..CsvOptions::default() };
        let r = read_csv_str("t", "a;b\n1;2\n", &opts).unwrap();
        assert_eq!(r.row(0), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn crlf_line_endings() {
        let r = read_csv_str("t", "a,b\r\n1,2\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.row(0), vec![Value::Int(1), Value::Int(2)]);
    }

    /// Two relations are physically identical: same schema, same
    /// dictionaries (values in code order), same code arrays.
    fn assert_physically_identical(a: &Relation, b: &Relation) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.row_count(), b.row_count());
        for (ca, cb) in a.columns().iter().zip(b.columns()) {
            assert_eq!(ca.dict().values(), cb.dict().values(), "column {}", ca.name());
            assert_eq!(ca.codes(), cb.codes(), "column {}", ca.name());
        }
    }

    #[test]
    fn chunked_ingest_identical_to_sequential() {
        // Repeated values across chunk boundaries exercise dictionary
        // merging; a NULL and a quoted field exercise cell semantics.
        let mut text = String::from("name,score,flag\n");
        for i in 0..100 {
            text.push_str(&format!("u{},{},{}\n", i % 7, (i * 13) % 5, i % 2 == 0));
        }
        text.push_str("\"holdout, x\",,true\n");
        let seq = read_csv_str("t", &text, &CsvOptions::default()).unwrap();
        for chunk_rows in [1, 2, 3, 7, 32, 101, 500] {
            let par = read_csv_str_chunked("t", &text, &CsvOptions::default(), chunk_rows).unwrap();
            assert_physically_identical(&seq, &par);
        }
    }

    #[test]
    fn chunked_ingest_reports_first_error_line() {
        // Against a declared schema (inference would degrade to TEXT and
        // never error): the bad cell is on data line 3 of 4.
        let schema = Schema::new("t", vec![Field::new("a", DataType::Int)]).unwrap().into_shared();
        let opts = CsvOptions::default();
        let data: Vec<Vec<String>> =
            ["1", "2", "nope", "4"].iter().map(|s| vec![s.to_string()]).collect();
        let seq = build_from_records(Arc::clone(&schema), &data, &opts).unwrap_err();
        for chunk_rows in [1, 2, 3] {
            let par = build_from_records_chunked(Arc::clone(&schema), &data, &opts, chunk_rows)
                .unwrap_err();
            let (StorageError::Csv { line: l1, .. }, StorageError::Csv { line: l2, .. }) =
                (&seq, &par)
            else {
                panic!("{seq:?} / {par:?}")
            };
            assert_eq!(l1, l2, "chunked error line matches sequential");
            assert_eq!(*l2, 4, "1-based line 4 counting the header");
        }
    }

    #[test]
    fn chunked_ingest_empty_data() {
        let par = read_csv_str_chunked("t", "a,b\n", &CsvOptions::default(), 8).unwrap();
        assert_eq!(par.row_count(), 0);
        assert_eq!(par.arity(), 2);
    }

    #[test]
    fn schema_provided_parse() {
        let schema =
            Schema::new("t", vec![Field::new("a", DataType::Str), Field::new("b", DataType::Int)])
                .unwrap()
                .into_shared();
        let r = read_csv_str_with_schema(schema, "a,b\n01,2\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.row(0)[0], Value::str("01"), "no inference: leading zero kept");
    }
}
