//! Distinct counting — the paper's `|π_X(r)|` primitive — plus memoisation.
//!
//! Every measure in the CB method (confidence, goodness, ε_CB) reduces to
//! counting distinct projections, which the paper computes with
//! `SELECT COUNT(DISTINCT …)`. We provide:
//!
//! * [`count_distinct`] — partition-refinement counting on dictionary codes
//!   (the fast path);
//! * [`count_distinct_naive`] — row-hashing over materialised values (the
//!   oracle used by tests and the ablation benchmark);
//! * [`DistinctCache`] — a memo table keyed by [`AttrSet`], because the
//!   repair search re-uses counts such as `|π_X|`, `|π_XA|`, `|π_XAY|`
//!   across queue expansions.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::attrset::AttrSet;
use crate::partition::Partition;
use crate::relation::Relation;
use crate::value::Value;

/// `|π_attrs(r)|`: the number of distinct projections of `rel` onto
/// `attrs`. NULLs group as a single value per column (SQL `GROUP BY`
/// semantics). The empty attribute set projects every tuple onto the empty
/// tuple, so the count is 1 for a non-empty relation and 0 otherwise.
pub fn count_distinct(rel: &Relation, attrs: &AttrSet) -> usize {
    // Empty relations project to nothing whatever the attribute set —
    // checked before any column is fetched.
    if rel.row_count() == 0 {
        return 0;
    }
    // Single-attribute fast path: the dictionary already knows the answer.
    if attrs.len() == 1 {
        return rel.column(attrs.first().expect("len checked")).distinct_with_null();
    }
    Partition::by_attrs(rel, attrs).n_classes()
}

/// Reference implementation: hash the materialised value tuples.
/// Quadratically slower in attribute count than [`count_distinct`]; kept as
/// a correctness oracle and ablation subject.
pub fn count_distinct_naive(rel: &Relation, attrs: &AttrSet) -> usize {
    if rel.row_count() == 0 {
        return 0;
    }
    let cols: Vec<_> = attrs.iter().map(|a| rel.column(a)).collect();
    let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
    for row in 0..rel.row_count() {
        seen.insert(cols.iter().map(|c| c.value_at(row)).collect());
    }
    seen.len()
}

/// Statistics kept by [`DistinctCache`] for the ablation study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to compute a partition.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0,1]`; 0 when never queried.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memo table for distinct counts over one relation instance.
///
/// The cache is tied to a **snapshot** of the relation. Historically
/// callers had to remember to drop it when the relation changed — a silent
/// staleness hazard once relations became mutable. The cache is therefore
/// *epoch-aware*: it records the epoch of the contents it memoised, and
/// [`DistinctCache::sync_epoch`] (or an explicit
/// [`DistinctCache::invalidate`]) clears the memo whenever the underlying
/// data has moved on. Mutable sources such as `evofd-incremental`'s
/// `LiveRelation` expose a monotonically increasing epoch for exactly this
/// handshake. When disabled it still counts misses so ablation runs report
/// comparable work.
#[derive(Debug)]
pub struct DistinctCache {
    memo: HashMap<AttrSet, usize>,
    enabled: bool,
    stats: CacheStats,
    /// Source epoch the memoised contents correspond to; `None` means
    /// "not synced to any epoch" (fresh or explicitly invalidated), so the
    /// next [`DistinctCache::sync_epoch`] always clears.
    epoch: Option<u64>,
}

impl DistinctCache {
    /// An enabled cache (not yet synced to any source epoch).
    pub fn new() -> DistinctCache {
        DistinctCache {
            memo: HashMap::new(),
            enabled: true,
            stats: CacheStats::default(),
            epoch: None,
        }
    }

    /// A pass-through cache that never memoises (ablation mode).
    pub fn disabled() -> DistinctCache {
        DistinctCache {
            memo: HashMap::new(),
            enabled: false,
            stats: CacheStats::default(),
            epoch: None,
        }
    }

    /// The source epoch of the contents currently memoised, if the cache
    /// has been synced to one.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// Drop every memoised entry and forget the synced epoch: call when
    /// the relation this cache was computed over has mutated out-of-band.
    /// (Deliberately does *not* invent a new epoch — only the data source
    /// hands out epochs, so `invalidate` can never collide with a future
    /// [`DistinctCache::sync_epoch`].)
    pub fn invalidate(&mut self) {
        self.memo.clear();
        self.epoch = None;
    }

    /// Align the cache with a data source's epoch. If the source has moved
    /// past the memoised epoch (or the cache was never synced) the memo is
    /// cleared — stale counts can never be served; otherwise this is a
    /// no-op. Returns true if the cache was invalidated.
    pub fn sync_epoch(&mut self, source_epoch: u64) -> bool {
        if self.epoch != Some(source_epoch) {
            self.memo.clear();
            self.epoch = Some(source_epoch);
            true
        } else {
            false
        }
    }

    /// `|π_attrs(rel)|`, memoised.
    pub fn count(&mut self, rel: &Relation, attrs: &AttrSet) -> usize {
        if self.enabled {
            if let Some(&n) = self.memo.get(attrs) {
                self.stats.hits += 1;
                return n;
            }
        }
        self.stats.misses += 1;
        let n = count_distinct(rel, attrs);
        if self.enabled {
            self.memo.insert(attrs.clone(), n);
        }
        n
    }

    /// Number of memoised entries.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True iff nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all memoised entries (keep counters).
    pub fn clear(&mut self) {
        self.memo.clear();
    }
}

impl Default for DistinctCache {
    fn default() -> Self {
        DistinctCache::new()
    }
}

/// Number of independently locked shards in a [`SharedDistinctCache`].
const CACHE_SHARDS: usize = 16;

/// A thread-safe distinct-count memo: the concurrent sibling of
/// [`DistinctCache`], shared by reference across `mintpool` tasks.
///
/// The memo is split into [`CACHE_SHARDS`] mutex-guarded shards selected
/// by the attribute set's hash, so concurrent lookups of different sets
/// rarely contend. Counts are computed *outside* the shard lock — two
/// racing tasks may both compute the same count (both arriving at the
/// identical value, since counting is deterministic), which is cheaper
/// than serialising every partition refinement behind a lock. Hit/miss
/// counters are atomics and therefore exact, though their interleaving
/// across threads is not deterministic.
///
/// Unlike [`DistinctCache`] this type carries no epoch: it is built for
/// the scoped fan-outs in `evofd-core` (validation, discovery levels,
/// repair searches), which snapshot one immutable relation for their
/// whole lifetime.
#[derive(Debug)]
pub struct SharedDistinctCache {
    shards: Vec<Mutex<HashMap<AttrSet, usize>>>,
    enabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedDistinctCache {
    /// An enabled concurrent cache.
    pub fn new() -> SharedDistinctCache {
        SharedDistinctCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            enabled: true,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A pass-through cache that never memoises (ablation mode); misses
    /// are still counted so work metrics stay comparable.
    pub fn disabled() -> SharedDistinctCache {
        SharedDistinctCache { enabled: false, ..SharedDistinctCache::new() }
    }

    fn shard(&self, attrs: &AttrSet) -> &Mutex<HashMap<AttrSet, usize>> {
        let mut hasher = DefaultHasher::new();
        attrs.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % CACHE_SHARDS]
    }

    /// `|π_attrs(rel)|`, memoised. Takes `&self`: safe to call from any
    /// number of tasks at once.
    pub fn count(&self, rel: &Relation, attrs: &AttrSet) -> usize {
        if self.enabled {
            if let Some(&n) = self.shard(attrs).lock().unwrap().get(attrs) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return n;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let n = count_distinct(rel, attrs);
        if self.enabled {
            self.shard(attrs).lock().unwrap().insert(attrs.clone(), n);
        }
        n
    }

    /// Hit/miss counters (exact totals; cross-thread ordering unspecified).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoised entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True iff nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoised entries (keep counters).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }
}

impl Default for SharedDistinctCache {
    fn default() -> Self {
        SharedDistinctCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs("t", &["x", "y"], &[&["a", "1"], &["a", "1"], &["a", "2"], &["b", "1"]])
            .unwrap()
    }

    #[test]
    fn counts_match_naive() {
        let r = rel();
        for names in [vec!["x"], vec!["y"], vec!["x", "y"]] {
            let attrs = r.schema().attr_set(&names).unwrap();
            assert_eq!(
                count_distinct(&r, &attrs),
                count_distinct_naive(&r, &attrs),
                "attrs {names:?}"
            );
        }
    }

    #[test]
    fn expected_counts() {
        let r = rel();
        let s = r.schema();
        assert_eq!(count_distinct(&r, &s.attr_set(&["x"]).unwrap()), 2);
        assert_eq!(count_distinct(&r, &s.attr_set(&["y"]).unwrap()), 2);
        assert_eq!(count_distinct(&r, &s.attr_set(&["x", "y"]).unwrap()), 3);
    }

    #[test]
    fn empty_attrs_and_empty_relation() {
        let r = rel();
        assert_eq!(count_distinct(&r, &AttrSet::empty()), 1);
        let e = relation_of_strs("e", &["x"], &[]).unwrap();
        assert_eq!(count_distinct(&e, &AttrSet::empty()), 0);
        assert_eq!(count_distinct(&e, &e.schema().attr_set(&["x"]).unwrap()), 0);
    }

    #[test]
    fn cache_hits_and_misses() {
        let r = rel();
        let attrs = r.schema().attr_set(&["x", "y"]).unwrap();
        let mut cache = DistinctCache::new();
        assert_eq!(cache.count(&r, &attrs), 3);
        assert_eq!(cache.count(&r, &attrs), 3);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let r = rel();
        let attrs = r.schema().attr_set(&["x"]).unwrap();
        let mut cache = DistinctCache::disabled();
        cache.count(&r, &attrs);
        cache.count(&r, &attrs);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidate_clears_and_desyncs() {
        let r = rel();
        let attrs = r.schema().attr_set(&["x", "y"]).unwrap();
        let mut cache = DistinctCache::new();
        assert_eq!(cache.epoch(), None);
        cache.sync_epoch(3);
        cache.count(&r, &attrs);
        assert_eq!(cache.len(), 1);
        cache.invalidate();
        assert_eq!(cache.epoch(), None, "invalidate never invents an epoch");
        assert!(cache.is_empty(), "stale entries dropped");
        // Counters survive invalidation (they describe work, not contents).
        assert_eq!(cache.stats().misses, 1);
        // Re-syncing to the same source epoch after an invalidate must
        // still clear (the memo filled in between could be stale).
        cache.count(&r, &attrs);
        assert!(cache.sync_epoch(3), "unsynced cache always clears on sync");
        assert!(cache.is_empty());
    }

    #[test]
    fn sync_epoch_invalidates_only_on_change() {
        let r = rel();
        let attrs = r.schema().attr_set(&["x"]).unwrap();
        let mut cache = DistinctCache::new();
        assert!(cache.sync_epoch(0), "first sync clears the unsynced memo");
        cache.count(&r, &attrs);
        assert!(!cache.sync_epoch(0), "same epoch: memo kept");
        assert_eq!(cache.len(), 1);
        assert!(cache.sync_epoch(7), "source moved on: memo dropped");
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), Some(7));
        // A mutated relation now yields the fresh count, not the stale one.
        let mut r2 = r.clone();
        r2.append_rows(vec![vec![crate::value::Value::str("new"), crate::value::Value::str("9")]])
            .unwrap();
        assert_eq!(cache.count(&r2, &attrs), 3);
    }

    #[test]
    fn shared_cache_counts_and_memoises() {
        let r = rel();
        let attrs = r.schema().attr_set(&["x", "y"]).unwrap();
        let cache = SharedDistinctCache::new();
        assert_eq!(cache.count(&r, &attrs), 3);
        assert_eq!(cache.count(&r, &attrs), 3);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_cache_agrees_with_sequential_cache() {
        let r = rel();
        let shared = SharedDistinctCache::new();
        let mut seq = DistinctCache::new();
        for names in [vec!["x"], vec!["y"], vec!["x", "y"]] {
            let attrs = r.schema().attr_set(&names).unwrap();
            assert_eq!(shared.count(&r, &attrs), seq.count(&r, &attrs), "attrs {names:?}");
        }
    }

    #[test]
    fn shared_cache_disabled_never_hits() {
        let r = rel();
        let attrs = r.schema().attr_set(&["x"]).unwrap();
        let cache = SharedDistinctCache::disabled();
        cache.count(&r, &attrs);
        cache.count(&r, &attrs);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_cache_concurrent_access() {
        let r = rel();
        let cache = SharedDistinctCache::new();
        let sets: Vec<_> = [vec!["x"], vec!["y"], vec!["x", "y"]]
            .iter()
            .map(|names| r.schema().attr_set(names).unwrap())
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for attrs in &sets {
                        assert_eq!(cache.count(&r, attrs), count_distinct_naive(&r, attrs));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn hit_ratio() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_attr_fast_path_counts_null_group() {
        use crate::schema::{Field, Schema};
        use crate::value::{DataType, Value};
        let schema = Schema::new("t", vec![Field::new("a", DataType::Int)]).unwrap().into_shared();
        let r = Relation::from_rows(
            schema,
            vec![vec![Value::Null], vec![Value::Int(1)], vec![Value::Null]],
        )
        .unwrap();
        let attrs = r.schema().attr_set(&["a"]).unwrap();
        assert_eq!(count_distinct(&r, &attrs), 2);
        assert_eq!(count_distinct_naive(&r, &attrs), 2);
    }
}
