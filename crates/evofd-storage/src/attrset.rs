//! Attribute identifiers and compact attribute sets.
//!
//! The repair algorithms manipulate *sets of attributes* constantly: the
//! antecedent `X` of an FD, the union `XY`, candidate extensions `XA`, memo
//! keys for distinct-count caching, and visited-set deduplication. `AttrSet`
//! is a bitset over attribute positions, sized dynamically so schemas with
//! hundreds of attributes (the *Veterans* relation has 481) work unchanged.

use std::fmt;

/// Index of an attribute within a relation schema (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The position as a usize, for indexing column vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for AttrId {
    fn from(v: u16) -> Self {
        AttrId(v)
    }
}

impl From<usize> for AttrId {
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "attribute index out of range");
        AttrId(v as u16)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

const WORD_BITS: usize = 64;

/// A set of attribute positions, stored as a bitset.
///
/// Invariant: `words` never has trailing zero words, so equality and hashing
/// are structural.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AttrSet {
    words: Vec<u64>,
}

impl AttrSet {
    /// The empty attribute set.
    pub fn empty() -> AttrSet {
        AttrSet { words: Vec::new() }
    }

    /// A singleton set.
    pub fn single(attr: AttrId) -> AttrSet {
        let mut s = AttrSet::empty();
        s.insert(attr);
        s
    }

    /// Build from any iterator of attribute ids.
    pub fn from_attrs<I: IntoIterator<Item = AttrId>>(iter: I) -> AttrSet {
        let mut s = AttrSet::empty();
        for a in iter {
            s.insert(a);
        }
        s
    }

    /// Build from raw indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> AttrSet {
        AttrSet::from_attrs(iter.into_iter().map(AttrId::from))
    }

    /// The full set `{0, 1, …, arity-1}`.
    pub fn full(arity: usize) -> AttrSet {
        AttrSet::from_indices(0..arity)
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// Insert an attribute; returns true if it was newly added.
    pub fn insert(&mut self, attr: AttrId) -> bool {
        let (w, b) = (attr.index() / WORD_BITS, attr.index() % WORD_BITS);
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Remove an attribute; returns true if it was present.
    pub fn remove(&mut self, attr: AttrId) -> bool {
        let (w, b) = (attr.index() / WORD_BITS, attr.index() % WORD_BITS);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        self.trim();
        present
    }

    /// Membership test.
    pub fn contains(&self, attr: AttrId) -> bool {
        let (w, b) = (attr.index() / WORD_BITS, attr.index() % WORD_BITS);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Set union, producing a new set.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        let mut out =
            if self.words.len() >= other.words.len() { self.clone() } else { other.clone() };
        let small = if self.words.len() >= other.words.len() { other } else { self };
        for (w, s) in out.words.iter_mut().zip(small.words.iter()) {
            *w |= s;
        }
        out
    }

    /// Set intersection, producing a new set.
    pub fn intersection(&self, other: &AttrSet) -> AttrSet {
        let n = self.words.len().min(other.words.len());
        let mut out = AttrSet { words: self.words[..n].to_vec() };
        for (w, o) in out.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
        out.trim();
        out
    }

    /// Set difference `self \ other`, producing a new set.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(other.words.iter()) {
            *w &= !o;
        }
        out.trim();
        out
    }

    /// `self ∪ {attr}` as a new set.
    pub fn with(&self, attr: AttrId) -> AttrSet {
        let mut s = self.clone();
        s.insert(attr);
        s
    }

    /// `self \ {attr}` as a new set.
    pub fn without(&self, attr: AttrId) -> AttrSet {
        let mut s = self.clone();
        s.remove(attr);
        s
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset_of(&self, other: &AttrSet) -> bool {
        if self.words.len() > other.words.len() {
            return false;
        }
        self.words.iter().zip(other.words.iter()).all(|(s, o)| s & !o == 0)
    }

    /// True iff the sets share no attribute.
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        self.words.iter().zip(other.words.iter()).all(|(s, o)| s & o == 0)
    }

    /// Number of attributes shared with `other` (`|self ∩ other|`).
    pub fn intersection_len(&self, other: &AttrSet) -> usize {
        self.words.iter().zip(other.words.iter()).map(|(s, o)| (s & o).count_ones() as usize).sum()
    }

    /// The smallest attribute id in the set, if any.
    pub fn first(&self) -> Option<AttrId> {
        self.iter().next()
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> AttrIter<'_> {
        AttrIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Members collected into a vector of raw indices (ascending).
    pub fn indices(&self) -> Vec<usize> {
        self.iter().map(|a| a.index()).collect()
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        AttrSet::from_attrs(iter)
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = AttrId;
    type IntoIter = AttrIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the members of an [`AttrSet`] in ascending order.
pub struct AttrIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for AttrIter<'_> {
    type Item = AttrId;

    fn next(&mut self) -> Option<AttrId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(AttrId::from(self.word_idx * WORD_BITS + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl PartialOrd for AttrSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrSet {
    /// Deterministic total order: first by cardinality, then by member list.
    /// (Used only for stable tie-breaking, not for set semantics.)
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.len().cmp(&other.len()).then_with(|| self.iter().cmp(other.iter()))
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", a.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[usize]) -> AttrSet {
        AttrSet::from_indices(ids.iter().copied())
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = AttrSet::empty();
        assert!(s.insert(AttrId(3)));
        assert!(!s.insert(AttrId(3)));
        assert!(s.contains(AttrId(3)));
        assert!(!s.contains(AttrId(4)));
        assert!(s.remove(AttrId(3)));
        assert!(!s.remove(AttrId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn trailing_words_trimmed_for_eq() {
        let mut a = AttrSet::empty();
        a.insert(AttrId(500));
        a.remove(AttrId(500));
        assert_eq!(a, AttrSet::empty());
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        AttrSet::empty().hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn large_attribute_ids() {
        // Veterans has 481 attributes; make sure ids beyond 448 work.
        let s = set(&[0, 63, 64, 127, 480]);
        assert_eq!(s.len(), 5);
        assert!(s.contains(AttrId(480)));
        assert_eq!(s.indices(), vec![0, 63, 64, 127, 480]);
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(&[0, 1, 2, 70]);
        let b = set(&[2, 3, 70, 200]);
        assert_eq!(a.union(&b), set(&[0, 1, 2, 3, 70, 200]));
        assert_eq!(a.intersection(&b), set(&[2, 70]));
        assert_eq!(a.difference(&b), set(&[0, 1]));
        assert_eq!(b.difference(&a), set(&[3, 200]));
    }

    #[test]
    fn union_is_commutative_with_different_lengths() {
        let a = set(&[1]);
        let b = set(&[300]);
        assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn subset_and_disjoint() {
        let a = set(&[1, 2]);
        let b = set(&[1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(set(&[9]).is_disjoint(&a));
        assert!(!a.is_disjoint(&b));
        // Longer-but-sparse set vs short set.
        assert!(!set(&[400]).is_subset_of(&a));
        assert!(set(&[400]).is_disjoint(&a));
    }

    #[test]
    fn intersection_len_counts_shared() {
        let a = set(&[0, 1, 2, 3]);
        let b = set(&[2, 3, 4]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(b.intersection_len(&a), 2);
        assert_eq!(a.intersection_len(&AttrSet::empty()), 0);
    }

    #[test]
    fn with_without_do_not_mutate() {
        let a = set(&[1]);
        let b = a.with(AttrId(2));
        assert_eq!(a, set(&[1]));
        assert_eq!(b, set(&[1, 2]));
        assert_eq!(b.without(AttrId(1)), set(&[2]));
    }

    #[test]
    fn iteration_order_ascending() {
        let s = set(&[77, 3, 130, 0]);
        let got: Vec<usize> = s.iter().map(|a| a.index()).collect();
        assert_eq!(got, vec![0, 3, 77, 130]);
    }

    #[test]
    fn ordering_by_cardinality_then_members() {
        let a = set(&[5]);
        let b = set(&[0, 1]);
        assert!(a < b, "smaller cardinality sorts first");
        assert!(set(&[0, 2]) < set(&[1, 2]));
    }

    #[test]
    fn display_compact() {
        assert_eq!(set(&[0, 2, 5]).to_string(), "{0,2,5}");
        assert_eq!(AttrSet::empty().to_string(), "{}");
    }

    #[test]
    fn full_set() {
        let s = AttrSet::full(9);
        assert_eq!(s.len(), 9);
        assert_eq!(s, set(&[0, 1, 2, 3, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn first_member() {
        assert_eq!(set(&[4, 9]).first(), Some(AttrId(4)));
        assert_eq!(AttrSet::empty().first(), None);
    }
}
