//! Relation schemas: named, typed, nullable attributes.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::attrset::{AttrId, AttrSet};
use crate::error::{Result, StorageError};
use crate::value::DataType;

/// One attribute (column) of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name (unique within the schema, case-sensitive).
    pub name: String,
    /// Data type of the attribute.
    pub dtype: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Field {
    /// A nullable field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field { name: name.into(), dtype, nullable: true }
    }

    /// A NOT NULL field.
    pub fn not_null(name: impl Into<String>, dtype: DataType) -> Field {
        Field { name: name.into(), dtype, nullable: false }
    }
}

/// The schema of a relation: an ordered list of fields plus a name index.
#[derive(Debug, Clone)]
pub struct Schema {
    name: String,
    fields: Vec<Field>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Build a schema, rejecting duplicate attribute names.
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> Result<Schema> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), AttrId::from(i)).is_some() {
                return Err(StorageError::DuplicateAttribute { name: f.name.clone() });
            }
        }
        Ok(Schema { name: name.into(), fields, by_name })
    }

    /// Convenience constructor: every attribute gets the same type.
    pub fn uniform(
        name: impl Into<String>,
        attr_names: &[&str],
        dtype: DataType,
    ) -> Result<Schema> {
        Schema::new(name, attr_names.iter().map(|n| Field::new(*n, dtype)).collect())
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (the paper's `|R|`).
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at a position.
    pub fn field(&self, attr: AttrId) -> Result<&Field> {
        self.fields
            .get(attr.index())
            .ok_or(StorageError::AttributeOutOfRange { index: attr.index(), arity: self.arity() })
    }

    /// Attribute name at a position (panics on out-of-range: internal use).
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.fields[attr.index()].name
    }

    /// Resolve an attribute name to its id.
    pub fn resolve(&self, name: &str) -> Result<AttrId> {
        self.by_name.get(name).copied().ok_or_else(|| StorageError::UnknownAttribute {
            name: name.to_string(),
            relation: self.name.clone(),
        })
    }

    /// Resolve a list of attribute names into an [`AttrSet`].
    pub fn attr_set(&self, names: &[&str]) -> Result<AttrSet> {
        let mut s = AttrSet::empty();
        for n in names {
            s.insert(self.resolve(n)?);
        }
        Ok(s)
    }

    /// All attribute ids as a set.
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::full(self.arity())
    }

    /// Render an attribute set as `[Name1, Name2]` using this schema's names.
    pub fn render_attrs(&self, attrs: &AttrSet) -> String {
        let names: Vec<&str> = attrs.iter().map(|a| self.fields[a.index()].name.as_str()).collect();
        format!("[{}]", names.join(", "))
    }

    /// Wrap into a shared pointer (relations share their schema).
    pub fn into_shared(self) -> Arc<Schema> {
        Arc::new(self)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.dtype)?;
            if !field.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.fields == other.fields
    }
}

impl Eq for Schema {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            "Places",
            vec![
                Field::new("District", DataType::Str),
                Field::new("Region", DataType::Str),
                Field::not_null("Zip", DataType::Int),
            ],
        )
        .unwrap()
    }

    #[test]
    fn resolve_by_name() {
        let s = schema();
        assert_eq!(s.resolve("District").unwrap(), AttrId(0));
        assert_eq!(s.resolve("Zip").unwrap(), AttrId(2));
        assert!(matches!(s.resolve("Nope"), Err(StorageError::UnknownAttribute { .. })));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err =
            Schema::new("t", vec![Field::new("a", DataType::Int), Field::new("a", DataType::Str)])
                .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateAttribute { .. }));
    }

    #[test]
    fn attr_set_resolution() {
        let s = schema();
        let set = s.attr_set(&["Zip", "District"]).unwrap();
        assert_eq!(set.indices(), vec![0, 2]);
    }

    #[test]
    fn render_attrs_uses_names() {
        let s = schema();
        let set = s.attr_set(&["District", "Region"]).unwrap();
        assert_eq!(s.render_attrs(&set), "[District, Region]");
    }

    #[test]
    fn display_includes_not_null() {
        let s = schema();
        let text = s.to_string();
        assert!(text.contains("Zip INT NOT NULL"), "{text}");
    }

    #[test]
    fn field_out_of_range() {
        let s = schema();
        assert!(s.field(AttrId(9)).is_err());
    }

    #[test]
    fn uniform_builder() {
        let s = Schema::uniform("t", &["a", "b"], DataType::Int).unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.field(AttrId(1)).unwrap().dtype, DataType::Int);
    }
}
