//! Typed values and data types for relation cells.
//!
//! `Value` provides *total* equality, ordering and hashing — including for
//! floating-point data — so values can be dictionary-encoded and used as
//! grouping keys. Floats are compared via [`f64::total_cmp`] and hashed via
//! their bit pattern with NaN canonicalised, so `NaN == NaN` inside the
//! engine (a requirement for grouping, mirroring SQL `GROUP BY` semantics).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "BOOL"),
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "TEXT"),
        }
    }
}

impl DataType {
    /// Parse a SQL-ish type name (case-insensitive). Accepts common aliases.
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Some(DataType::Str),
            _ => None,
        }
    }
}

/// A single cell value.
///
/// `Str` values are reference-counted so cloning a value (e.g. into a
/// dictionary) is cheap.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (absence of a value).
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// String value.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The data type of a non-null value; `None` for NULL.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Whether this value may be stored in a column of type `dtype`.
    ///
    /// NULL fits any type; an `Int` fits a `Float` column (it is widened on
    /// insert); everything else must match exactly.
    pub fn fits(&self, dtype: DataType) -> bool {
        match (self, dtype) {
            (Value::Null, _) => true,
            (Value::Int(_), DataType::Float) => true,
            (v, t) => v.dtype() == Some(t),
        }
    }

    /// Coerce the value for storage into a column of type `dtype`
    /// (widens `Int` to `Float` where needed). Assumes [`Value::fits`].
    pub fn coerce(self, dtype: DataType) -> Value {
        match (self, dtype) {
            (Value::Int(i), DataType::Float) => Value::Float(i as f64),
            (v, _) => v,
        }
    }

    /// Parse a textual representation into a value of the given type.
    /// Empty strings parse as NULL.
    pub fn parse_as(text: &str, dtype: DataType) -> Option<Value> {
        if text.is_empty() {
            return Some(Value::Null);
        }
        match dtype {
            DataType::Bool => match text.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Some(Value::Bool(true)),
                "false" | "f" | "0" => Some(Value::Bool(false)),
                _ => None,
            },
            DataType::Int => text.parse::<i64>().ok().map(Value::Int),
            DataType::Float => text.parse::<f64>().ok().map(Value::Float),
            DataType::Str => Some(Value::str(text)),
        }
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    fn canonical_float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            // +0.0 and -0.0 compare equal; hash them identically.
            0.0f64.to_bits()
        } else {
            f.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => {
                Value::canonical_float_bits(*a) == Value::canonical_float_bits(*b)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_rank());
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Value::canonical_float_bits(*f).hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL first, then by type rank, then within-type order.
    /// Mixed Int/Float compare numerically with `Int` winning ties, keeping
    /// the order consistent with `Eq` (which never equates across types).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            _ => self.type_rank().cmp(&other.type_rank()).then_with(|| match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                (Value::Int(a), Value::Int(b)) => a.cmp(b),
                (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                _ => Ordering::Equal, // unreachable: ranks differ
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_equals_null() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn nan_equals_nan_for_grouping() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(hash_of(&Value::Float(f64::NAN)), hash_of(&Value::Float(f64::NAN)));
    }

    #[test]
    fn zero_signs_equal() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn int_not_equal_to_float() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
    }

    #[test]
    fn mixed_numeric_ordering_consistent() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        // Equal magnitude: Int sorts before Float, never Equal.
        assert!(Value::Int(1) < Value::Float(1.0));
        assert!(Value::Float(1.0) > Value::Int(1));
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::str("a"), Value::Int(3), Value::Null, Value::Bool(true)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
    }

    #[test]
    fn string_ordering() {
        assert!(Value::str("abc") < Value::str("abd"));
    }

    #[test]
    fn parse_round_trip() {
        assert_eq!(Value::parse_as("42", DataType::Int), Some(Value::Int(42)));
        assert_eq!(Value::parse_as("4.5", DataType::Float), Some(Value::Float(4.5)));
        assert_eq!(Value::parse_as("true", DataType::Bool), Some(Value::Bool(true)));
        assert_eq!(Value::parse_as("hi", DataType::Str), Some(Value::str("hi")));
        assert_eq!(Value::parse_as("", DataType::Int), Some(Value::Null));
        assert_eq!(Value::parse_as("x", DataType::Int), None);
    }

    #[test]
    fn datatype_parse_aliases() {
        assert_eq!(DataType::parse("integer"), Some(DataType::Int));
        assert_eq!(DataType::parse("VARCHAR"), Some(DataType::Str));
        assert_eq!(DataType::parse("double"), Some(DataType::Float));
        assert_eq!(DataType::parse("mystery"), None);
    }

    #[test]
    fn int_widens_to_float_column() {
        assert!(Value::Int(3).fits(DataType::Float));
        assert_eq!(Value::Int(3).coerce(DataType::Float), Value::Float(3.0));
    }

    #[test]
    fn null_fits_everything() {
        for t in [DataType::Bool, DataType::Int, DataType::Float, DataType::Str] {
            assert!(Value::Null.fits(t));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::str("x").to_string(), "x");
    }
}
