//! Partitions of a relation's rows — the paper's *clusterings*.
//!
//! Definition 5 of the paper: given attributes `X`, the X-clustering `C_X`
//! partitions the tuples so that each class holds all tuples agreeing on
//! `X`. We compute partitions by *refinement*: start from the trivial
//! one-class partition and successively split classes by each column's
//! dictionary codes. Labels are dense (`0..n_classes`), which keeps
//! contingency tables and further refinements cheap.
//!
//! NULL semantics: all NULL cells of a column carry the same sentinel code,
//! so NULL rows group together — matching SQL `GROUP BY` (one NULL class).
//!
//! Large multi-attribute partitions are refined **in parallel**: rows are
//! split into chunks, each chunk refined independently on a `mintpool`
//! worker, and the per-chunk label maps merged by a dense relabel keyed on
//! one representative row per chunk-class. The merge assigns global labels
//! in first-occurrence row order, so the parallel result is *identical*
//! (not merely equivalent) to the sequential one at any thread count.

use std::collections::HashMap;
use std::ops::Range;

use crate::attrset::AttrSet;
use crate::relation::Relation;

/// Rows below this stay on the sequential path: chunk + merge overhead
/// only pays off once each chunk holds thousands of rows.
const PAR_ROW_THRESHOLD: usize = 8192;

/// A partition of rows `0..n` into `n_classes` classes with dense labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    labels: Vec<u32>,
    n_classes: usize,
}

impl Partition {
    /// The trivial partition: every row in a single class. For an empty
    /// relation this has zero classes.
    pub fn unit(n_rows: usize) -> Partition {
        Partition { labels: vec![0; n_rows], n_classes: usize::from(n_rows > 0) }
    }

    /// The discrete partition: every row its own class.
    pub fn discrete(n_rows: usize) -> Partition {
        Partition { labels: (0..n_rows as u32).collect(), n_classes: n_rows }
    }

    /// Construct from raw labels (normalises them to dense `0..k`).
    pub fn from_labels(raw: &[u32]) -> Partition {
        let mut map: HashMap<u32, u32> = HashMap::new();
        let mut labels = Vec::with_capacity(raw.len());
        for &l in raw {
            let next = map.len() as u32;
            let dense = *map.entry(l).or_insert(next);
            labels.push(dense);
        }
        Partition { n_classes: map.len(), labels }
    }

    /// Number of classes (`K` in Definition 5) — equals `|π_X(r)|` when the
    /// partition was built over attribute set `X`.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of rows covered.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// The dense class label of each row.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Refine this partition by a column's codes: rows stay together only
    /// if they were together *and* share the new code.
    pub fn refine_by_codes(&self, codes: &[u32]) -> Partition {
        debug_assert_eq!(codes.len(), self.labels.len());
        let mut map: HashMap<u64, u32> = HashMap::with_capacity(self.n_classes * 2);
        let mut labels = Vec::with_capacity(self.labels.len());
        for (i, &old) in self.labels.iter().enumerate() {
            let key = (u64::from(old) << 32) | u64::from(codes[i]);
            let next = map.len() as u32;
            let dense = *map.entry(key).or_insert(next);
            labels.push(dense);
        }
        Partition { n_classes: map.len(), labels }
    }

    /// Build the X-clustering of a relation for attribute set `attrs`.
    ///
    /// Refines column-by-column in ascending attribute order; the resulting
    /// class count equals the number of distinct `attrs`-projections.
    /// Large multi-attribute inputs fan out across the `mintpool` width;
    /// the labels are identical to the sequential path either way.
    pub fn by_attrs(rel: &Relation, attrs: &AttrSet) -> Partition {
        if attrs.len() >= 2 && rel.row_count() >= PAR_ROW_THRESHOLD && mintpool::threads() > 1 {
            return Partition::by_attrs_parallel(rel, attrs);
        }
        Partition::by_attrs_sequential(rel, attrs)
    }

    fn by_attrs_sequential(rel: &Relation, attrs: &AttrSet) -> Partition {
        let mut p = Partition::unit(rel.row_count());
        for a in attrs.iter() {
            p = p.refine_by_codes(rel.column(a).codes());
        }
        p
    }

    /// The chunked-parallel construction behind [`Partition::by_attrs`],
    /// callable directly (it ignores the size threshold, not the thread
    /// width — property tests use it to pin parallel ≡ sequential).
    pub fn by_attrs_parallel(rel: &Relation, attrs: &AttrSet) -> Partition {
        let chunk =
            rel.row_count().div_ceil(mintpool::threads().max(1).min(rel.row_count().max(1)));
        Partition::by_attrs_chunked(rel, attrs, chunk.max(1))
    }

    /// Chunked refinement with an explicit chunk size (exposed so tests can
    /// force multi-chunk merges on tiny relations).
    pub fn by_attrs_chunked(rel: &Relation, attrs: &AttrSet, chunk: usize) -> Partition {
        let n = rel.row_count();
        if n == 0 || attrs.is_empty() {
            return Partition::unit(n);
        }
        let cols: Vec<&[u32]> = attrs.iter().map(|a| rel.column(a).codes()).collect();
        let chunk = chunk.max(1);
        let ranges: Vec<Range<usize>> =
            (0..n).step_by(chunk).map(|s| s..(s + chunk).min(n)).collect();

        // Phase 1 (parallel): refine each chunk independently. A chunk's
        // final local labels are dense in first-occurrence row order, and
        // `reps[l]` records the first physical row of local class `l`.
        struct ChunkLabels {
            labels: Vec<u32>,
            reps: Vec<u32>,
        }
        let parts: Vec<ChunkLabels> = mintpool::par_map(&ranges, |range| {
            let mut labels: Vec<u32> = Vec::with_capacity(range.len());
            let mut map1: HashMap<u32, u32> = HashMap::new();
            for row in range.clone() {
                let next = map1.len() as u32;
                labels.push(*map1.entry(cols[0][row]).or_insert(next));
            }
            let mut n_classes = map1.len();
            for col in &cols[1..] {
                let mut map: HashMap<u64, u32> = HashMap::with_capacity(n_classes * 2);
                for (i, row) in range.clone().enumerate() {
                    let key = (u64::from(labels[i]) << 32) | u64::from(col[row]);
                    let next = map.len() as u32;
                    labels[i] = *map.entry(key).or_insert(next);
                }
                n_classes = map.len();
            }
            let mut reps: Vec<u32> = vec![u32::MAX; n_classes];
            for (i, row) in range.clone().enumerate() {
                let slot = &mut reps[labels[i] as usize];
                if *slot == u32::MAX {
                    *slot = row as u32;
                }
            }
            ChunkLabels { labels, reps }
        });

        // Phase 2 (sequential, O(classes)): dense relabel. Walking chunks
        // in row order and local classes in creation order visits class
        // representatives in global first-occurrence order, so the dense
        // ids come out exactly as the sequential refinement would assign
        // them. Representatives are compared by their full code tuple.
        let mut global: HashMap<Box<[u32]>, u32> = HashMap::new();
        let maps: Vec<Vec<u32>> = parts
            .iter()
            .map(|part| {
                part.reps
                    .iter()
                    .map(|&rep| {
                        let key: Box<[u32]> = cols.iter().map(|col| col[rep as usize]).collect();
                        let next = global.len() as u32;
                        *global.entry(key).or_insert(next)
                    })
                    .collect()
            })
            .collect();

        // Phase 3 (parallel): rewrite local labels to global ones; output
        // chunks are disjoint `chunks_mut` slices, so no synchronisation.
        let mut labels = vec![0u32; n];
        mintpool::scope(|s| {
            for (slice, (part, map)) in labels.chunks_mut(chunk).zip(parts.iter().zip(&maps)) {
                s.spawn(move || {
                    for (out, &local) in slice.iter_mut().zip(&part.labels) {
                        *out = map[local as usize];
                    }
                });
            }
        });
        Partition { labels, n_classes: global.len() }
    }

    /// Continue refining an existing partition by extra attributes of `rel`.
    /// `Partition::by_attrs(rel, &x.union(&y))` ≡
    /// `Partition::by_attrs(rel, &x).refine_by_attrs(rel, &y)`.
    pub fn refine_by_attrs(&self, rel: &Relation, attrs: &AttrSet) -> Partition {
        let mut p = self.clone();
        for a in attrs.iter() {
            p = p.refine_by_codes(rel.column(a).codes());
        }
        p
    }

    /// Class sizes indexed by label.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_classes];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Materialise classes as row-id lists (used by the entropy baseline,
    /// which genuinely needs the tuple groups — the CB method never does).
    pub fn classes(&self) -> Vec<Vec<u32>> {
        let mut classes: Vec<Vec<u32>> = vec![Vec::new(); self.n_classes];
        for (row, &l) in self.labels.iter().enumerate() {
            classes[l as usize].push(row as u32);
        }
        classes
    }

    /// True iff every class of `self` is contained in a single class of
    /// `other` — the paper's *homogeneity* (every `self`-class properly
    /// associated with an `other`-class).
    pub fn is_refinement_of(&self, other: &Partition) -> bool {
        debug_assert_eq!(self.n_rows(), other.n_rows());
        // self refines other ⇔ refining `other` by `self` labels adds no class
        // beyond self's count ⇔ the map (self label → other label) is a function.
        let mut seen: Vec<Option<u32>> = vec![None; self.n_classes];
        for (row, &l) in self.labels.iter().enumerate() {
            let o = other.labels[row];
            match seen[l as usize] {
                None => seen[l as usize] = Some(o),
                Some(prev) if prev != o => return false,
                _ => {}
            }
        }
        true
    }

    /// Number of classes the *common refinement* of two partitions has
    /// (`|C_{X∪Y}|` when the inputs are `C_X`, `C_Y` over the same rows).
    pub fn joint_classes(&self, other: &Partition) -> usize {
        debug_assert_eq!(self.n_rows(), other.n_rows());
        let mut map: HashMap<u64, u32> = HashMap::new();
        for (a, b) in self.labels.iter().zip(other.labels.iter()) {
            let key = (u64::from(*a) << 32) | u64::from(*b);
            let next = map.len() as u32;
            map.entry(key).or_insert(next);
        }
        map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["x", "y", "z"],
            &[
                &["a", "1", "p"],
                &["a", "1", "q"],
                &["a", "2", "p"],
                &["b", "1", "p"],
                &["b", "1", "p"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn unit_and_discrete() {
        assert_eq!(Partition::unit(4).n_classes(), 1);
        assert_eq!(Partition::unit(0).n_classes(), 0);
        assert_eq!(Partition::discrete(4).n_classes(), 4);
    }

    #[test]
    fn by_attrs_counts_distinct_projections() {
        let r = rel();
        let x = r.schema().attr_set(&["x"]).unwrap();
        let xy = r.schema().attr_set(&["x", "y"]).unwrap();
        let xyz = r.schema().attr_set(&["x", "y", "z"]).unwrap();
        assert_eq!(Partition::by_attrs(&r, &x).n_classes(), 2);
        assert_eq!(Partition::by_attrs(&r, &xy).n_classes(), 3);
        assert_eq!(Partition::by_attrs(&r, &xyz).n_classes(), 4);
    }

    #[test]
    fn refinement_composes() {
        let r = rel();
        let x = r.schema().attr_set(&["x"]).unwrap();
        let y = r.schema().attr_set(&["y"]).unwrap();
        let xy = r.schema().attr_set(&["x", "y"]).unwrap();
        let composed = Partition::by_attrs(&r, &x).refine_by_attrs(&r, &y);
        let direct = Partition::by_attrs(&r, &xy);
        assert_eq!(composed.n_classes(), direct.n_classes());
        // Same partition up to label renaming: joint refinement adds nothing.
        assert_eq!(composed.joint_classes(&direct), direct.n_classes());
    }

    #[test]
    fn class_sizes_sum_to_rows() {
        let r = rel();
        let p = Partition::by_attrs(&r, &r.schema().attr_set(&["x", "y"]).unwrap());
        let sizes = p.class_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), r.row_count());
        assert_eq!(sizes.len(), p.n_classes());
    }

    #[test]
    fn classes_materialisation() {
        let r = rel();
        let p = Partition::by_attrs(&r, &r.schema().attr_set(&["x"]).unwrap());
        let classes = p.classes();
        assert_eq!(classes.len(), 2);
        let mut all: Vec<u32> = classes.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn refinement_check() {
        let r = rel();
        let x = Partition::by_attrs(&r, &r.schema().attr_set(&["x"]).unwrap());
        let xy = Partition::by_attrs(&r, &r.schema().attr_set(&["x", "y"]).unwrap());
        assert!(xy.is_refinement_of(&x));
        assert!(!x.is_refinement_of(&xy));
        assert!(x.is_refinement_of(&x));
    }

    #[test]
    fn from_labels_normalises() {
        let p = Partition::from_labels(&[7, 7, 3, 9, 3]);
        assert_eq!(p.n_classes(), 3);
        assert_eq!(p.labels(), &[0, 0, 1, 2, 1]);
    }

    #[test]
    fn joint_classes_symmetric() {
        let a = Partition::from_labels(&[0, 0, 1, 1]);
        let b = Partition::from_labels(&[0, 1, 0, 1]);
        assert_eq!(a.joint_classes(&b), 4);
        assert_eq!(b.joint_classes(&a), 4);
    }

    #[test]
    fn nulls_group_together() {
        use crate::schema::{Field, Schema};
        use crate::value::{DataType, Value};
        let schema = Schema::new("t", vec![Field::new("a", DataType::Int)]).unwrap().into_shared();
        let r = Relation::from_rows(
            schema,
            vec![vec![Value::Null], vec![Value::Null], vec![Value::Int(1)]],
        )
        .unwrap();
        let p = Partition::by_attrs(&r, &r.schema().attr_set(&["a"]).unwrap());
        assert_eq!(p.n_classes(), 2, "both NULLs in one class");
    }

    #[test]
    fn empty_relation_partitions() {
        let r = relation_of_strs("t", &["x"], &[]).unwrap();
        let p = Partition::by_attrs(&r, &r.schema().attr_set(&["x"]).unwrap());
        assert_eq!(p.n_classes(), 0);
        assert_eq!(p.n_rows(), 0);
    }

    #[test]
    fn empty_attrset_gives_unit() {
        let r = rel();
        let p = Partition::by_attrs(&r, &AttrSet::empty());
        assert_eq!(p.n_classes(), 1);
    }

    #[test]
    fn chunked_labels_identical_to_sequential() {
        let r = rel();
        for names in [vec!["x", "y"], vec!["x", "z"], vec!["x", "y", "z"]] {
            let attrs = r.schema().attr_set(&names).unwrap();
            let seq = Partition::by_attrs_sequential(&r, &attrs);
            // Chunk sizes from "one row per chunk" to "one chunk": every
            // boundary must reproduce the sequential dense labels exactly.
            for chunk in 1..=r.row_count() + 1 {
                let par = Partition::by_attrs_chunked(&r, &attrs, chunk);
                assert_eq!(par, seq, "attrs {names:?}, chunk {chunk}");
            }
        }
    }

    #[test]
    fn chunked_handles_empty_and_single_attr() {
        let e = relation_of_strs("t", &["x"], &[]).unwrap();
        let attrs = e.schema().attr_set(&["x"]).unwrap();
        assert_eq!(Partition::by_attrs_chunked(&e, &attrs, 4).n_classes(), 0);
        let r = rel();
        let x = r.schema().attr_set(&["x"]).unwrap();
        assert_eq!(Partition::by_attrs_chunked(&r, &x, 2), Partition::by_attrs_sequential(&r, &x));
        assert_eq!(Partition::by_attrs_chunked(&r, &AttrSet::empty(), 2).n_classes(), 1);
    }

    #[test]
    fn parallel_entry_point_matches() {
        let r = rel();
        let attrs = r.schema().attr_set(&["x", "y"]).unwrap();
        assert_eq!(
            Partition::by_attrs_parallel(&r, &attrs),
            Partition::by_attrs_sequential(&r, &attrs)
        );
    }
}
