//! [`DurableEngine`]: the SQL engine over a durable [`Database`] — every
//! INSERT/DELETE/UPDATE becomes a write-ahead transaction.
//!
//! The wiring uses `evofd-sql`'s [`StorageBackend`] hook: the engine
//! lowers each DML statement to a value-level change batch (appended
//! tuples + deleted canonical row indices) and this module's backend
//! translates canonical indices to the durable live relation's physical
//! ids and journals the delta **before** applying it; the engine then
//! mirrors the same batch onto its catalog copy through the ordinary
//! in-memory paths, so SELECT serving needs no re-materialisation and
//! durable mutation stays O(changed rows). A failed delta leaves a
//! rollback record in the WAL and the engine's catalog untouched —
//! exactly the in-memory engine's restore-on-error behaviour, made
//! durable.

use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use evofd_incremental::{Delta, ValidatorConfig};
use evofd_sql::{
    AcceptedRepair, AlertInfoRow, DriftInfoRow, Engine, FdInfoProvider, FdInfoRow, ProposalRow,
    QueryResult, StorageBackend,
};
use evofd_storage::{Catalog, Relation, Schema, Value};

use crate::error::Result;
use crate::store::{Database, PersistOptions};

/// The [`StorageBackend`] implementation over a shared [`Database`].
#[derive(Debug, Clone)]
struct DbBackend {
    db: Arc<Mutex<Database>>,
}

impl DbBackend {
    fn lock(&self) -> MutexGuard<'_, Database> {
        self.db.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl StorageBackend for DbBackend {
    fn create_table(&mut self, schema: Arc<Schema>) -> std::result::Result<(), String> {
        self.lock()
            .create_table(Relation::empty(schema), Vec::new(), ValidatorConfig::default())
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn apply_mutation(
        &mut self,
        table: &str,
        inserts: Vec<Vec<Value>>,
        deletes: Vec<usize>,
    ) -> std::result::Result<(), String> {
        let mut db = self.lock();
        let durable = db.get_mut(table).map_err(|e| e.to_string())?;
        // Canonical row k (the engine's view: live rows in physical order)
        // → the k-th live physical id.
        let physical: Vec<usize> = durable.live().live_rows().collect();
        let mut translated = Vec::with_capacity(deletes.len());
        for k in deletes {
            let id = physical
                .get(k)
                .copied()
                .ok_or_else(|| format!("canonical row {k} out of range"))?;
            translated.push(id);
        }
        let delta = Delta { inserts, deletes: translated };
        durable.apply(&delta).map_err(|e| e.to_string())?;
        Ok(())
    }

    fn set_compact_threshold(&mut self, threshold: f64) {
        self.lock().set_compact_threshold(threshold);
    }

    fn set_indexes(&mut self, table: &str, columns: &[String]) -> std::result::Result<(), String> {
        let mut db = self.lock();
        let durable = db.get_mut(table).map_err(|e| e.to_string())?;
        durable.set_indexes(columns.to_vec()).map_err(|e| e.to_string())
    }
}

/// The [`FdInfoProvider`] behind `SHOW FDS`, `SUGGEST REPAIRS`,
/// `ACCEPT REPAIR` and `ALTER TABLE … CONSTRAINT FD`: reads the tracked
/// FDs and their delta-maintained measures straight off the database's
/// incremental validators, and the proposal/status columns off each
/// table's live advisor session. `SUGGEST`/`ACCEPT` materialize the
/// session (maintained per delta from then on); `SHOW FDS` only borrows
/// it — or analyzes transiently — so status reads stay side-effect free.
#[derive(Debug, Clone)]
struct DbFdProvider {
    db: Arc<Mutex<Database>>,
}

impl DbFdProvider {
    fn lock(&self) -> MutexGuard<'_, Database> {
        self.db.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolve an FD text to its index in the table's tracked set.
    fn fd_index(table: &crate::DurableRelation, fd: &str) -> std::result::Result<usize, String> {
        let parsed = evofd_core::Fd::parse(table.live().schema(), fd)
            .map_err(|e| format!("bad FD `{fd}`: {e}"))?;
        table
            .validator()
            .fds()
            .iter()
            .position(|f| *f == parsed)
            .ok_or_else(|| format!("`{fd}` is not a tracked FD of `{}`", table.name()))
    }
}

impl FdInfoProvider for DbFdProvider {
    fn exact_fds(&self, table: &str) -> Vec<String> {
        let db = self.lock();
        let Ok(t) = db.get(table) else { return Vec::new() };
        let v = t.validator();
        let schema = t.live().schema();
        v.fds()
            .iter()
            .enumerate()
            .filter(|&(i, _)| v.is_exact(i))
            .map(|(_, fd)| fd.display(schema))
            .collect()
    }

    fn fd_rows(&self, table: Option<&str>) -> std::result::Result<Vec<FdInfoRow>, String> {
        let db = self.lock();
        let mut rows = Vec::new();
        for (name, t) in db.iter() {
            if table.is_some_and(|want| want != name) {
                continue;
            }
            if t.validator().fds().is_empty() {
                continue;
            }
            // Reuse a maintained session when one exists (SUGGEST/ACCEPT
            // materialized it); otherwise analyze transiently — SHOW FDS
            // is a read and must not attach a standing per-delta tax.
            let transient;
            let advisor = match t.advisor() {
                Some(a) => a,
                None => {
                    transient = t.build_advisor().map_err(|e| e.to_string())?;
                    &transient
                }
            };
            let v = t.validator();
            for (i, fd) in v.fds().iter().enumerate() {
                let m = v.measures(i);
                rows.push(FdInfoRow {
                    table: name.to_string(),
                    fd: fd.display(t.live().schema()),
                    confidence: m.confidence,
                    goodness: m.goodness,
                    violating_rows: v.summary(i).violating_rows,
                    status: advisor
                        .state(i)
                        .map(|s| s.label().to_string())
                        .unwrap_or_else(|_| "unknown".into()),
                    g3: v.g3(i),
                    proposals: advisor.pending_proposals(i),
                    approx: v.is_approx(i),
                });
            }
        }
        Ok(rows)
    }

    fn proposal_rows(
        &self,
        table: &str,
        limit: usize,
    ) -> std::result::Result<Vec<ProposalRow>, String> {
        let mut db = self.lock();
        let t = db.get_mut(table).map_err(|e| e.to_string())?;
        let advisor = t.ensure_advisor().map_err(|e| e.to_string())?;
        let mut rows = Vec::new();
        'fds: for i in advisor.pending() {
            let fd = advisor.fds()[i].clone();
            for (rank, p) in advisor.proposals(i).map_err(|e| e.to_string())?.iter().enumerate() {
                if rows.len() >= limit {
                    break 'fds;
                }
                rows.push((fd.clone(), rank, p.clone()));
            }
        }
        let schema = t.live().schema();
        Ok(rows
            .into_iter()
            .map(|(fd, rank, p)| ProposalRow {
                table: table.to_string(),
                fd: fd.display(schema),
                rank: rank + 1,
                evolved: p.fd.display(schema),
                added: schema.render_attrs(&p.added),
                goodness: p.measures.goodness,
            })
            .collect())
    }

    fn accept_repair(
        &self,
        table: &str,
        fd: &str,
        proposal: usize,
    ) -> std::result::Result<AcceptedRepair, String> {
        let mut db = self.lock();
        let t = db.get_mut(table).map_err(|e| e.to_string())?;
        let idx = Self::fd_index(t, fd)?;
        let original = t.validator().fds()[idx].display(t.live().schema());
        let chosen = t.accept_repair(idx, proposal).map_err(|e| e.to_string())?;
        let evolved = chosen.fd.display(t.live().schema());
        Ok(AcceptedRepair { original, evolved })
    }

    fn create_alert(&self, table: &str, rule: &str) -> std::result::Result<usize, String> {
        let mut db = self.lock();
        let t = db.get_mut(table).map_err(|e| e.to_string())?;
        let parsed = crate::AlertRule::parse(rule)?;
        let mut rules = t.alerts().rules.clone();
        rules.push(parsed);
        t.set_alerts(rules).map_err(|e| e.to_string())
    }

    fn drop_alert(&self, table: &str, fd: &str) -> std::result::Result<(usize, usize), String> {
        let mut db = self.lock();
        let t = db.get_mut(table).map_err(|e| e.to_string())?;
        // Accept the FD in any spelling that parses to the watched FD.
        let canonical = evofd_core::Fd::parse(t.live().schema(), fd)
            .map_err(|e| format!("bad FD `{fd}`: {e}"))?
            .display(t.live().schema());
        let before = t.alerts().rules.len();
        let kept: Vec<_> = t.alerts().rules.iter().filter(|r| r.fd != canonical).cloned().collect();
        let removed = before - kept.len();
        if removed == 0 {
            return Err(format!("no alert rule on `{table}` watches `{canonical}`"));
        }
        let remaining = t.set_alerts(kept).map_err(|e| e.to_string())?;
        Ok((removed, remaining))
    }

    fn alert_rows(&self, table: Option<&str>) -> std::result::Result<Vec<AlertInfoRow>, String> {
        let db = self.lock();
        let mut rows = Vec::new();
        for (name, t) in db.iter() {
            if table.is_some_and(|want| want != name) {
                continue;
            }
            let alerts = t.alerts();
            for (i, rule) in alerts.rules.iter().enumerate() {
                let rt = &alerts.runtime[i];
                rows.push(AlertInfoRow {
                    table: name.to_string(),
                    rule: rule.to_string(),
                    fd: rule.fd.clone(),
                    firing: rt.firing,
                    consecutive: rt.consecutive,
                    fired_count: rt.fired_count,
                });
            }
        }
        Ok(rows)
    }

    fn drift_rows(
        &self,
        table: &str,
        fd: Option<&str>,
        since_epoch: Option<u64>,
    ) -> std::result::Result<Vec<DriftInfoRow>, String> {
        let db = self.lock();
        let t = db.get(table).map_err(|e| e.to_string())?;
        // Accept the FD filter in any spelling that parses.
        let canonical = match fd {
            Some(text) => Some(
                evofd_core::Fd::parse(t.live().schema(), text)
                    .map_err(|e| format!("bad FD `{text}`: {e}"))?
                    .display(t.live().schema()),
            ),
            None => None,
        };
        let since = since_epoch.unwrap_or(0);
        let mut rows = Vec::new();
        for frame in t.history_frames().map_err(|e| e.to_string())? {
            if frame.epoch < since {
                continue;
            }
            for d in &frame.drifts {
                if canonical.as_deref().is_some_and(|want| want != d.fd) {
                    continue;
                }
                rows.push(DriftInfoRow {
                    epoch: frame.epoch,
                    seq: frame.seq,
                    fd: d.fd.clone(),
                    kind: d.kind.clone(),
                    confidence_before: d.confidence_before,
                    confidence_after: d.confidence_after,
                    groups: d.groups.join(", "),
                });
            }
        }
        Ok(rows)
    }

    fn alter_fd(&self, table: &str, fd: &str, add: bool) -> std::result::Result<usize, String> {
        let mut db = self.lock();
        let t = db.get_mut(table).map_err(|e| e.to_string())?;
        let parsed = evofd_core::Fd::parse(t.live().schema(), fd)
            .map_err(|e| format!("bad FD `{fd}`: {e}"))?;
        let mut fds = t.validator().fds().to_vec();
        if add {
            if fds.contains(&parsed) {
                return Err(format!("`{fd}` is already tracked on `{table}`"));
            }
            fds.push(parsed);
        } else {
            let pos = fds
                .iter()
                .position(|f| *f == parsed)
                .ok_or_else(|| format!("`{fd}` is not a tracked FD of `{table}`"))?;
            fds.remove(pos);
        }
        t.set_fds(fds).map_err(|e| e.to_string())
    }
}

/// Rebuild each recovered table's secondary indexes inside the SQL
/// engine: durability covers the indexed-column *set* (WAL `IndexSet`
/// records + the snapshot's index section); the contents are derived and
/// rebuilt from the recovered rows here, without journaling anything.
fn install_recovered_indexes(
    engine: &mut Engine,
    index_sets: Vec<(String, Vec<String>)>,
) -> Result<()> {
    for (name, columns) in index_sets {
        engine.install_index_set(&name, &columns).map_err(|e| crate::PersistError::Recovery {
            message: format!("rebuilding indexes of `{name}`: {e}"),
        })?;
    }
    Ok(())
}

/// A SQL engine whose DML is journaled to a [`Database`] directory.
///
/// SELECTs run against in-memory canonical copies refreshed after each
/// mutation; mutations go journal-first through the WAL. Dropping the
/// engine without [`DurableEngine::checkpoint`] is safe — that is the
/// crash case recovery is built for.
#[derive(Debug)]
pub struct DurableEngine {
    engine: Engine,
    db: Arc<Mutex<Database>>,
}

impl DurableEngine {
    /// Open (or create) a database directory and build an engine over it,
    /// seeding the SQL catalog with every recovered table's canonical
    /// contents.
    pub fn open(dir: &Path, opts: PersistOptions) -> Result<DurableEngine> {
        DurableEngine::from_database(Database::open(dir, opts)?)
    }

    /// Build an engine over an already-recovered [`Database`] (avoids a
    /// second recovery pass when the caller opened it for inspection
    /// first).
    pub fn from_database(db: Database) -> Result<DurableEngine> {
        let mut catalog = Catalog::new();
        let mut index_sets = Vec::new();
        for (name, table) in db.iter() {
            catalog.insert(table.live().snapshot())?;
            if !table.indexed_columns().is_empty() {
                index_sets.push((name.to_string(), table.indexed_columns().to_vec()));
            }
        }
        let db = Arc::new(Mutex::new(db));
        let mut engine = Engine::with_catalog(catalog);
        engine.set_backend(Box::new(DbBackend { db: Arc::clone(&db) }));
        engine.set_fd_provider(Box::new(DbFdProvider { db: Arc::clone(&db) }));
        install_recovered_indexes(&mut engine, index_sets)?;
        Ok(DurableEngine { engine, db })
    }

    /// Open a **follower's** data directory in read-only replica mode:
    /// SELECT / `SHOW FDS` / `CHECK FD` are served from the recovered
    /// state (mid-catch-up positions included), while every
    /// CREATE/INSERT/UPDATE/DELETE is rejected with a clear
    /// [`evofd_sql::SqlError::ReadOnly`] — writes belong on the leader.
    pub fn open_replica(dir: &Path, opts: PersistOptions) -> Result<DurableEngine> {
        let db = Database::open(dir, opts)?;
        let mut catalog = Catalog::new();
        let mut index_sets = Vec::new();
        for (name, table) in db.iter() {
            catalog.insert(table.live().snapshot())?;
            if !table.indexed_columns().is_empty() {
                index_sets.push((name.to_string(), table.indexed_columns().to_vec()));
            }
        }
        let db = Arc::new(Mutex::new(db));
        let mut engine = Engine::with_catalog(catalog);
        engine.set_fd_provider(Box::new(DbFdProvider { db: Arc::clone(&db) }));
        engine.set_read_only(true);
        install_recovered_indexes(&mut engine, index_sets)?;
        Ok(DurableEngine { engine, db })
    }

    /// The shared database handle — what an in-process
    /// [`crate::replication::ChannelTransport`] ships from.
    pub fn database_handle(&self) -> Arc<Mutex<Database>> {
        Arc::clone(&self.db)
    }

    /// Import a relation as a new durable table with no tracked FDs; the
    /// SQL catalog sees it immediately. Returns `false` (and changes
    /// nothing) if a table of that name already exists.
    pub fn import_table(&mut self, rel: Relation) -> Result<bool> {
        let name = rel.name().to_string();
        {
            let mut db = self.db.lock().unwrap_or_else(|e| e.into_inner());
            if db.contains(&name) {
                return Ok(false);
            }
            db.create_table(rel.clone(), Vec::new(), ValidatorConfig::default())?;
        }
        self.engine.catalog_mut().insert_or_replace(rel);
        Ok(true)
    }

    /// Parse and execute one statement (durable for DML).
    pub fn execute(&mut self, sql: &str) -> evofd_sql::Result<QueryResult> {
        self.engine.execute(sql)
    }

    /// Execute a `;`-separated script.
    pub fn run_script(&mut self, sql: &str) -> evofd_sql::Result<Vec<QueryResult>> {
        self.engine.run_script(sql)
    }

    /// Run a SELECT and return its relation.
    pub fn query(&mut self, sql: &str) -> evofd_sql::Result<Relation> {
        self.engine.query(sql)
    }

    /// Run a single-value SELECT.
    pub fn query_scalar(&mut self, sql: &str) -> evofd_sql::Result<Value> {
        self.engine.query_scalar(sql)
    }

    /// The wrapped SQL engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the wrapped SQL engine — the multi-session
    /// server swaps per-connection [`evofd_sql::SessionSettings`] and the
    /// read-only flag in around each statement.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Run `f` with the underlying database (recovery reports, WAL sizes,
    /// direct [`crate::DurableRelation`] access).
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.db.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Run `f` with mutable database access (e.g. drift subscriptions).
    pub fn with_database_mut<R>(&mut self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Snapshot every table and reset its WAL — a clean shutdown.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.with_database_mut(Database::checkpoint_all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("evofd_persist_engine_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sql_mutations_survive_reopen() {
        let dir = tmpdir("sql_reopen");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.run_script(
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'x'), (3, 'y');
             UPDATE t SET b = 'z' WHERE a = 2;
             DELETE FROM t WHERE a = 1;",
        )
        .unwrap();
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(2));
        drop(e); // kill without checkpoint

        let mut r = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(2));
        let rel = r.query("SELECT a, b FROM t ORDER BY a").unwrap();
        assert_eq!(rel.row(0), vec![Value::Int(2), Value::str("z")]);
        assert_eq!(rel.row(1), vec![Value::Int(3), Value::str("y")]);
        // And the database keeps accepting durable traffic.
        r.execute("INSERT INTO t VALUES (9, 'w')").unwrap();
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(3));
    }

    #[test]
    fn failed_statement_rolls_back_durably() {
        let dir = tmpdir("sql_rollback");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.run_script("CREATE TABLE t (a INT NOT NULL); INSERT INTO t VALUES (1);").unwrap();
        // NOT NULL violation: journaled, fails, rolled back.
        assert!(e.execute("INSERT INTO t VALUES (NULL)").is_err());
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(1));
        drop(e);
        let mut r = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(1));
        r.with_database(|db| {
            assert_eq!(db.get("t").unwrap().recovery().rolled_back, 1);
        });
    }

    #[test]
    fn checkpoint_resets_wals() {
        let dir = tmpdir("sql_ckpt");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.run_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2);").unwrap();
        e.checkpoint().unwrap();
        e.with_database(|db| {
            assert_eq!(db.get("t").unwrap().wal_bytes(), crate::wal::WAL_HEADER_LEN);
        });
        drop(e);
        let r = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        r.with_database(|db| assert_eq!(db.get("t").unwrap().recovery().replayed, 0));
    }

    #[test]
    fn replica_mode_serves_reads_and_rejects_dml() {
        use evofd_core::Fd;
        use evofd_storage::relation_of_strs;

        let dir = tmpdir("replica_mode");
        // Build leader state: a table with one tracked (and violated) FD.
        {
            let rel = relation_of_strs("t", &["X", "Y"], &[&["a", "1"], &["a", "2"], &["b", "3"]])
                .unwrap();
            let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
            let mut db = crate::Database::open(&dir, PersistOptions::default()).unwrap();
            db.create_table(rel, fds, evofd_incremental::ValidatorConfig::default()).unwrap();
        }

        let mut r = DurableEngine::open_replica(&dir, PersistOptions::default()).unwrap();
        assert!(r.engine().is_read_only());
        // Reads work (this is a mid-catch-up position as far as SQL cares).
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(3));
        // SHOW FDS reports the tracked FD with maintained measures.
        let fds = r.query("SHOW FDS").unwrap();
        assert_eq!(fds.row_count(), 1);
        assert_eq!(fds.row(0)[0], Value::str("t"));
        assert_eq!(fds.row(0)[4], Value::Int(2), "two rows in the violating X group");
        // CHECK FD computes on demand.
        let check = r.query("CHECK FD 'Y -> X' ON t").unwrap();
        assert_eq!(check.row(0)[3], Value::Bool(true));
        // Every write is rejected with the replica error.
        for sql in [
            "INSERT INTO t VALUES ('z', '9')",
            "DELETE FROM t",
            "UPDATE t SET Y = '0'",
            "CREATE TABLE u (a INT)",
        ] {
            let err = r.execute(sql).unwrap_err();
            assert!(matches!(err, evofd_sql::SqlError::ReadOnly { .. }), "{sql}: {err:?}");
        }
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(3));
    }

    #[test]
    fn leader_engine_show_fds_tracks_drift() {
        use evofd_core::Fd;
        use evofd_storage::relation_of_strs;

        let dir = tmpdir("leader_show_fds");
        let rel = relation_of_strs("t", &["X", "Y"], &[&["a", "1"]]).unwrap();
        let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
        let mut db = crate::Database::open(&dir, PersistOptions::default()).unwrap();
        db.create_table(rel, fds, evofd_incremental::ValidatorConfig::default()).unwrap();
        let mut e = DurableEngine::from_database(db).unwrap();
        let before = e.query("SHOW FDS FOR t").unwrap();
        assert_eq!(before.row(0)[4], Value::Int(0));
        // A conflicting durable insert drifts the FD; SHOW FDS sees it.
        e.execute("INSERT INTO t VALUES ('a', '2')").unwrap();
        let after = e.query("SHOW FDS FOR t").unwrap();
        assert_eq!(after.row(0)[4], Value::Int(2));
    }

    #[test]
    fn fd_ddl_suggest_and_accept_flow() {
        use evofd_storage::relation_of_strs;

        let dir = tmpdir("fd_ddl_flow");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        let rel = relation_of_strs(
            "t",
            &["X", "Y", "Z"],
            &[&["a", "1", "p"], &["a", "2", "q"], &["b", "3", "r"]],
        )
        .unwrap();
        e.import_table(rel).unwrap();

        // Declare a tracked FD over the durable table via DDL.
        let QueryResult::AlteredFds { tracked, added, .. } =
            e.execute("ALTER TABLE t ADD CONSTRAINT FD 'X -> Y'").unwrap()
        else {
            panic!("expected AlteredFds")
        };
        assert!(added);
        assert_eq!(tracked, 1);
        // Duplicate ADD and bogus DROP are clean errors.
        assert!(e.execute("ALTER TABLE t ADD CONSTRAINT FD 'X -> Y'").is_err());
        assert!(e.execute("ALTER TABLE t DROP CONSTRAINT FD 'Z -> X'").is_err());

        // SHOW FDS carries the advisor status columns — computed
        // transiently: no standing advisor session is attached by a read.
        let fds = e.query("SHOW FDS FOR t").unwrap();
        e.with_database(|db| {
            assert!(db.get("t").unwrap().advisor().is_none(), "SHOW FDS is side-effect free");
        });
        assert_eq!(fds.row_count(), 1);
        assert_eq!(fds.row(0)[5], Value::str("violated"));
        let g3 = fds.row(0)[6].as_f64().unwrap();
        assert!((g3 - 1.0 / 3.0).abs() < 1e-12, "delete one of three rows: {g3}");
        let pending = fds.row(0)[7].clone();
        assert!(matches!(pending, Value::Int(n) if n >= 1), "proposals pending: {pending:?}");

        // SUGGEST REPAIRS lists the ranked proposals (and materializes
        // the maintained session).
        let proposals = e.query("SUGGEST REPAIRS FOR t").unwrap();
        e.with_database(|db| {
            assert!(db.get("t").unwrap().advisor().is_some(), "SUGGEST materializes");
        });
        assert!(proposals.row_count() >= 1);
        assert_eq!(proposals.row(0)[2], Value::Int(1), "rank 1 first");
        assert_eq!(proposals.row(0)[3], Value::str("[X, Z] -> [Y]"));

        // ACCEPT REPAIR journals the decision and REPLACES the original
        // FD with the evolved one in the tracked set.
        let QueryResult::RepairAccepted { original, evolved, .. } =
            e.execute("ACCEPT REPAIR 1 FOR 'X -> Y' ON t").unwrap()
        else {
            panic!("expected RepairAccepted")
        };
        assert_eq!(original, "[X] -> [Y]");
        assert_eq!(evolved, "[X, Z] -> [Y]");
        let fds = e.query("SHOW FDS FOR t").unwrap();
        assert_eq!(fds.row_count(), 1, "the evolved FD took the original's slot");
        assert_eq!(fds.row(0)[1], Value::str("[X, Z] -> [Y]"));
        assert_eq!(fds.row(0)[5], Value::str("satisfied"), "the evolved FD holds");
        assert_eq!(fds.row(0)[7], Value::Int(0), "no proposals pending after the decision");
        // Accepting again (the original is gone) or an untracked FD
        // errors cleanly.
        assert!(e.execute("ACCEPT REPAIR 1 FOR 'X -> Y' ON t").is_err());
        assert!(e.execute("ACCEPT REPAIR 1 FOR 'Y -> Z' ON t").is_err());

        // The replacement survives a kill/reopen.
        drop(e);
        let mut r = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        let fds = r.query("SHOW FDS FOR t").unwrap();
        assert_eq!(fds.row_count(), 1);
        assert_eq!(fds.row(0)[1], Value::str("[X, Z] -> [Y]"));
        assert_eq!(fds.row(0)[5], Value::str("satisfied"));
        // DROP CONSTRAINT retires the evolved FD.
        assert!(r.execute("ALTER TABLE t DROP CONSTRAINT FD 'X -> Y'").is_err(), "replaced");
        let QueryResult::AlteredFds { tracked, .. } =
            r.execute("ALTER TABLE t DROP CONSTRAINT FD 'X, Z -> Y'").unwrap()
        else {
            panic!()
        };
        assert_eq!(tracked, 0);
        assert_eq!(r.query("SHOW FDS FOR t").unwrap().row_count(), 0);
    }

    #[test]
    fn replica_serves_suggest_but_rejects_fd_ddl() {
        use evofd_core::Fd;
        use evofd_storage::relation_of_strs;

        let dir = tmpdir("replica_suggest");
        {
            let rel =
                relation_of_strs("t", &["X", "Y", "Z"], &[&["a", "1", "p"], &["a", "2", "q"]])
                    .unwrap();
            let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
            let mut db = crate::Database::open(&dir, PersistOptions::default()).unwrap();
            db.create_table(rel, fds, evofd_incremental::ValidatorConfig::default()).unwrap();
        }
        let mut r = DurableEngine::open_replica(&dir, PersistOptions::default()).unwrap();
        // SUGGEST is a read: it works on the replica.
        let proposals = r.query("SUGGEST REPAIRS FOR t").unwrap();
        assert_eq!(proposals.row_count(), 1, "Z repairs X -> Y");
        // The write-shaped advisor statements are rejected read-only.
        for sql in ["ALTER TABLE t ADD CONSTRAINT FD 'Z -> Y'", "ACCEPT REPAIR 1 FOR 'X -> Y' ON t"]
        {
            let err = r.execute(sql).unwrap_err();
            assert!(matches!(err, evofd_sql::SqlError::ReadOnly { .. }), "{sql}: {err:?}");
        }
    }

    #[test]
    fn indexes_survive_reopen_and_checkpoint() {
        let dir = tmpdir("sql_indexes");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.run_script(
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'x'), (3, 'y');
             CREATE INDEX ON t (b);",
        )
        .unwrap();
        e.with_database(|db| {
            assert_eq!(db.get("t").unwrap().indexed_columns(), ["b".to_string()]);
        });
        // Kill without checkpoint: the IndexSet WAL record restores the
        // set and the engine rebuilds the index contents from the rows.
        drop(e);
        let mut r = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.engine().indexed_columns("t"), vec!["b".to_string()]);
        let plan = r.query("EXPLAIN SELECT a FROM t WHERE b = 'x'").unwrap();
        let rendered: Vec<String> = (0..plan.row_count())
            .map(|i| format!("{} {}", plan.row(i)[0], plan.row(i)[1]))
            .collect();
        assert!(
            rendered.iter().any(|l| l.contains("IndexProbe")),
            "recovered index should plan a probe: {rendered:?}"
        );
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t WHERE b = 'x'").unwrap(), Value::Int(2));
        // The index keeps following durable DML after recovery.
        r.execute("INSERT INTO t VALUES (4, 'x')").unwrap();
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t WHERE b = 'x'").unwrap(), Value::Int(3));
        // Checkpoint folds the set into the snapshot (index section);
        // reopen replays nothing and still probes.
        r.checkpoint().unwrap();
        drop(r);
        let mut c = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        c.with_database(|db| assert_eq!(db.get("t").unwrap().recovery().replayed, 0));
        assert_eq!(c.engine().indexed_columns("t"), vec!["b".to_string()]);
        // DROP INDEX journals the (now empty) set durably too.
        c.execute("DROP INDEX ON t (b)").unwrap();
        drop(c);
        let d = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        assert!(d.engine().indexed_columns("t").is_empty());
    }

    #[test]
    fn exact_tracked_fds_drive_planner_rewrites_until_drift() {
        let dir = tmpdir("fd_rewrites");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.run_script(
            "CREATE TABLE t (zip TEXT, city TEXT);
             INSERT INTO t VALUES ('10', 'a'), ('10', 'a'), ('20', 'b');",
        )
        .unwrap();
        e.execute("ALTER TABLE t ADD CONSTRAINT FD 'zip -> city'").unwrap();
        let explain = |e: &mut DurableEngine| {
            let plan =
                e.query("EXPLAIN SELECT zip, city, COUNT(*) FROM t GROUP BY zip, city").unwrap();
            (0..plan.row_count())
                .map(|i| format!("{} {}", plan.row(i)[0], plan.row(i)[1]))
                .collect::<Vec<_>>()
        };
        // The validator reports zip -> city exact: the planner collapses
        // the GROUP BY onto zip alone.
        let before = explain(&mut e);
        assert!(
            before.iter().any(|l| l.contains("Rewrite[group-collapse]")),
            "exact FD should collapse the grouping: {before:?}"
        );
        // One conflicting durable insert drifts the FD; the rewrite
        // deactivates on the very next statement.
        e.execute("INSERT INTO t VALUES ('10', 'z')").unwrap();
        let after = explain(&mut e);
        assert!(
            !after.iter().any(|l| l.contains("Rewrite")),
            "drifted FD must not rewrite: {after:?}"
        );
    }

    #[test]
    fn replica_recovers_indexes_read_only() {
        let dir = tmpdir("replica_indexes");
        {
            let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
            e.run_script(
                "CREATE TABLE t (a INT, b TEXT);
                 INSERT INTO t VALUES (1, 'x'), (2, 'y');
                 CREATE INDEX ON t (b);",
            )
            .unwrap();
        }
        let mut r = DurableEngine::open_replica(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.engine().indexed_columns("t"), vec!["b".to_string()]);
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t WHERE b = 'x'").unwrap(), Value::Int(1));
        // Index DDL is a write: rejected on the replica.
        let err = r.execute("CREATE INDEX ON t (a)").unwrap_err();
        assert!(matches!(err, evofd_sql::SqlError::ReadOnly { .. }), "{err:?}");
    }

    #[test]
    fn alert_ddl_show_alerts_and_drift_history_flow() {
        let dir = tmpdir("alert_flow");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.run_script(
            "CREATE TABLE t (zip TEXT, city TEXT);
             INSERT INTO t VALUES ('10', 'a'), ('20', 'b');",
        )
        .unwrap();
        e.execute("ALTER TABLE t ADD CONSTRAINT FD 'zip -> city'").unwrap();
        // Install an alert rule via DDL; the FD text is canonicalised.
        let QueryResult::AlertsChanged { installed, rules, .. } =
            e.execute("ALERT ON t FD 'zip -> city' WHEN confidence < 0.99 FOR 1 EPOCHS").unwrap()
        else {
            panic!("expected AlertsChanged")
        };
        assert!(installed);
        assert_eq!(rules, 1);
        // A rule on an FD that does not parse is rejected before journaling.
        assert!(e.execute("ALERT ON t FD 'nope -> city' WHEN g3 > 0.5").is_err());

        let alerts = e.query("SHOW ALERTS FOR t").unwrap();
        assert_eq!(alerts.row_count(), 1);
        assert_eq!(alerts.row(0)[2], Value::str("[zip] -> [city]"));
        assert_eq!(alerts.row(0)[3], Value::Bool(false), "not firing yet");

        // Drift the FD: the conflicting insert fires the alert and lands
        // in the durable drift history with its WAL seq.
        e.execute("INSERT INTO t VALUES ('10', 'z')").unwrap();
        let alerts = e.query("SHOW ALERTS").unwrap();
        assert_eq!(alerts.row(0)[3], Value::Bool(true), "firing after drift");
        assert_eq!(alerts.row(0)[5], Value::Int(1), "fired once");

        let drift = e.query("SHOW DRIFT HISTORY FOR t FD 'zip -> city'").unwrap();
        assert!(drift.row_count() >= 1, "drift event retained");
        assert_eq!(drift.row(0)[3], Value::str("violated"));
        let seq = drift.row(0)[1].clone();
        assert!(matches!(seq, Value::Int(n) if n > 0), "WAL seq recorded: {seq:?}");
        // SINCE EPOCH past the event filters it out.
        let later = e.query("SHOW DRIFT HISTORY FOR t SINCE EPOCH 100").unwrap();
        assert_eq!(later.row_count(), 0);

        // The rule set and runtime survive a kill/reopen.
        drop(e);
        let mut r = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        let alerts = r.query("SHOW ALERTS FOR t").unwrap();
        assert_eq!(alerts.row_count(), 1);
        assert_eq!(alerts.row(0)[3], Value::Bool(true), "still firing after recovery");
        let drift = r.query("SHOW DRIFT HISTORY FOR t").unwrap();
        assert!(drift.row_count() >= 1, "history survives reopen");

        // DROP ALERT retires the rule durably; dropping again errors.
        let QueryResult::AlertsChanged { installed, rules, .. } =
            r.execute("DROP ALERT ON t FD 'zip -> city'").unwrap()
        else {
            panic!("expected AlertsChanged")
        };
        assert!(!installed);
        assert_eq!(rules, 0);
        assert!(r.execute("DROP ALERT ON t FD 'zip -> city'").is_err());
        drop(r);
        let mut f = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(f.query("SHOW ALERTS").unwrap().row_count(), 0);
    }

    #[test]
    fn replica_serves_alert_reads_and_rejects_alert_ddl() {
        let dir = tmpdir("replica_alerts");
        {
            let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
            e.run_script(
                "CREATE TABLE t (zip TEXT, city TEXT);
                 INSERT INTO t VALUES ('10', 'a');",
            )
            .unwrap();
            e.execute("ALTER TABLE t ADD CONSTRAINT FD 'zip -> city'").unwrap();
            e.execute("ALERT ON t FD 'zip -> city' WHEN confidence < 0.5").unwrap();
        }
        let mut r = DurableEngine::open_replica(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.query("SHOW ALERTS FOR t").unwrap().row_count(), 1);
        assert_eq!(r.query("SHOW DRIFT HISTORY FOR t").unwrap().row_count(), 0);
        for sql in ["ALERT ON t FD 'zip -> city' WHEN g3 > 0.5", "DROP ALERT ON t FD 'zip -> city'"]
        {
            let err = r.execute(sql).unwrap_err();
            assert!(matches!(err, evofd_sql::SqlError::ReadOnly { .. }), "{sql}: {err:?}");
        }
    }

    #[test]
    fn set_statement_reaches_the_database() {
        let dir = tmpdir("sql_set");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.execute("CREATE TABLE t (a INT)").unwrap();
        e.execute("SET compact_threshold = 0.75").unwrap();
        e.with_database(|db| {
            assert!((db.get("t").unwrap().live().compact_threshold() - 0.75).abs() < 1e-12);
        });
    }
}
