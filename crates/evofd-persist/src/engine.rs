//! [`DurableEngine`]: the SQL engine over a durable [`Database`] — every
//! INSERT/DELETE/UPDATE becomes a write-ahead transaction.
//!
//! The wiring uses `evofd-sql`'s [`StorageBackend`] hook: the engine
//! lowers each DML statement to a value-level change batch (appended
//! tuples + deleted canonical row indices) and this module's backend
//! translates canonical indices to the durable live relation's physical
//! ids and journals the delta **before** applying it; the engine then
//! mirrors the same batch onto its catalog copy through the ordinary
//! in-memory paths, so SELECT serving needs no re-materialisation and
//! durable mutation stays O(changed rows). A failed delta leaves a
//! rollback record in the WAL and the engine's catalog untouched —
//! exactly the in-memory engine's restore-on-error behaviour, made
//! durable.

use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use evofd_incremental::{Delta, ValidatorConfig};
use evofd_sql::{Engine, FdInfoProvider, FdInfoRow, QueryResult, StorageBackend};
use evofd_storage::{Catalog, Relation, Schema, Value};

use crate::error::Result;
use crate::store::{Database, PersistOptions};

/// The [`StorageBackend`] implementation over a shared [`Database`].
#[derive(Debug, Clone)]
struct DbBackend {
    db: Arc<Mutex<Database>>,
}

impl DbBackend {
    fn lock(&self) -> MutexGuard<'_, Database> {
        self.db.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl StorageBackend for DbBackend {
    fn create_table(&mut self, schema: Arc<Schema>) -> std::result::Result<(), String> {
        self.lock()
            .create_table(Relation::empty(schema), Vec::new(), ValidatorConfig::default())
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn apply_mutation(
        &mut self,
        table: &str,
        inserts: Vec<Vec<Value>>,
        deletes: Vec<usize>,
    ) -> std::result::Result<(), String> {
        let mut db = self.lock();
        let durable = db.get_mut(table).map_err(|e| e.to_string())?;
        // Canonical row k (the engine's view: live rows in physical order)
        // → the k-th live physical id.
        let physical: Vec<usize> = durable.live().live_rows().collect();
        let mut translated = Vec::with_capacity(deletes.len());
        for k in deletes {
            let id = physical
                .get(k)
                .copied()
                .ok_or_else(|| format!("canonical row {k} out of range"))?;
            translated.push(id);
        }
        let delta = Delta { inserts, deletes: translated };
        durable.apply(&delta).map_err(|e| e.to_string())?;
        Ok(())
    }

    fn set_compact_threshold(&mut self, threshold: f64) {
        self.lock().set_compact_threshold(threshold);
    }
}

/// The [`FdInfoProvider`] behind `SHOW FDS`: reads the tracked FDs and
/// their delta-maintained measures straight off the database's
/// incremental validators.
#[derive(Debug, Clone)]
struct DbFdProvider {
    db: Arc<Mutex<Database>>,
}

impl FdInfoProvider for DbFdProvider {
    fn fd_rows(&self, table: Option<&str>) -> std::result::Result<Vec<FdInfoRow>, String> {
        let db = self.db.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows = Vec::new();
        for (name, t) in db.iter() {
            if table.is_some_and(|want| want != name) {
                continue;
            }
            let v = t.validator();
            for (i, fd) in v.fds().iter().enumerate() {
                let m = v.measures(i);
                rows.push(FdInfoRow {
                    table: name.to_string(),
                    fd: fd.display(t.live().schema()),
                    confidence: m.confidence,
                    goodness: m.goodness,
                    violating_rows: v.summary(i).violating_rows,
                });
            }
        }
        Ok(rows)
    }
}

/// A SQL engine whose DML is journaled to a [`Database`] directory.
///
/// SELECTs run against in-memory canonical copies refreshed after each
/// mutation; mutations go journal-first through the WAL. Dropping the
/// engine without [`DurableEngine::checkpoint`] is safe — that is the
/// crash case recovery is built for.
#[derive(Debug)]
pub struct DurableEngine {
    engine: Engine,
    db: Arc<Mutex<Database>>,
}

impl DurableEngine {
    /// Open (or create) a database directory and build an engine over it,
    /// seeding the SQL catalog with every recovered table's canonical
    /// contents.
    pub fn open(dir: &Path, opts: PersistOptions) -> Result<DurableEngine> {
        DurableEngine::from_database(Database::open(dir, opts)?)
    }

    /// Build an engine over an already-recovered [`Database`] (avoids a
    /// second recovery pass when the caller opened it for inspection
    /// first).
    pub fn from_database(db: Database) -> Result<DurableEngine> {
        let mut catalog = Catalog::new();
        for (_, table) in db.iter() {
            catalog.insert(table.live().snapshot())?;
        }
        let db = Arc::new(Mutex::new(db));
        let mut engine = Engine::with_catalog(catalog);
        engine.set_backend(Box::new(DbBackend { db: Arc::clone(&db) }));
        engine.set_fd_provider(Box::new(DbFdProvider { db: Arc::clone(&db) }));
        Ok(DurableEngine { engine, db })
    }

    /// Open a **follower's** data directory in read-only replica mode:
    /// SELECT / `SHOW FDS` / `CHECK FD` are served from the recovered
    /// state (mid-catch-up positions included), while every
    /// CREATE/INSERT/UPDATE/DELETE is rejected with a clear
    /// [`evofd_sql::SqlError::ReadOnly`] — writes belong on the leader.
    pub fn open_replica(dir: &Path, opts: PersistOptions) -> Result<DurableEngine> {
        let db = Database::open(dir, opts)?;
        let mut catalog = Catalog::new();
        for (_, table) in db.iter() {
            catalog.insert(table.live().snapshot())?;
        }
        let db = Arc::new(Mutex::new(db));
        let mut engine = Engine::with_catalog(catalog);
        engine.set_fd_provider(Box::new(DbFdProvider { db: Arc::clone(&db) }));
        engine.set_read_only(true);
        Ok(DurableEngine { engine, db })
    }

    /// The shared database handle — what an in-process
    /// [`crate::replication::ChannelTransport`] ships from.
    pub fn database_handle(&self) -> Arc<Mutex<Database>> {
        Arc::clone(&self.db)
    }

    /// Import a relation as a new durable table with no tracked FDs; the
    /// SQL catalog sees it immediately. Returns `false` (and changes
    /// nothing) if a table of that name already exists.
    pub fn import_table(&mut self, rel: Relation) -> Result<bool> {
        let name = rel.name().to_string();
        {
            let mut db = self.db.lock().unwrap_or_else(|e| e.into_inner());
            if db.contains(&name) {
                return Ok(false);
            }
            db.create_table(rel.clone(), Vec::new(), ValidatorConfig::default())?;
        }
        self.engine.catalog_mut().insert_or_replace(rel);
        Ok(true)
    }

    /// Parse and execute one statement (durable for DML).
    pub fn execute(&mut self, sql: &str) -> evofd_sql::Result<QueryResult> {
        self.engine.execute(sql)
    }

    /// Execute a `;`-separated script.
    pub fn run_script(&mut self, sql: &str) -> evofd_sql::Result<Vec<QueryResult>> {
        self.engine.run_script(sql)
    }

    /// Run a SELECT and return its relation.
    pub fn query(&mut self, sql: &str) -> evofd_sql::Result<Relation> {
        self.engine.query(sql)
    }

    /// Run a single-value SELECT.
    pub fn query_scalar(&mut self, sql: &str) -> evofd_sql::Result<Value> {
        self.engine.query_scalar(sql)
    }

    /// The wrapped SQL engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Run `f` with the underlying database (recovery reports, WAL sizes,
    /// direct [`crate::DurableRelation`] access).
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.db.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Run `f` with mutable database access (e.g. drift subscriptions).
    pub fn with_database_mut<R>(&mut self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Snapshot every table and reset its WAL — a clean shutdown.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.with_database_mut(Database::checkpoint_all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("evofd_persist_engine_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sql_mutations_survive_reopen() {
        let dir = tmpdir("sql_reopen");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.run_script(
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'x'), (3, 'y');
             UPDATE t SET b = 'z' WHERE a = 2;
             DELETE FROM t WHERE a = 1;",
        )
        .unwrap();
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(2));
        drop(e); // kill without checkpoint

        let mut r = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(2));
        let rel = r.query("SELECT a, b FROM t ORDER BY a").unwrap();
        assert_eq!(rel.row(0), vec![Value::Int(2), Value::str("z")]);
        assert_eq!(rel.row(1), vec![Value::Int(3), Value::str("y")]);
        // And the database keeps accepting durable traffic.
        r.execute("INSERT INTO t VALUES (9, 'w')").unwrap();
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(3));
    }

    #[test]
    fn failed_statement_rolls_back_durably() {
        let dir = tmpdir("sql_rollback");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.run_script("CREATE TABLE t (a INT NOT NULL); INSERT INTO t VALUES (1);").unwrap();
        // NOT NULL violation: journaled, fails, rolled back.
        assert!(e.execute("INSERT INTO t VALUES (NULL)").is_err());
        assert_eq!(e.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(1));
        drop(e);
        let mut r = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(1));
        r.with_database(|db| {
            assert_eq!(db.get("t").unwrap().recovery().rolled_back, 1);
        });
    }

    #[test]
    fn checkpoint_resets_wals() {
        let dir = tmpdir("sql_ckpt");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.run_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2);").unwrap();
        e.checkpoint().unwrap();
        e.with_database(|db| {
            assert_eq!(db.get("t").unwrap().wal_bytes(), crate::wal::WAL_HEADER_LEN);
        });
        drop(e);
        let r = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        r.with_database(|db| assert_eq!(db.get("t").unwrap().recovery().replayed, 0));
    }

    #[test]
    fn replica_mode_serves_reads_and_rejects_dml() {
        use evofd_core::Fd;
        use evofd_storage::relation_of_strs;

        let dir = tmpdir("replica_mode");
        // Build leader state: a table with one tracked (and violated) FD.
        {
            let rel = relation_of_strs("t", &["X", "Y"], &[&["a", "1"], &["a", "2"], &["b", "3"]])
                .unwrap();
            let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
            let mut db = crate::Database::open(&dir, PersistOptions::default()).unwrap();
            db.create_table(rel, fds, evofd_incremental::ValidatorConfig::default()).unwrap();
        }

        let mut r = DurableEngine::open_replica(&dir, PersistOptions::default()).unwrap();
        assert!(r.engine().is_read_only());
        // Reads work (this is a mid-catch-up position as far as SQL cares).
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(3));
        // SHOW FDS reports the tracked FD with maintained measures.
        let fds = r.query("SHOW FDS").unwrap();
        assert_eq!(fds.row_count(), 1);
        assert_eq!(fds.row(0)[0], Value::str("t"));
        assert_eq!(fds.row(0)[4], Value::Int(2), "two rows in the violating X group");
        // CHECK FD computes on demand.
        let check = r.query("CHECK FD 'Y -> X' ON t").unwrap();
        assert_eq!(check.row(0)[3], Value::Bool(true));
        // Every write is rejected with the replica error.
        for sql in [
            "INSERT INTO t VALUES ('z', '9')",
            "DELETE FROM t",
            "UPDATE t SET Y = '0'",
            "CREATE TABLE u (a INT)",
        ] {
            let err = r.execute(sql).unwrap_err();
            assert!(matches!(err, evofd_sql::SqlError::ReadOnly { .. }), "{sql}: {err:?}");
        }
        assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(3));
    }

    #[test]
    fn leader_engine_show_fds_tracks_drift() {
        use evofd_core::Fd;
        use evofd_storage::relation_of_strs;

        let dir = tmpdir("leader_show_fds");
        let rel = relation_of_strs("t", &["X", "Y"], &[&["a", "1"]]).unwrap();
        let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
        let mut db = crate::Database::open(&dir, PersistOptions::default()).unwrap();
        db.create_table(rel, fds, evofd_incremental::ValidatorConfig::default()).unwrap();
        let mut e = DurableEngine::from_database(db).unwrap();
        let before = e.query("SHOW FDS FOR t").unwrap();
        assert_eq!(before.row(0)[4], Value::Int(0));
        // A conflicting durable insert drifts the FD; SHOW FDS sees it.
        e.execute("INSERT INTO t VALUES ('a', '2')").unwrap();
        let after = e.query("SHOW FDS FOR t").unwrap();
        assert_eq!(after.row(0)[4], Value::Int(2));
    }

    #[test]
    fn set_statement_reaches_the_database() {
        let dir = tmpdir("sql_set");
        let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
        e.execute("CREATE TABLE t (a INT)").unwrap();
        e.execute("SET compact_threshold = 0.75").unwrap();
        e.with_database(|db| {
            assert!((db.get("t").unwrap().live().compact_threshold() - 0.75).abs() < 1e-12);
        });
    }
}
