//! The delta write-ahead log.
//!
//! ## On-disk layout
//!
//! ```text
//! header:  [ magic "EVFDWAL1" (8) ][ version u32 LE (4) ]
//! record:  [ len u32 LE (4) ][ crc32(payload) u32 LE (4) ][ payload (len) ]
//! ```
//!
//! Records repeat until EOF. The **payload** starts with a one-byte record
//! kind followed by kind-specific fields (see [`WalRecord`]); every record
//! carries a monotone sequence number `seq`, and delta records additionally
//! carry `epoch_after` — the [`evofd_incremental::LiveRelation`] epoch the
//! relation holds once the delta is applied, aligning WAL positions 1:1
//! with live-relation epochs.
//!
//! ## Torn tails
//!
//! A crash mid-write leaves a partial frame at the end: a short header, a
//! payload shorter than `len`, or a checksum mismatch. Recovery
//! ([`recover_wal`]) treats all three as the end of the log, truncates the
//! file back to the last whole valid record and replays only the surviving
//! prefix — prefix consistency, never partial application. A bad frame
//! *followed by valid data* is indistinguishable from a torn tail at scan
//! time; truncation is still safe because every commit is sequenced and
//! the snapshot seq gates replay.
//!
//! ## Group commit
//!
//! [`WalWriter`] buffers encoded frames and lets [`SyncPolicy`] decide
//! when to `fsync`: every commit (full durability), every N commits
//! (bounded loss, much higher throughput), or never (OS-buffered, for
//! bulk loads and benchmarks). Buffered frames are always *written* to the
//! file on append — only the `fsync` is deferred — so a clean process exit
//! loses nothing under any policy.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use evofd_incremental::{DecisionAction, DecisionRecord};
use evofd_storage::Value;

use crate::codec::{Decoder, Encoder};
use crate::crc32::crc32;
use crate::error::{io_err, PersistError, Result};

/// WAL file magic.
pub const WAL_MAGIC: [u8; 8] = *b"EVFDWAL1";
/// WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Header bytes: magic + version.
pub const WAL_HEADER_LEN: u64 = 12;
/// Frame overhead: length + checksum.
const FRAME_HEADER_LEN: usize = 8;
/// Sanity bound on a single record payload (64 MiB).
const MAX_RECORD_LEN: u32 = 64 << 20;

const KIND_DELTA: u8 = 1;
const KIND_ROLLBACK: u8 = 2;
const KIND_COMPACT: u8 = 3;
const KIND_CURSOR: u8 = 4;
const KIND_FDSET: u8 = 5;
const KIND_DECISION: u8 = 6;
const KIND_INDEXSET: u8 = 7;
const KIND_ALERTSET: u8 = 8;

const ACTION_ACCEPT: u8 = 0;
const ACTION_KEEP: u8 = 1;
const ACTION_DROP: u8 = 2;

/// Encode one advisor decision (shared with the snapshot format).
pub(crate) fn encode_decision(e: &mut Encoder, record: &DecisionRecord) {
    e.str(&record.fd);
    match &record.action {
        DecisionAction::Accept { proposal, evolved } => {
            e.u8(ACTION_ACCEPT);
            e.u32(*proposal);
            e.str(evolved);
        }
        DecisionAction::Keep => e.u8(ACTION_KEEP),
        DecisionAction::Drop => e.u8(ACTION_DROP),
    }
}

/// Decode one advisor decision. `None` on a malformed action tag or a
/// truncated buffer.
pub(crate) fn decode_decision(d: &mut Decoder) -> Option<DecisionRecord> {
    let fd = d.str("decision fd").ok()?;
    let action = match d.u8("decision action").ok()? {
        ACTION_ACCEPT => DecisionAction::Accept {
            proposal: d.u32("proposal").ok()?,
            evolved: d.str("evolved fd").ok()?,
        },
        ACTION_KEEP => DecisionAction::Keep,
        ACTION_DROP => DecisionAction::Drop,
        _ => return None,
    };
    Some(DecisionRecord { fd, action })
}

/// One durable log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed [`evofd_incremental::Delta`] batch.
    Delta {
        /// Monotone record sequence number.
        seq: u64,
        /// The live relation's epoch after applying this delta.
        epoch_after: u64,
        /// A stream-cursor update committed **atomically** with the delta
        /// (see [`WalRecord::Cursor`]); `None` leaves the cursor alone.
        cursor: Option<u64>,
        /// Appended tuples.
        inserts: Vec<Vec<Value>>,
        /// Tombstoned physical row ids (valid for the layout at this
        /// epoch).
        deletes: Vec<u64>,
    },
    /// A previously journaled delta failed to apply (the in-memory engine
    /// rejected it atomically); replay must skip `target_seq`.
    Rollback {
        /// Monotone record sequence number.
        seq: u64,
        /// The sequence number of the delta being cancelled.
        target_seq: u64,
    },
    /// The live relation compacted (tombstones rewritten away, physical
    /// ids and dictionary codes reassigned deterministically); replay must
    /// compact at exactly this point.
    Compact {
        /// Monotone record sequence number.
        seq: u64,
        /// The live relation's epoch after compaction.
        epoch_after: u64,
    },
    /// An application-defined stream position (e.g. how many records of a
    /// `watch` delta stream have been consumed), so a restarted consumer
    /// can resume mid-stream.
    Cursor {
        /// Monotone record sequence number.
        seq: u64,
        /// The cursor value.
        value: u64,
    },
    /// The tracked-FD set changed (`ALTER TABLE … CONSTRAINT FD`): the
    /// **full** new set, rendered against the table schema. Replay
    /// rebuilds the incremental validator (and advisor) with it; advisor
    /// decisions for FDs no longer in the set are retired.
    FdSet {
        /// Monotone record sequence number.
        seq: u64,
        /// The complete tracked-FD set after the change, rendered.
        fds: Vec<String>,
    },
    /// A designer decision of the live advisor session (accept / keep /
    /// drop), journaled so recovery and replicas restore the session.
    Decision {
        /// Monotone record sequence number.
        seq: u64,
        /// The decision.
        record: DecisionRecord,
    },
    /// The secondary-index column set changed (`CREATE INDEX` /
    /// `DROP INDEX`): the **full** new set of indexed column names.
    /// Replay rebuilds the indexes from the table's own rows — like
    /// [`WalRecord::FdSet`], only the set is journaled, never the index
    /// contents.
    IndexSet {
        /// Monotone record sequence number.
        seq: u64,
        /// The complete indexed-column set after the change.
        columns: Vec<String>,
    },
    /// The alert-rule set changed (`ALERT ON …`): the **full** new set in
    /// canonical rule text. Like [`WalRecord::FdSet`], only the rule set
    /// is journaled; runtime state (consecutive-epoch counters, firing
    /// flags) lives in the snapshot and is re-derived on replay.
    AlertSet {
        /// Monotone record sequence number.
        seq: u64,
        /// The complete alert-rule set after the change, in canonical text.
        rules: Vec<String>,
    },
}

impl WalRecord {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Delta { seq, .. }
            | WalRecord::Rollback { seq, .. }
            | WalRecord::Compact { seq, .. }
            | WalRecord::Cursor { seq, .. }
            | WalRecord::FdSet { seq, .. }
            | WalRecord::Decision { seq, .. }
            | WalRecord::IndexSet { seq, .. }
            | WalRecord::AlertSet { seq, .. } => *seq,
        }
    }

    /// Encode the payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            WalRecord::Delta { seq, epoch_after, cursor, inserts, deletes } => {
                e.u8(KIND_DELTA);
                e.u64(*seq);
                e.u64(*epoch_after);
                match cursor {
                    Some(v) => {
                        e.u8(1);
                        e.u64(*v);
                    }
                    None => e.u8(0),
                }
                e.u32(inserts.len() as u32);
                for row in inserts {
                    e.u32(row.len() as u32);
                    for v in row {
                        e.value(v);
                    }
                }
                e.u32(deletes.len() as u32);
                for &d in deletes {
                    e.u64(d);
                }
            }
            WalRecord::Rollback { seq, target_seq } => {
                e.u8(KIND_ROLLBACK);
                e.u64(*seq);
                e.u64(*target_seq);
            }
            WalRecord::Compact { seq, epoch_after } => {
                e.u8(KIND_COMPACT);
                e.u64(*seq);
                e.u64(*epoch_after);
            }
            WalRecord::Cursor { seq, value } => {
                e.u8(KIND_CURSOR);
                e.u64(*seq);
                e.u64(*value);
            }
            WalRecord::FdSet { seq, fds } => {
                e.u8(KIND_FDSET);
                e.u64(*seq);
                e.u32(fds.len() as u32);
                for fd in fds {
                    e.str(fd);
                }
            }
            WalRecord::Decision { seq, record } => {
                e.u8(KIND_DECISION);
                e.u64(*seq);
                encode_decision(&mut e, record);
            }
            WalRecord::IndexSet { seq, columns } => {
                e.u8(KIND_INDEXSET);
                e.u64(*seq);
                e.u32(columns.len() as u32);
                for c in columns {
                    e.str(c);
                }
            }
            WalRecord::AlertSet { seq, rules } => {
                e.u8(KIND_ALERTSET);
                e.u64(*seq);
                e.u32(rules.len() as u32);
                for r in rules {
                    e.str(r);
                }
            }
        }
        e.into_bytes()
    }

    /// Decode a payload. `None` on any structural problem (the caller
    /// treats it as a torn/invalid frame).
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut d = Decoder::new(payload);
        let kind = d.u8("record kind").ok()?;
        let rec = match kind {
            KIND_DELTA => {
                let seq = d.u64("seq").ok()?;
                let epoch_after = d.u64("epoch").ok()?;
                let cursor = match d.u8("cursor flag").ok()? {
                    0 => None,
                    1 => Some(d.u64("cursor").ok()?),
                    _ => return None,
                };
                let n_ins = d.u32("insert count").ok()? as usize;
                let mut inserts = Vec::with_capacity(n_ins.min(1 << 16));
                for _ in 0..n_ins {
                    let arity = d.u32("row arity").ok()? as usize;
                    let mut row = Vec::with_capacity(arity.min(1 << 12));
                    for _ in 0..arity {
                        row.push(d.value("cell").ok()?);
                    }
                    inserts.push(row);
                }
                let n_del = d.u32("delete count").ok()? as usize;
                let mut deletes = Vec::with_capacity(n_del.min(1 << 16));
                for _ in 0..n_del {
                    deletes.push(d.u64("delete row").ok()?);
                }
                WalRecord::Delta { seq, epoch_after, cursor, inserts, deletes }
            }
            KIND_ROLLBACK => {
                WalRecord::Rollback { seq: d.u64("seq").ok()?, target_seq: d.u64("target").ok()? }
            }
            KIND_COMPACT => {
                WalRecord::Compact { seq: d.u64("seq").ok()?, epoch_after: d.u64("epoch").ok()? }
            }
            KIND_CURSOR => {
                WalRecord::Cursor { seq: d.u64("seq").ok()?, value: d.u64("value").ok()? }
            }
            KIND_FDSET => {
                let seq = d.u64("seq").ok()?;
                let n = d.u32("fd count").ok()? as usize;
                let mut fds = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    fds.push(d.str("fd text").ok()?);
                }
                WalRecord::FdSet { seq, fds }
            }
            KIND_DECISION => {
                let seq = d.u64("seq").ok()?;
                WalRecord::Decision { seq, record: decode_decision(&mut d)? }
            }
            KIND_INDEXSET => {
                let seq = d.u64("seq").ok()?;
                let n = d.u32("column count").ok()? as usize;
                let mut columns = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    columns.push(d.str("column name").ok()?);
                }
                WalRecord::IndexSet { seq, columns }
            }
            KIND_ALERTSET => {
                let seq = d.u64("seq").ok()?;
                let n = d.u32("rule count").ok()? as usize;
                let mut rules = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    rules.push(d.str("rule text").ok()?);
                }
                WalRecord::AlertSet { seq, rules }
            }
            _ => return None,
        };
        d.is_exhausted().then_some(rec)
    }

    /// Decode exactly one full frame (`[len][crc][payload]`, no trailing
    /// bytes), verifying the length and checksum — the shipped-frame
    /// counterpart of [`WalRecord::encode_frame`]. `None` on any mismatch.
    pub fn decode_frame(frame: &[u8]) -> Option<WalRecord> {
        if frame.len() < FRAME_HEADER_LEN {
            return None;
        }
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN || frame.len() != FRAME_HEADER_LEN + len as usize {
            return None;
        }
        let payload = &frame[FRAME_HEADER_LEN..];
        if crc32(payload) != crc {
            return None;
        }
        WalRecord::decode(payload)
    }

    /// Encode a full frame: `[len][crc][payload]`.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// When the WAL writer `fsync`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every commit: no committed delta is ever lost.
    PerCommit,
    /// `fsync` once every N commits (group commit): at most N−1 committed
    /// deltas are lost on a crash, prefix-consistently.
    GroupCommit(usize),
    /// Never `fsync` (the OS flushes eventually): fastest, no crash
    /// guarantee — for bulk loads and benchmarks.
    NoSync,
}

impl SyncPolicy {
    /// Parse `per-commit` / `group:N` / `no-sync` (CLI flag format).
    pub fn parse(text: &str) -> Option<SyncPolicy> {
        match text {
            "per-commit" | "percommit" | "fsync" => Some(SyncPolicy::PerCommit),
            "no-sync" | "nosync" | "none" => Some(SyncPolicy::NoSync),
            other => {
                let n: usize = other.strip_prefix("group:")?.parse().ok()?;
                Some(SyncPolicy::GroupCommit(n.max(1)))
            }
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::PerCommit => write!(f, "per-commit"),
            SyncPolicy::GroupCommit(n) => write!(f, "group:{n}"),
            SyncPolicy::NoSync => write!(f, "no-sync"),
        }
    }
}

/// Append handle over a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    /// Commits appended since the last `fsync`.
    unsynced: usize,
    /// Current file length (header + whole frames).
    bytes: u64,
    /// Cached policy-labeled latency handles (see [`WalWriter::append_hist`]).
    append_hist: Option<std::sync::Arc<evofd_obs::Histogram>>,
    fsync_hist: Option<std::sync::Arc<evofd_obs::Histogram>>,
}

impl WalWriter {
    /// Create a fresh WAL (truncating any existing file), write and sync
    /// the header.
    pub fn create(path: &Path, policy: SyncPolicy) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.write_all(&WAL_MAGIC).map_err(|e| io_err(path, e))?;
        file.write_all(&WAL_VERSION.to_le_bytes()).map_err(|e| io_err(path, e))?;
        file.sync_all().map_err(|e| io_err(path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            bytes: WAL_HEADER_LEN,
            append_hist: None,
            fsync_hist: None,
        })
    }

    /// Open an existing WAL for appending at `valid_bytes` (the length a
    /// prior [`recover_wal`] validated and truncated to).
    pub fn open_at(path: &Path, policy: SyncPolicy, valid_bytes: u64) -> Result<WalWriter> {
        let mut file =
            OpenOptions::new().read(true).write(true).open(path).map_err(|e| io_err(path, e))?;
        file.seek(SeekFrom::Start(valid_bytes)).map_err(|e| io_err(path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            bytes: valid_bytes,
            append_hist: None,
            fsync_hist: None,
        })
    }

    /// Append one record and apply the sync policy. The frame always
    /// reaches the file (buffered by the OS); only the `fsync` is
    /// policy-dependent.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let timer = evofd_obs::Timer::start();
        let frame = record.encode_frame();
        self.file.write_all(&frame).map_err(|e| io_err(&self.path, e))?;
        self.bytes += frame.len() as u64;
        self.unsynced += 1;
        evofd_obs::metrics::WAL_APPENDS_TOTAL.inc();
        evofd_obs::metrics::WAL_BYTES_WRITTEN_TOTAL.add(frame.len() as u64);
        if let Some(ns) = timer.elapsed_ns() {
            self.append_hist().record(ns);
        }
        match self.policy {
            SyncPolicy::PerCommit => self.sync()?,
            SyncPolicy::GroupCommit(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::NoSync => {}
        }
        Ok(())
    }

    /// Force an `fsync` now (e.g. before acknowledging a rollback or
    /// closing cleanly).
    pub fn sync(&mut self) -> Result<()> {
        let timer = evofd_obs::Timer::start();
        self.file.sync_all().map_err(|e| io_err(&self.path, e))?;
        self.unsynced = 0;
        if let Some(ns) = timer.elapsed_ns() {
            self.fsync_hist().record(ns);
        }
        Ok(())
    }

    /// Cached handle into the policy-labeled append histogram (the lookup
    /// takes the family mutex, so it must not sit on the per-append path).
    fn append_hist(&mut self) -> &evofd_obs::Histogram {
        self.append_hist.get_or_insert_with(|| {
            evofd_obs::metrics::WAL_APPEND_SECONDS.with_label(&self.policy.to_string())
        })
    }

    /// Cached handle into the policy-labeled fsync histogram.
    fn fsync_hist(&mut self) -> &evofd_obs::Histogram {
        self.fsync_hist.get_or_insert_with(|| {
            evofd_obs::metrics::WAL_FSYNC_SECONDS.with_label(&self.policy.to_string())
        })
    }

    /// Current WAL length in bytes — the snapshot-compaction trigger.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The configured sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Truncate back to the bare header (after a snapshot makes the log
    /// redundant) and sync.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(WAL_HEADER_LEN).map_err(|e| io_err(&self.path, e))?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN)).map_err(|e| io_err(&self.path, e))?;
        self.bytes = WAL_HEADER_LEN;
        self.sync()
    }
}

/// What a WAL scan found.
#[derive(Debug)]
pub struct WalScan {
    /// Whole, checksum-valid records in file order.
    pub records: Vec<WalRecord>,
    /// Byte offset of each record's frame, parallel to `records` — what
    /// recovery needs to amputate a final record that proves unappliable.
    pub offsets: Vec<u64>,
    /// File length covered by the header plus whole valid records.
    pub valid_bytes: u64,
    /// Bytes beyond `valid_bytes` (torn tail; 0 for a clean log).
    pub torn_bytes: u64,
}

/// Scan a WAL file without modifying it. A missing file yields an empty
/// scan; a file too short to hold the header is all torn tail; wrong
/// magic or version on a complete header is a hard error (the file is not
/// ours, or from a future format — truncating it would destroy data).
pub fn scan_wal(path: &Path) -> Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                offsets: Vec::new(),
                valid_bytes: 0,
                torn_bytes: 0,
            })
        }
        Err(e) => return Err(io_err(path, e)),
    };
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        // A crash during initial creation: nothing recoverable.
        return Ok(WalScan {
            records: Vec::new(),
            offsets: Vec::new(),
            valid_bytes: 0,
            torn_bytes: bytes.len() as u64,
        });
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(PersistError::CorruptWal {
            path: path.to_path_buf(),
            message: "bad magic (not an evofd WAL)".into(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(PersistError::CorruptWal {
            path: path.to_path_buf(),
            message: format!("unsupported version {version}"),
        });
    }

    let mut records = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    while let Some(frame_header) = bytes.get(pos..pos + FRAME_HEADER_LEN) {
        let len = u32::from_le_bytes(frame_header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(frame_header[4..].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            break; // garbage length: treat as torn
        }
        let start = pos + FRAME_HEADER_LEN;
        let Some(payload) = bytes.get(start..start + len as usize) else { break };
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = WalRecord::decode(payload) else { break };
        records.push(record);
        offsets.push(pos as u64);
        pos = start + len as usize;
    }
    Ok(WalScan {
        records,
        offsets,
        valid_bytes: pos as u64,
        torn_bytes: bytes.len() as u64 - pos as u64,
    })
}

/// Scan a WAL and truncate any torn tail in place, so subsequent appends
/// extend a log whose every byte is valid. Creates a fresh header if the
/// file was missing or shorter than a header.
pub fn recover_wal(path: &Path) -> Result<WalScan> {
    let mut scan = scan_wal(path)?;
    if scan.valid_bytes < WAL_HEADER_LEN {
        // Missing or headerless: (re)initialise.
        WalWriter::create(path, SyncPolicy::PerCommit)?;
        scan.valid_bytes = WAL_HEADER_LEN;
        return Ok(scan);
    }
    if scan.torn_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path).map_err(|e| io_err(path, e))?;
        file.set_len(scan.valid_bytes).map_err(|e| io_err(path, e))?;
        file.sync_all().map_err(|e| io_err(path, e))?;
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("evofd_persist_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Delta {
                seq: 1,
                epoch_after: 1,
                cursor: Some(5),
                inserts: vec![
                    vec![Value::str("a"), Value::Int(1)],
                    vec![Value::Null, Value::Int(2)],
                ],
                deletes: vec![0],
            },
            WalRecord::Rollback { seq: 2, target_seq: 1 },
            WalRecord::Compact { seq: 3, epoch_after: 2 },
            WalRecord::Cursor { seq: 4, value: 99 },
            WalRecord::FdSet { seq: 5, fds: vec!["[X] -> [Y]".into(), "[Y] -> [X]".into()] },
            WalRecord::Decision {
                seq: 6,
                record: DecisionRecord {
                    fd: "[X] -> [Y]".into(),
                    action: DecisionAction::Accept { proposal: 0, evolved: "[X, Z] -> [Y]".into() },
                },
            },
            WalRecord::Decision {
                seq: 7,
                record: DecisionRecord { fd: "[Y] -> [X]".into(), action: DecisionAction::Keep },
            },
            WalRecord::IndexSet { seq: 8, columns: vec!["City".into(), "Zip".into()] },
            WalRecord::IndexSet { seq: 9, columns: Vec::new() },
            WalRecord::AlertSet {
                seq: 10,
                rules: vec!["ALERT ON t FD '[X] -> [Y]' WHEN confidence < 0.98 FOR 5 EPOCHS".into()],
            },
            WalRecord::AlertSet { seq: 11, rules: Vec::new() },
        ]
    }

    #[test]
    fn record_payload_round_trips() {
        for rec in sample_records() {
            let payload = rec.encode();
            assert_eq!(WalRecord::decode(&payload), Some(rec));
        }
        // Trailing garbage is rejected (payload must be exhausted).
        let mut payload = sample_records()[1].encode();
        payload.push(0);
        assert_eq!(WalRecord::decode(&payload), None);
        assert_eq!(WalRecord::decode(&[42]), None, "unknown kind");
    }

    #[test]
    fn frame_round_trips_and_rejects_damage() {
        for rec in sample_records() {
            let frame = rec.encode_frame();
            assert_eq!(WalRecord::decode_frame(&frame), Some(rec.clone()));
            // Any truncation is rejected.
            for cut in 0..frame.len() {
                assert_eq!(WalRecord::decode_frame(&frame[..cut]), None, "cut {cut}");
            }
            // Trailing garbage is rejected (a frame is exactly one record).
            let mut long = frame.clone();
            long.push(0);
            assert_eq!(WalRecord::decode_frame(&long), None);
            // A flipped payload byte fails the checksum.
            let mut flipped = frame.clone();
            let last = flipped.len() - 1;
            flipped[last] ^= 0xFF;
            assert_eq!(WalRecord::decode_frame(&flipped), None);
        }
    }

    #[test]
    fn write_scan_round_trips() {
        let path = tmp("round.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::PerCommit).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records, sample_records());
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.valid_bytes, w.bytes());
    }

    #[test]
    fn torn_tail_truncated_at_every_cut() {
        let path = tmp("torn.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::NoSync).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync().unwrap();
        let full = std::fs::read(&path).unwrap();

        // Record boundaries: header + cumulative frame lengths.
        let mut boundaries = vec![WAL_HEADER_LEN as usize];
        for rec in sample_records() {
            boundaries.push(boundaries.last().unwrap() + rec.encode_frame().len());
        }

        let cut_path = tmp("torn_cut.wal");
        for cut in 0..=full.len() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let scan = recover_wal(&cut_path).unwrap();
            // Expected surviving records: whole frames before the cut
            // (a cut inside the header itself leaves zero).
            let expect = boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
            assert_eq!(scan.records.len(), expect, "cut at byte {cut}");
            assert_eq!(
                scan.records,
                sample_records()[..expect].to_vec(),
                "prefix consistency at byte {cut}"
            );
            // After recovery the file itself is valid end to end.
            let rescan = scan_wal(&cut_path).unwrap();
            assert_eq!(rescan.torn_bytes, 0, "cut at byte {cut} left a tail");
            assert_eq!(rescan.records.len(), expect);
        }
    }

    #[test]
    fn corrupted_middle_byte_stops_the_scan() {
        let path = tmp("flip.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::PerCommit).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the second record's payload.
        let off = WAL_HEADER_LEN as usize + sample_records()[0].encode_frame().len() + 9;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1, "only the intact prefix survives");
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn wrong_magic_is_a_hard_error() {
        let path = tmp("magic.wal");
        std::fs::write(&path, b"NOTAWAL!\x01\x00\x00\x00records").unwrap();
        assert!(matches!(scan_wal(&path), Err(PersistError::CorruptWal { .. })));
        assert!(matches!(recover_wal(&path), Err(PersistError::CorruptWal { .. })));
    }

    #[test]
    fn missing_file_scans_empty_and_recovery_creates() {
        let path = tmp("fresh_missing.wal");
        let _ = std::fs::remove_file(&path);
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        let scan = recover_wal(&path).unwrap();
        assert_eq!(scan.valid_bytes, WAL_HEADER_LEN);
        assert!(path.exists());
    }

    #[test]
    fn group_commit_and_reset() {
        let path = tmp("group.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::GroupCommit(8)).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        assert!(w.bytes() > WAL_HEADER_LEN);
        w.reset().unwrap();
        assert_eq!(w.bytes(), WAL_HEADER_LEN);
        assert!(scan_wal(&path).unwrap().records.is_empty());
        // Appends after a reset extend the fresh log.
        w.append(&sample_records()[3]).unwrap();
        w.sync().unwrap();
        assert_eq!(scan_wal(&path).unwrap().records.len(), 1);
    }

    #[test]
    fn open_at_appends_after_recovery() {
        let path = tmp("openat.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::PerCommit).unwrap();
        w.append(&sample_records()[0]).unwrap();
        let valid = w.bytes();
        drop(w);
        let mut w = WalWriter::open_at(&path, SyncPolicy::PerCommit, valid).unwrap();
        w.append(&sample_records()[3]).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn sync_policy_parse_and_display() {
        assert_eq!(SyncPolicy::parse("per-commit"), Some(SyncPolicy::PerCommit));
        assert_eq!(SyncPolicy::parse("no-sync"), Some(SyncPolicy::NoSync));
        assert_eq!(SyncPolicy::parse("group:32"), Some(SyncPolicy::GroupCommit(32)));
        assert_eq!(SyncPolicy::parse("group:0"), Some(SyncPolicy::GroupCommit(1)));
        assert_eq!(SyncPolicy::parse("sometimes"), None);
        assert_eq!(SyncPolicy::GroupCommit(8).to_string(), "group:8");
    }
}
