//! Error types for the durable storage engine.

use std::fmt;
use std::path::PathBuf;

use evofd_incremental::IncrementalError;
use evofd_storage::StorageError;

/// Errors produced by WAL/snapshot I/O and crash recovery.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem I/O failed.
    Io {
        /// The file the operation touched.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A snapshot file is structurally invalid (bad magic/version/checksum
    /// or malformed body).
    CorruptSnapshot {
        /// The snapshot file.
        path: PathBuf,
        /// What failed to parse or verify.
        message: String,
    },
    /// A WAL file is structurally invalid **before** its torn tail — e.g.
    /// wrong magic or an unsupported version. (A torn tail is NOT an
    /// error: recovery truncates it silently.)
    CorruptWal {
        /// The WAL file.
        path: PathBuf,
        /// What failed to parse or verify.
        message: String,
    },
    /// Replaying a WAL record against the recovered relation failed, or
    /// recovered state is internally inconsistent.
    Recovery {
        /// What diverged.
        message: String,
    },
    /// A table directory already exists on create, or is missing on open.
    Table {
        /// The table name.
        name: String,
        /// What went wrong.
        message: String,
    },
    /// Another process holds the table directory's lock file.
    Locked {
        /// The lock file.
        path: PathBuf,
        /// PID recorded in the lock file (0 if unreadable).
        pid: u32,
    },
    /// A history frame could not be encoded within the format's framing
    /// limits (e.g. a section count or payload length overflowing the
    /// `u32` length fields).
    History {
        /// The history file.
        path: PathBuf,
        /// What overflowed.
        message: String,
    },
    /// Replication protocol failure: a corrupt shipped frame, a follower
    /// ahead of its leader, or replayed state diverging from the journaled
    /// epochs.
    Replication {
        /// What went wrong.
        message: String,
    },
    /// The in-memory engine rejected an operation.
    Incremental(IncrementalError),
    /// The storage layer rejected an operation.
    Storage(StorageError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            PersistError::CorruptSnapshot { path, message } => {
                write!(f, "corrupt snapshot {}: {message}", path.display())
            }
            PersistError::CorruptWal { path, message } => {
                write!(f, "corrupt WAL {}: {message}", path.display())
            }
            PersistError::Recovery { message } => write!(f, "recovery failed: {message}"),
            PersistError::History { path, message } => {
                write!(f, "history file {}: {message}", path.display())
            }
            PersistError::Locked { path, pid } => {
                write!(f, "{} is locked by pid {pid} (another evofd process?)", path.display())
            }
            PersistError::Replication { message } => write!(f, "replication failed: {message}"),
            PersistError::Table { name, message } => write!(f, "table `{name}`: {message}"),
            PersistError::Incremental(e) => write!(f, "incremental engine: {e}"),
            PersistError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Incremental(e) => Some(e),
            PersistError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IncrementalError> for PersistError {
    fn from(e: IncrementalError) -> Self {
        PersistError::Incremental(e)
    }
}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

/// Attach a path to a raw I/O error.
pub(crate) fn io_err(path: &std::path::Path, source: std::io::Error) -> PersistError {
    PersistError::Io { path: path.to_path_buf(), source }
}

/// Result alias for persistence operations.
pub type Result<T> = std::result::Result<T, PersistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = PersistError::CorruptSnapshot { path: "/x/s.bin".into(), message: "crc".into() };
        assert!(e.to_string().contains("corrupt snapshot"));
        let e = PersistError::Recovery { message: "epoch gap".into() };
        assert!(e.to_string().contains("epoch gap"));
        let e: PersistError = StorageError::UnknownTable { name: "t".into() }.into();
        assert!(e.to_string().contains("unknown table"));
        let e: PersistError = IncrementalError::DeadRow { row: 1 }.into();
        assert!(e.to_string().contains("tombstoned"));
    }
}
