//! WAL-shipping replication: a leader serves its delta WAL as a
//! length-prefixed, CRC-checksummed frame stream and a follower applies
//! it continuously — literally the crash-recovery loop that never
//! terminates.
//!
//! ## Protocol
//!
//! A follower's position is its **last acked sequence number** (plus the
//! `snapshot_seq` of the image it bootstrapped from). Each poll it asks
//! the transport for everything after that position and gets back a
//! [`Shipment`]:
//!
//! * `Frames(..)` — whole WAL frames (`[len][crc][payload]`, the exact
//!   on-disk encoding) with `seq` beyond the position, in order. The
//!   follower journals each frame to its *own* WAL under the leader's
//!   sequence number and applies it with the same semantics recovery
//!   uses: epoch cross-checks on every delta and compaction, rollbacks
//!   cancelling deterministically rejected deltas, torn local tails
//!   truncated on restart. Compaction happens exactly where the leader
//!   journaled a `Compact` record — never independently — which is what
//!   keeps dictionary codes and physical row ids byte-identical.
//! * `Bootstrap { snapshot }` — the requested position predates the
//!   leader's shipping horizon (records folded into its snapshot), so the
//!   follower must install the shipped image and continue from its
//!   `last_seq`.
//!
//! ## Transports
//!
//! [`FrameTransport`] abstracts the wire. Two offline implementations:
//!
//! * [`ChannelTransport`] — in-process, over a shared
//!   [`Database`]; deterministic, used by the equivalence and chaos test
//!   harnesses.
//! * [`DirTransport`] — tails a leader *table directory* (its
//!   `snapshot.bin` + `wal.log`) through the filesystem; what
//!   `evofd follow` uses, so a leader and follower can be separate
//!   processes sharing only a directory.
//!
//! ## Consistency
//!
//! Replication is asynchronous and prefix-consistent: at every acked
//! seq the follower's `LiveRelation` (codes, row ids, tombstones,
//! epoch) and per-FD tracker counts are byte-identical to the leader's
//! state at that same seq. Under `group:N`/`no-sync` a *machine* crash
//! (not a process kill) can lose leader tail frames a follower already
//! applied; the follower then reports itself ahead and must be
//! re-bootstrapped.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use evofd_incremental::FdDrift;

use crate::error::{io_err, PersistError, Result};
use crate::lock::DirLock;
use crate::snapshot::read_snapshot_position;
use crate::store::{Database, DurableRelation, PersistOptions, ReplicaIngest};
use crate::wal::{scan_wal, WalRecord, WalWriter};
use crate::{SNAPSHOT_FILE, WAL_FILE};

/// A leader's shipping position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipPosition {
    /// `last_seq` of the on-disk (or current, for in-process transports)
    /// snapshot — the shipping horizon.
    pub snapshot_seq: u64,
    /// Highest journaled sequence number.
    pub last_seq: u64,
}

/// What the leader serves for one fetch.
#[derive(Debug)]
pub enum Shipment {
    /// Whole WAL frames beyond the requested position, oldest first
    /// (empty = caught up).
    Frames(Vec<Vec<u8>>),
    /// The requested position predates the shipping horizon: install this
    /// snapshot image and continue from its `last_seq`.
    Bootstrap {
        /// An encoded snapshot (see [`crate::snapshot`]).
        snapshot: Vec<u8>,
        /// The leader's durable FD-health history file (see
        /// [`crate::history`]) — the frames for epochs folded into the
        /// snapshot, which the follower could never regenerate from the
        /// shipped WAL. Empty when the leader keeps no history.
        history: Vec<u8>,
    },
}

/// The wire between a leader table and its followers.
pub trait FrameTransport {
    /// The leader's current position.
    fn position(&mut self) -> Result<ShipPosition>;

    /// A snapshot image to (re)bootstrap from.
    fn bootstrap(&mut self) -> Result<Vec<u8>>;

    /// The leader's durable history file to bootstrap alongside the
    /// snapshot (empty = the leader keeps none).
    fn bootstrap_history(&mut self) -> Result<Vec<u8>> {
        Ok(Vec::new())
    }

    /// Everything after `seq`: frames, or a bootstrap demand.
    fn fetch(&mut self, seq: u64) -> Result<Shipment>;
}

// ---------------------------------------------------------------------
// In-process channel transport.
// ---------------------------------------------------------------------

/// An in-process [`FrameTransport`] over a shared [`Database`] — the
/// deterministic "channel" used by tests and embedded leader/follower
/// pairs living in one process.
#[derive(Debug, Clone)]
pub struct ChannelTransport {
    db: Arc<Mutex<Database>>,
    table: String,
    /// Cap on frames per [`FrameTransport::fetch`] (chaos harness knob).
    frame_limit: Option<usize>,
}

impl ChannelTransport {
    /// A transport shipping `table` out of a shared database.
    pub fn new(db: Arc<Mutex<Database>>, table: impl Into<String>) -> ChannelTransport {
        ChannelTransport { db, table: table.into(), frame_limit: None }
    }

    /// Deliver at most `limit` frames per fetch (for harnesses that need
    /// to stop a follower at an exact frame boundary).
    pub fn with_frame_limit(mut self, limit: usize) -> ChannelTransport {
        self.frame_limit = Some(limit);
        self
    }

    fn lock(&self) -> MutexGuard<'_, Database> {
        self.db.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl FrameTransport for ChannelTransport {
    fn position(&mut self) -> Result<ShipPosition> {
        let db = self.lock();
        let t = db.get(&self.table)?;
        Ok(ShipPosition { snapshot_seq: t.snapshot_seq(), last_seq: t.last_seq() })
    }

    fn bootstrap(&mut self) -> Result<Vec<u8>> {
        Ok(self.lock().get(&self.table)?.encode_current_snapshot())
    }

    fn bootstrap_history(&mut self) -> Result<Vec<u8>> {
        Ok(self.lock().get(&self.table)?.history_bytes())
    }

    fn fetch(&mut self, seq: u64) -> Result<Shipment> {
        let shipment = self.lock().get(&self.table)?.ship_from(seq)?;
        Ok(match (shipment, self.frame_limit) {
            (Shipment::Frames(mut frames), Some(limit)) => {
                frames.truncate(limit);
                Shipment::Frames(frames)
            }
            (other, _) => other,
        })
    }
}

// ---------------------------------------------------------------------
// Tailed-directory transport.
// ---------------------------------------------------------------------

/// How often a directory probe retries when a leader checkpoint races
/// its snapshot read against its WAL scan.
const PROBE_RETRIES: usize = 16;

/// Read a table directory's shipping position without opening (or
/// locking) it: the snapshot's `last_seq` plus the highest whole-record
/// seq in the WAL. Safe to run against a live leader — snapshots are
/// atomic, the WAL scan stops at the first incomplete frame, and a
/// checkpoint racing between the two reads (fresh snapshot + not-yet-
/// rescanned WAL would under-report `last_seq`) is detected by
/// re-reading the snapshot header after the scan and retrying while it
/// moves.
pub fn read_position(table_dir: &Path) -> Result<ShipPosition> {
    let snap_path = table_dir.join(SNAPSHOT_FILE);
    let wal_path = table_dir.join(WAL_FILE);
    let (mut snapshot_seq, _) = read_snapshot_position(&snap_path)?;
    let mut scan = scan_wal(&wal_path)?;
    for _ in 0..PROBE_RETRIES {
        let (snap_after, _) = read_snapshot_position(&snap_path)?;
        if snap_after == snapshot_seq {
            break;
        }
        snapshot_seq = snap_after;
        scan = scan_wal(&wal_path)?;
    }
    let last_seq = scan.records.iter().map(WalRecord::seq).fold(snapshot_seq, u64::max);
    Ok(ShipPosition { snapshot_seq, last_seq })
}

/// A [`FrameTransport`] that tails a leader **table directory** through
/// the filesystem — file shipping with no network stack: the follower
/// reads `snapshot.bin` to bootstrap and re-scans `wal.log` for new
/// whole frames. The leader is never locked or mutated.
#[derive(Debug, Clone)]
pub struct DirTransport {
    table_dir: PathBuf,
    frame_limit: Option<usize>,
    /// `(wal length, snapshot_seq, last_seq)` from the last full probe.
    /// The WAL only changes by appending (length grows) or by a
    /// checkpoint/truncation (snapshot horizon or length moves), so an
    /// unchanged pair means an unchanged position — a caught-up poll
    /// costs one 40-byte header read plus one `stat` instead of an
    /// O(WAL) rescan.
    cache: Option<(u64, u64, u64)>,
}

impl DirTransport {
    /// Tail the given leader table directory.
    pub fn new(table_dir: impl Into<PathBuf>) -> DirTransport {
        DirTransport { table_dir: table_dir.into(), frame_limit: None, cache: None }
    }

    /// Deliver at most `limit` frames per fetch.
    pub fn with_frame_limit(mut self, limit: usize) -> DirTransport {
        self.frame_limit = Some(limit);
        self
    }

    /// Cheap probe: `(wal length, snapshot_seq)`.
    fn cheap_probe(&self) -> Result<(u64, u64)> {
        let (snapshot_seq, _) = read_snapshot_position(&self.table_dir.join(SNAPSHOT_FILE))?;
        let wal_len =
            std::fs::metadata(self.table_dir.join(WAL_FILE)).map(|m| m.len()).unwrap_or(0);
        Ok((wal_len, snapshot_seq))
    }

    /// The cached position, if the cheap probe proves it is still
    /// current.
    fn cached_position(&self, wal_len: u64, snapshot_seq: u64) -> Option<ShipPosition> {
        match self.cache {
            Some((clen, csnap, clast)) if clen == wal_len && csnap == snapshot_seq => {
                Some(ShipPosition { snapshot_seq, last_seq: clast })
            }
            _ => None,
        }
    }
}

impl FrameTransport for DirTransport {
    fn position(&mut self) -> Result<ShipPosition> {
        let (wal_len, snapshot_seq) = self.cheap_probe()?;
        if let Some(pos) = self.cached_position(wal_len, snapshot_seq) {
            return Ok(pos);
        }
        let pos = read_position(&self.table_dir)?;
        // Cache against the length probed BEFORE the scan: lengths only
        // grow between checkpoints, so a later equal length means no
        // appends happened since this probe.
        self.cache = Some((wal_len, pos.snapshot_seq, pos.last_seq));
        Ok(pos)
    }

    fn bootstrap(&mut self) -> Result<Vec<u8>> {
        let path = self.table_dir.join(SNAPSHOT_FILE);
        std::fs::read(&path).map_err(|e| io_err(&path, e))
    }

    fn bootstrap_history(&mut self) -> Result<Vec<u8>> {
        // Absent file = the leader keeps no history: ship nothing.
        Ok(std::fs::read(self.table_dir.join(crate::HISTORY_FILE)).unwrap_or_default())
    }

    fn fetch(&mut self, seq: u64) -> Result<Shipment> {
        let (wal_len, snap) = self.cheap_probe()?;
        if let Some(pos) = self.cached_position(wal_len, snap) {
            if seq >= pos.last_seq {
                return Ok(Shipment::Frames(Vec::new())); // caught up, no rescan
            }
        }
        for _ in 0..PROBE_RETRIES {
            let (pre_len, snapshot_seq) = self.cheap_probe()?;
            if seq < snapshot_seq {
                return Ok(Shipment::Bootstrap {
                    snapshot: self.bootstrap()?,
                    history: self.bootstrap_history()?,
                });
            }
            let scan = scan_wal(&self.table_dir.join(WAL_FILE))?;
            let (snap_after, _) = read_snapshot_position(&self.table_dir.join(SNAPSHOT_FILE))?;
            if snap_after != snapshot_seq {
                continue; // a checkpoint raced the scan: re-probe
            }
            // The scanned WAL belongs to the probed snapshot generation,
            // so it holds every record in (snapshot_seq, last] contiguously
            // — `seq >= snapshot_seq` guarantees a gap-free shipment.
            let last_seq = scan.records.iter().map(WalRecord::seq).fold(snapshot_seq, u64::max);
            self.cache = Some((pre_len, snapshot_seq, last_seq));
            let mut frames: Vec<Vec<u8>> = scan
                .records
                .iter()
                .filter(|r| r.seq() > seq)
                .map(WalRecord::encode_frame)
                .collect();
            if let Some(limit) = self.frame_limit {
                frames.truncate(limit);
            }
            return Ok(Shipment::Frames(frames));
        }
        Err(PersistError::Replication {
            message: format!(
                "no consistent probe of {} after {PROBE_RETRIES} tries (leader checkpointing \
                 continuously?)",
                self.table_dir.display()
            ),
        })
    }
}

// ---------------------------------------------------------------------
// Follower state.
// ---------------------------------------------------------------------

/// One sync round's outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SyncReport {
    /// A bootstrap snapshot was installed this round.
    pub bootstrapped: bool,
    /// Frames applied (deltas, compactions, cursors, rollbacks).
    pub applied: usize,
    /// Duplicate frames skipped.
    pub skipped: usize,
    /// Deltas that arrived doomed (rejected deterministically, cancelled
    /// by the leader's following rollback).
    pub rolled_back: usize,
    /// Drift events the applied deltas caused, in order.
    pub drift: Vec<FdDrift>,
    /// The follower's last acked seq after the round.
    pub last_seq: u64,
}

/// A follower table: a [`DurableRelation`] kept converged with a leader
/// by applying its shipped WAL — recovery that never stops. Restart-safe:
/// reopening the replica directory resumes from its own snapshot + WAL
/// (with the usual torn-tail truncation) at the exact acked position.
#[derive(Debug)]
pub struct ReplicaState {
    table: DurableRelation,
}

impl ReplicaState {
    /// Resume an existing replica directory (ordinary crash recovery).
    pub fn open(dir: &Path, opts: PersistOptions) -> Result<ReplicaState> {
        Ok(ReplicaState { table: DurableRelation::open(dir, opts)? })
    }

    /// Create a replica directory from a shipped bootstrap image (plus
    /// the leader's durable history file — empty when it keeps none).
    pub fn bootstrap_from(
        dir: &Path,
        snapshot: &[u8],
        history: &[u8],
        opts: PersistOptions,
    ) -> Result<ReplicaState> {
        let lock = DirLock::acquire(dir)?;
        // Validate before writing anything.
        let snap_path = dir.join(SNAPSHOT_FILE);
        crate::snapshot::decode_snapshot(&snap_path, snapshot)?;
        let history_path = dir.join(crate::HISTORY_FILE);
        if !history.is_empty() {
            crate::history::scan_history_bytes(&history_path, history)?;
        }
        let tmp = snap_path.with_extension("tmp");
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            file.write_all(snapshot).map_err(|e| io_err(&tmp, e))?;
            file.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &snap_path).map_err(|e| io_err(&snap_path, e))?;
        if !history.is_empty() {
            // Written before the table opens so its history writer starts
            // positioned at the shipped tail.
            std::fs::write(&history_path, history).map_err(|e| io_err(&history_path, e))?;
        }
        WalWriter::create(&dir.join(WAL_FILE), opts.sync)?;
        let table = DurableRelation::open_with_lock(dir, opts, lock)?;
        Ok(ReplicaState { table })
    }

    /// Open the replica directory if it exists, otherwise bootstrap it
    /// from the transport.
    pub fn open_or_bootstrap(
        dir: &Path,
        transport: &mut dyn FrameTransport,
        opts: PersistOptions,
    ) -> Result<ReplicaState> {
        if dir.join(SNAPSHOT_FILE).exists() {
            ReplicaState::open(dir, opts)
        } else {
            let snapshot = transport.bootstrap()?;
            let history = transport.bootstrap_history()?;
            ReplicaState::bootstrap_from(dir, &snapshot, &history, opts)
        }
    }

    /// The follower's last acked leader sequence number.
    pub fn last_seq(&self) -> u64 {
        self.table.last_seq()
    }

    /// The underlying durable table (read side: SELECT serving, FD
    /// state, recovery report).
    pub fn table(&self) -> &DurableRelation {
        &self.table
    }

    /// Mutable table access — for drift-feed subscriptions and explicit
    /// checkpoints; replication traffic must go through
    /// [`ReplicaState::apply_frame`]/[`ReplicaState::sync`].
    pub fn table_mut(&mut self) -> &mut DurableRelation {
        &mut self.table
    }

    /// Give the table back (e.g. to promote a caught-up follower).
    pub fn into_table(self) -> DurableRelation {
        self.table
    }

    /// Apply one shipped frame (CRC-verified, then ingested with
    /// recovery semantics).
    pub fn apply_frame(&mut self, frame: &[u8]) -> Result<ReplicaIngest> {
        let record = WalRecord::decode_frame(frame).ok_or_else(|| {
            if evofd_obs::enabled() {
                evofd_obs::metrics::REPL_REJECTS_TOTAL.with_label("frame").inc();
            }
            PersistError::Replication {
                message: "corrupt shipped frame (bad length or checksum)".into(),
            }
        })?;
        let outcome = self.table.ingest_replicated(&record)?;
        match outcome {
            ReplicaIngest::Applied(_) | ReplicaIngest::Doomed => {
                evofd_obs::metrics::REPL_FRAMES_APPLIED_TOTAL.inc()
            }
            ReplicaIngest::Skipped => evofd_obs::metrics::REPL_FRAMES_SKIPPED_TOTAL.inc(),
        }
        Ok(outcome)
    }

    /// Install a (re)bootstrap snapshot over the current state.
    pub fn install_snapshot(&mut self, snapshot: &[u8]) -> Result<()> {
        self.table.install_snapshot(snapshot)
    }

    /// How far behind the leader this follower is, in sequence numbers.
    pub fn lag(&self, transport: &mut dyn FrameTransport) -> Result<u64> {
        Ok(transport.position()?.last_seq.saturating_sub(self.last_seq()))
    }

    /// One sync pass: fetch and apply until caught up (or until `limit`
    /// frames were consumed). Detects a follower that is *ahead* of its
    /// leader (divergence under lossy fsync policies) and refuses.
    pub fn sync_with_limit(
        &mut self,
        transport: &mut dyn FrameTransport,
        limit: Option<usize>,
    ) -> Result<SyncReport> {
        let pos = transport.position()?;
        if pos.last_seq < self.last_seq() {
            return Err(PersistError::Replication {
                message: format!(
                    "replica is ahead of its leader (acked {} > leader {}) — the leader lost \
                     journaled frames; re-bootstrap the replica",
                    self.last_seq(),
                    pos.last_seq
                ),
            });
        }
        let mut report = SyncReport { last_seq: self.last_seq(), ..SyncReport::default() };
        if pos.last_seq == self.last_seq() && pos.snapshot_seq <= self.last_seq() {
            // Caught up and inside the shipping horizon: skip the fetch
            // entirely — ship_from re-scans and re-frames the leader's
            // whole WAL, which an idle polling follower should not pay.
            return Ok(report);
        }
        let mut budget = limit;
        'rounds: loop {
            if budget == Some(0) {
                break;
            }
            match transport.fetch(self.last_seq())? {
                Shipment::Bootstrap { snapshot, history } => {
                    self.install_snapshot(&snapshot)?;
                    self.table.install_history(&history)?;
                    report.bootstrapped = true;
                }
                Shipment::Frames(frames) => {
                    if frames.is_empty() {
                        break;
                    }
                    for frame in &frames {
                        if budget == Some(0) {
                            break 'rounds;
                        }
                        match self.apply_frame(frame)? {
                            ReplicaIngest::Applied(drift) => {
                                report.applied += 1;
                                report.drift.extend(drift);
                            }
                            ReplicaIngest::Skipped => report.skipped += 1,
                            ReplicaIngest::Doomed => {
                                report.applied += 1;
                                report.rolled_back += 1;
                            }
                        }
                        budget = budget.map(|b| b - 1);
                    }
                }
            }
        }
        report.last_seq = self.last_seq();
        Ok(report)
    }

    /// [`ReplicaState::sync_with_limit`] without a frame cap: apply
    /// everything currently available.
    pub fn sync(&mut self, transport: &mut dyn FrameTransport) -> Result<SyncReport> {
        self.sync_with_limit(transport, None)
    }

    /// Snapshot the replica and reset its local WAL (bounds restart
    /// replay; does not contact the leader).
    pub fn checkpoint(&mut self) -> Result<()> {
        self.table.checkpoint()
    }
}

// ---------------------------------------------------------------------
// Leader-side follower ack tracking.
// ---------------------------------------------------------------------

/// Per-follower acknowledgement state kept on a serving leader (the
/// `evofd server` replication surface). Each follower's fetch for
/// everything after `seq` doubles as an ack that it has durably applied
/// every frame ≤ `seq`, so the leader can report fleet lag and the
/// minimum acked horizon without any extra protocol traffic.
///
/// Acks only move forward: a fetch below a recorded ack (a follower
/// restarting from an older local state) does not regress the record.
#[derive(Debug, Default)]
pub struct AckTracker {
    acks: std::collections::BTreeMap<(String, String), u64>,
}

impl AckTracker {
    /// An empty tracker.
    pub fn new() -> AckTracker {
        AckTracker::default()
    }

    /// Record that `follower` has acked every frame of `table` up to and
    /// including `seq`. Monotonic: lower seqs are ignored.
    pub fn record(&mut self, table: &str, follower: &str, seq: u64) {
        let entry = self.acks.entry((table.to_string(), follower.to_string())).or_insert(0);
        *entry = (*entry).max(seq);
    }

    /// The lowest acked seq across `table`'s known followers — the
    /// horizon every follower has reached. `None` when no follower has
    /// ever fetched the table.
    pub fn min_acked(&self, table: &str) -> Option<u64> {
        self.for_table(table).map(|(_, seq)| seq).min()
    }

    /// `(follower, acked seq)` pairs for one table, in follower order.
    pub fn for_table<'a>(&'a self, table: &'a str) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.acks
            .iter()
            .filter(move |((t, _), _)| t == table)
            .map(|((_, f), seq)| (f.as_str(), *seq))
    }

    /// Every `(table, follower, acked seq)` triple, in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, u64)> + '_ {
        self.acks.iter().map(|((t, f), seq)| (t.as_str(), f.as_str(), *seq))
    }

    /// Forget one follower (its connection closed); its acks no longer
    /// hold back [`AckTracker::min_acked`].
    pub fn forget(&mut self, follower: &str) {
        self.acks.retain(|(_, f), _| f != follower);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_core::Fd;
    use evofd_incremental::{Delta, ValidatorConfig};
    use evofd_storage::{relation_of_strs, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("evofd_persist_replication_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn srow(a: &str, b: &str) -> Vec<Value> {
        vec![Value::str(a), Value::str(b)]
    }

    fn leader_db(dir: &Path) -> Arc<Mutex<Database>> {
        let rel =
            relation_of_strs("t", &["X", "Y"], &[&["a", "1"], &["b", "2"], &["c", "3"]]).unwrap();
        let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
        let mut db = Database::open(dir, PersistOptions::default()).unwrap();
        db.create_table(rel, fds, ValidatorConfig::default()).unwrap();
        Arc::new(Mutex::new(db))
    }

    fn apply_leader(db: &Arc<Mutex<Database>>, delta: &Delta) {
        db.lock().unwrap().get_mut("t").unwrap().apply(delta).unwrap();
    }

    fn states_equal(db: &Arc<Mutex<Database>>, replica: &ReplicaState) {
        let db = db.lock().unwrap();
        let leader = db.get("t").unwrap();
        assert_eq!(
            crate::snapshot::encode_snapshot(
                leader.live(),
                leader.validator(),
                leader.decisions(),
                leader.indexed_columns(),
                leader.alerts(),
                0,
                0
            ),
            crate::snapshot::encode_snapshot(
                replica.table().live(),
                replica.table().validator(),
                replica.table().decisions(),
                replica.table().indexed_columns(),
                replica.table().alerts(),
                0,
                0
            ),
            "leader and replica state bytes diverged"
        );
        assert_eq!(leader.last_seq(), replica.last_seq());
        assert_eq!(
            leader.history_bytes(),
            replica.table().history_bytes(),
            "leader and replica history files diverged"
        );
    }

    #[test]
    fn channel_transport_converges_and_streams_drift() {
        let ldir = tmpdir("chan_leader");
        let rdir = tmpdir("chan_replica");
        let db = leader_db(&ldir);
        let mut transport = ChannelTransport::new(Arc::clone(&db), "t");

        let mut replica =
            ReplicaState::open_or_bootstrap(&rdir, &mut transport, PersistOptions::default())
                .unwrap();
        assert_eq!(replica.last_seq(), 0);
        states_equal(&db, &replica);

        // A conflicting insert drifts X -> Y violated; deleting the old
        // conflicting row repairs it — the follower sees both events.
        apply_leader(&db, &Delta::inserting(vec![srow("a", "9")]));
        apply_leader(&db, &Delta::deleting([0]));
        let report = replica.sync(&mut transport).unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(report.drift.len(), 2, "BecameViolated then BecameExact");
        assert_eq!(replica.lag(&mut transport).unwrap(), 0);
        states_equal(&db, &replica);

        // Caught-up sync is a no-op.
        let report = replica.sync(&mut transport).unwrap();
        assert_eq!((report.applied, report.skipped), (0, 0));
    }

    #[test]
    fn index_set_changes_replicate() {
        let ldir = tmpdir("index_leader");
        let rdir = tmpdir("index_replica");
        let db = leader_db(&ldir);
        let mut transport = ChannelTransport::new(Arc::clone(&db), "t");
        let mut replica =
            ReplicaState::open_or_bootstrap(&rdir, &mut transport, PersistOptions::default())
                .unwrap();
        // CREATE INDEX on the leader journals an IndexSet record; the
        // follower installs the set through the same shipped frames as
        // ordinary deltas.
        db.lock().unwrap().get_mut("t").unwrap().set_indexes(vec!["X".into()]).unwrap();
        apply_leader(&db, &Delta::inserting(vec![srow("d", "4")]));
        let report = replica.sync(&mut transport).unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(replica.table().indexed_columns(), ["X".to_string()]);
        states_equal(&db, &replica);
        // DROP INDEX (empty set) converges too.
        db.lock().unwrap().get_mut("t").unwrap().set_indexes(Vec::new()).unwrap();
        replica.sync(&mut transport).unwrap();
        assert!(replica.table().indexed_columns().is_empty());
        states_equal(&db, &replica);
    }

    #[test]
    fn follower_restart_resumes_at_acked_position() {
        let ldir = tmpdir("resume_leader");
        let rdir = tmpdir("resume_replica");
        let db = leader_db(&ldir);
        let mut transport = ChannelTransport::new(Arc::clone(&db), "t").with_frame_limit(1);

        // Bootstrap at seq 0, BEFORE the leader traffic (the in-process
        // transport's bootstrap ships the leader's current state).
        let mut replica =
            ReplicaState::open_or_bootstrap(&rdir, &mut transport, PersistOptions::default())
                .unwrap();
        for i in 0..4 {
            apply_leader(&db, &Delta::inserting(vec![srow(&format!("k{i}"), "1")]));
        }
        replica.sync_with_limit(&mut transport, Some(2)).unwrap();
        assert_eq!(replica.last_seq(), 2);
        drop(replica); // kill mid-catch-up

        let mut replica = ReplicaState::open(&rdir, PersistOptions::default()).unwrap();
        assert_eq!(replica.last_seq(), 2, "acked position survived the restart");
        let report = replica.sync(&mut transport).unwrap();
        assert_eq!(report.applied, 2, "no duplicates, no skips");
        states_equal(&db, &replica);
    }

    #[test]
    fn leader_checkpoint_forces_rebootstrap() {
        let ldir = tmpdir("reboot_leader");
        let rdir = tmpdir("reboot_replica");
        let db = leader_db(&ldir);
        let mut transport = ChannelTransport::new(Arc::clone(&db), "t");
        let mut replica =
            ReplicaState::open_or_bootstrap(&rdir, &mut transport, PersistOptions::default())
                .unwrap();

        apply_leader(&db, &Delta::inserting(vec![srow("d", "4")]));
        // The leader checkpoints past the follower's position…
        db.lock().unwrap().get_mut("t").unwrap().checkpoint().unwrap();
        apply_leader(&db, &Delta::inserting(vec![srow("e", "5")]));
        // …so the next sync must install a fresh image, then tail on.
        let report = replica.sync(&mut transport).unwrap();
        assert!(report.bootstrapped);
        states_equal(&db, &replica);
    }

    #[test]
    fn ahead_follower_is_detected() {
        let ldir = tmpdir("ahead_leader");
        let rdir = tmpdir("ahead_replica");
        let db = leader_db(&ldir);
        let mut transport = ChannelTransport::new(Arc::clone(&db), "t");
        let mut replica =
            ReplicaState::open_or_bootstrap(&rdir, &mut transport, PersistOptions::default())
                .unwrap();
        apply_leader(&db, &Delta::inserting(vec![srow("d", "4")]));
        replica.sync(&mut transport).unwrap();

        // Simulate the leader losing its journaled tail (machine crash
        // under no-sync): rebuild the leader directory from scratch.
        drop(db);
        let ldir2 = tmpdir("ahead_leader2");
        let db = leader_db(&ldir2);
        let mut transport = ChannelTransport::new(Arc::clone(&db), "t");
        let err = replica.sync(&mut transport).unwrap_err();
        assert!(matches!(err, PersistError::Replication { .. }), "{err:?}");
        assert!(err.to_string().contains("ahead"), "{err}");
    }

    #[test]
    fn leader_restored_from_backup_is_reported_as_behind_its_replica() {
        // The disaster-recovery shape of the ahead check: an operator
        // restores a leader directory from an older backup. Followers
        // that acked seqs past the backup MUST get a hard error naming
        // the re-bootstrap path — not silently re-ship divergent frames
        // under duplicate seqs.
        let ldir = tmpdir("backup_leader");
        let rdir = tmpdir("backup_replica");
        let backup = tmpdir("backup_copy");
        let db = leader_db(&ldir);
        apply_leader(&db, &Delta::inserting(vec![srow("d", "4")]));

        // Take the backup at seq 1 (files are durable: default options
        // fsync the WAL per append).
        let table_dir = ldir.join("t");
        copy_dir_files(&table_dir, &backup);

        // More traffic after the backup; the follower tails all of it.
        apply_leader(&db, &Delta::inserting(vec![srow("e", "5")]));
        apply_leader(&db, &Delta::inserting(vec![srow("f", "6")]));
        let mut transport = DirTransport::new(&table_dir);
        let mut replica =
            ReplicaState::open_or_bootstrap(&rdir, &mut transport, PersistOptions::default())
                .unwrap();
        replica.sync(&mut transport).unwrap();
        assert_eq!(replica.last_seq(), 3);

        // Disaster: the leader directory is restored from the backup.
        drop(db);
        std::fs::remove_dir_all(&table_dir).unwrap();
        std::fs::create_dir_all(&table_dir).unwrap();
        copy_dir_files(&backup, &table_dir);
        assert_eq!(read_position(&table_dir).unwrap().last_seq, 1);

        // A fresh transport (no stale position cache — a reconnecting
        // follower) must refuse and point at re-bootstrap.
        let mut transport = DirTransport::new(&table_dir);
        let err = replica.sync(&mut transport).unwrap_err();
        assert!(matches!(err, PersistError::Replication { .. }), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("ahead"), "{msg}");
        assert!(msg.contains("re-bootstrap"), "error must name the recovery path: {msg}");
        assert!(msg.contains("acked 3"), "{msg}");
    }

    fn copy_dir_files(from: &Path, to: &Path) {
        for entry in std::fs::read_dir(from).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_file() {
                std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
            }
        }
    }

    #[test]
    fn ack_tracker_is_monotonic_and_scoped_per_table() {
        let mut acks = AckTracker::new();
        assert_eq!(acks.min_acked("t"), None);
        acks.record("t", "f1", 5);
        acks.record("t", "f2", 9);
        acks.record("u", "f1", 2);
        assert_eq!(acks.min_acked("t"), Some(5));
        // A restarted follower fetching from an older seq never regresses.
        acks.record("t", "f1", 3);
        assert_eq!(acks.min_acked("t"), Some(5));
        acks.record("t", "f1", 11);
        assert_eq!(acks.min_acked("t"), Some(9));
        assert_eq!(acks.for_table("t").collect::<Vec<_>>(), vec![("f1", 11), ("f2", 9)]);
        assert_eq!(acks.iter().count(), 3);
        acks.forget("f2");
        assert_eq!(acks.min_acked("t"), Some(11));
        assert_eq!(acks.min_acked("u"), Some(2));
    }

    #[test]
    fn dir_transport_tails_wal_and_positions() {
        let ldir = tmpdir("dir_leader");
        let rdir = tmpdir("dir_replica");
        let db = leader_db(&ldir);
        apply_leader(&db, &Delta::inserting(vec![srow("d", "4")]));

        let table_dir = ldir.join("t");
        let mut transport = DirTransport::new(&table_dir);
        assert_eq!(transport.position().unwrap(), ShipPosition { snapshot_seq: 0, last_seq: 1 });
        let mut replica =
            ReplicaState::open_or_bootstrap(&rdir, &mut transport, PersistOptions::default())
                .unwrap();
        // Cold bootstrap from the CREATE-time image, then the WAL tail.
        let report = replica.sync(&mut transport).unwrap();
        assert_eq!(report.applied, 1);
        states_equal(&db, &replica);

        // New traffic shows up on the next poll — no leader cooperation.
        apply_leader(&db, &Delta::inserting(vec![srow("e", "5")]));
        let report = replica.sync(&mut transport).unwrap();
        assert_eq!(report.applied, 1);
        states_equal(&db, &replica);
        assert_eq!(read_position(&rdir).unwrap().last_seq, 2);
    }

    #[test]
    fn sync_report_counts_rolled_back_deltas() {
        let ldir = tmpdir("roll_leader");
        let rdir = tmpdir("roll_replica");
        let db = leader_db(&ldir);
        let mut transport = ChannelTransport::new(Arc::clone(&db), "t");
        let mut replica =
            ReplicaState::open_or_bootstrap(&rdir, &mut transport, PersistOptions::default())
                .unwrap();
        {
            let mut db = db.lock().unwrap();
            let t = db.get_mut("t").unwrap();
            assert!(t.apply(&Delta::inserting(vec![vec![Value::str("arity-1")]])).is_err());
            t.apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        }
        let report = replica.sync(&mut transport).unwrap();
        assert_eq!(report.rolled_back, 1);
        assert_eq!(report.applied, 3, "doomed delta + rollback + good delta");
        states_equal(&db, &replica);
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let rdir = tmpdir("corrupt_replica");
        let ldir = tmpdir("corrupt_leader");
        let db = leader_db(&ldir);
        let mut transport = ChannelTransport::new(Arc::clone(&db), "t");
        let mut replica =
            ReplicaState::open_or_bootstrap(&rdir, &mut transport, PersistOptions::default())
                .unwrap();
        let err = replica.apply_frame(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, PersistError::Replication { .. }));
    }
}
