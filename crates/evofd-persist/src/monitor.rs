//! The persist side of the monitoring endpoint: a
//! [`evofd_obs::MonitorSource`] over a shared [`Database`] handle, so
//! `evofd serve-metrics` (and `--metrics-addr` on the long-running
//! commands) can answer `/health` and `/history` from the durable
//! engine state while `/metrics` reads the process-global registry.

use std::sync::{Arc, Mutex, MutexGuard};

use evofd_obs::{json_escape_str, HistoryQuery, MonitorSource};

use crate::history::HistoryFrame;
use crate::store::Database;

/// Serves `/health` and `/history` off a live [`Database`]; clone the
/// handle out of a [`crate::DurableEngine`] with
/// [`crate::DurableEngine::database_handle`].
#[derive(Debug, Clone)]
pub struct DbMonitorSource {
    db: Arc<Mutex<Database>>,
}

impl DbMonitorSource {
    /// Wrap a shared database handle.
    pub fn new(db: Arc<Mutex<Database>>) -> DbMonitorSource {
        DbMonitorSource { db }
    }

    fn lock(&self) -> MutexGuard<'_, Database> {
        self.db.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn push_frame_json(out: &mut String, frame: &HistoryFrame, fd_filter: Option<&str>) {
    out.push_str(&format!(
        "{{\"epoch\":{},\"seq\":{},\"rows\":{},\"samples\":[",
        frame.epoch, frame.seq, frame.rows
    ));
    let mut first = true;
    for s in &frame.samples {
        if fd_filter.is_some_and(|want| want != s.fd) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"fd\":\"{}\",\"confidence\":{},\"g3\":{},\"violating_groups\":{},\"violated\":{}}}",
            json_escape_str(&s.fd),
            s.confidence,
            s.g3,
            s.violating_groups,
            s.violated
        ));
    }
    out.push_str("],\"drifts\":[");
    let mut first = true;
    for d in &frame.drifts {
        if fd_filter.is_some_and(|want| want != d.fd) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"fd\":\"{}\",\"kind\":\"{}\",\"confidence_before\":{},\"confidence_after\":{},\
             \"groups\":[{}]}}",
            json_escape_str(&d.fd),
            json_escape_str(&d.kind),
            d.confidence_before,
            d.confidence_after,
            d.groups
                .iter()
                .map(|g| format!("\"{}\"", json_escape_str(g)))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    out.push_str("],\"alerts\":[");
    let mut first = true;
    for a in &frame.alerts {
        if fd_filter.is_some_and(|want| want != a.fd) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"fd\":\"{}\",\"fired\":{}}}",
            json_escape_str(&a.rule),
            json_escape_str(&a.fd),
            a.fired
        ));
    }
    out.push_str("]}");
}

impl MonitorSource for DbMonitorSource {
    /// Per-table health: positions (epoch / last seq / snapshot seq /
    /// WAL bytes), what recovery did at open, and the alert rules with
    /// their live runtime. `status` is `"alerting"` iff any rule fires.
    fn health_json(&self) -> String {
        let db = self.lock();
        let mut firing_total = 0usize;
        let mut tables = Vec::new();
        for (name, t) in db.iter() {
            let r = t.recovery();
            let alerts = t.alerts();
            firing_total += alerts.firing_count();
            let mut rules = Vec::new();
            for (i, rule) in alerts.rules.iter().enumerate() {
                let rt = &alerts.runtime[i];
                rules.push(format!(
                    "{{\"rule\":\"{}\",\"firing\":{},\"consecutive\":{},\"fired_count\":{}}}",
                    json_escape_str(&rule.to_string()),
                    rt.firing,
                    rt.consecutive,
                    rt.fired_count
                ));
            }
            tables.push(format!(
                "{{\"table\":\"{}\",\"epoch\":{},\"rows\":{},\"last_seq\":{},\"snapshot_seq\":{},\
                 \"wal_bytes\":{},\"tracked_fds\":{},\"recovery\":{{\"snapshot_epoch\":{},\
                 \"replayed\":{},\"rolled_back\":{},\"torn_bytes\":{}}},\"alerts\":[{}]}}",
                json_escape_str(name),
                t.live().epoch(),
                t.live().row_count(),
                t.last_seq(),
                t.snapshot_seq(),
                t.wal_bytes(),
                t.validator().fds().len(),
                r.snapshot_epoch,
                r.replayed,
                r.rolled_back,
                r.torn_bytes,
                rules.join(",")
            ));
        }
        format!(
            "{{\"status\":\"{}\",\"firing_alerts\":{},\"tables\":[{}]}}\n",
            if firing_total == 0 { "ok" } else { "alerting" },
            firing_total,
            tables.join(",")
        )
    }

    /// The durable time series of one table (`?table=` required),
    /// optionally narrowed to one FD display string (`?fd=`) and to
    /// epochs at or after `?since=`.
    fn history_json(&self, query: &HistoryQuery) -> Result<String, String> {
        let Some(table) = query.table.as_deref() else {
            return Err("missing `table` query parameter".to_string());
        };
        let db = self.lock();
        let t = db.get(table).map_err(|e| e.to_string())?;
        let frames = t.history_frames().map_err(|e| e.to_string())?;
        let since = query.since_epoch.unwrap_or(0);
        let fd_filter = query.fd.as_deref();
        let mut out = format!("{{\"table\":\"{}\",\"frames\":[", json_escape_str(table));
        let mut first = true;
        for frame in frames.iter().filter(|f| f.epoch >= since) {
            if !first {
                out.push(',');
            }
            first = false;
            push_frame_json(&mut out, frame, fd_filter);
        }
        out.push_str("]}\n");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PersistOptions;
    use evofd_core::Fd;
    use evofd_incremental::{Delta, ValidatorConfig};
    use evofd_storage::{relation_of_strs, Value};
    use std::path::PathBuf;

    fn srow(a: &str, b: &str) -> Vec<Value> {
        vec![Value::str(a), Value::str(b)]
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("evofd_persist_monitor_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_db(dir: &std::path::Path) -> Database {
        let rel = relation_of_strs("t", &["X", "Y"], &[&["a", "1"], &["b", "2"]]).unwrap();
        let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
        let mut db = Database::open(dir, PersistOptions::default()).unwrap();
        db.create_table(rel, fds, ValidatorConfig::default()).unwrap();
        db
    }

    #[test]
    fn health_json_reports_tables_and_alerts() {
        let dir = tmpdir("health");
        let mut db = seeded_db(&dir);
        db.get_mut("t")
            .unwrap()
            .set_alerts(vec![crate::AlertRule::parse(
                "FD 'X -> Y' WHEN confidence < 0.99 FOR 1 EPOCHS",
            )
            .unwrap()])
            .unwrap();
        // Drift the FD so the alert fires.
        db.get_mut("t")
            .unwrap()
            .apply(&Delta { inserts: vec![srow("a", "9")], deletes: vec![] })
            .unwrap();
        let source = DbMonitorSource::new(Arc::new(Mutex::new(db)));
        let health = source.health_json();
        assert!(health.contains("\"status\":\"alerting\""), "{health}");
        assert!(health.contains("\"firing_alerts\":1"), "{health}");
        assert!(health.contains("\"table\":\"t\""), "{health}");
        assert!(health.contains("\"firing\":true"), "{health}");
        assert!(health.contains("\"tracked_fds\":1"), "{health}");
    }

    #[test]
    fn history_json_filters_by_fd_and_since() {
        let dir = tmpdir("history");
        let mut db = seeded_db(&dir);
        for v in ["3", "4", "5"] {
            db.get_mut("t")
                .unwrap()
                .apply(&Delta { inserts: vec![srow("c", v)], deletes: vec![] })
                .unwrap();
        }
        let source = DbMonitorSource::new(Arc::new(Mutex::new(db)));
        let all =
            source.history_json(&HistoryQuery { table: Some("t".into()), ..Default::default() });
        let all = all.unwrap();
        assert!(all.contains("\"table\":\"t\""), "{all}");
        assert!(all.contains("\"fd\":\"[X] -> [Y]\""), "{all}");
        let since = source
            .history_json(&HistoryQuery {
                table: Some("t".into()),
                fd: Some("[X] -> [Y]".into()),
                since_epoch: Some(3),
            })
            .unwrap();
        assert!(!since.contains("\"epoch\":2,"), "{since}");
        assert!(since.contains("\"epoch\":3,"), "{since}");
        // Errors: missing table param, unknown table.
        assert!(source.history_json(&HistoryQuery::default()).is_err());
        assert!(source
            .history_json(&HistoryQuery { table: Some("nope".into()), ..Default::default() })
            .is_err());
    }
}
